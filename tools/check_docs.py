"""Docs-hygiene checker: examples must import, README code must run.

CI runs this after the test suite (and it is mirrored by
``tests/test_docs.py`` so local tier-1 runs catch the same drift):

1. **Import every example module** under ``examples/``.  Importing executes
   the module's import statements and top-level definitions, so any example
   referencing a renamed or removed ``repro`` API fails here immediately.
2. **Extract every ``python`` fenced code block from ``README.md`` and
   exec it** (the quickstart snippet).  The README promises the snippet
   runs verbatim; this is what keeps that promise.

Usage::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import importlib.util
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
README = REPO_ROOT / "README.md"

PYTHON_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def import_example(path: Path) -> None:
    spec = importlib.util.spec_from_file_location(f"examples.{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    if not hasattr(module, "main"):
        raise AssertionError(f"{path.name} does not define main()")


def readme_python_blocks(text: str) -> list[str]:
    return [match.group(1) for match in PYTHON_FENCE.finditer(text)]


def main() -> int:
    failures = 0

    example_files = sorted(EXAMPLES_DIR.glob("*.py"))
    if not example_files:
        print("FAIL: no example scripts found", file=sys.stderr)
        return 1
    for path in example_files:
        try:
            import_example(path)
            print(f"ok: imported examples/{path.name}")
        except Exception as exc:  # noqa: BLE001 - report and keep checking
            failures += 1
            print(f"FAIL: importing examples/{path.name}: {exc!r}", file=sys.stderr)

    blocks = readme_python_blocks(README.read_text(encoding="utf-8"))
    if not blocks:
        print("FAIL: README.md contains no python code blocks", file=sys.stderr)
        return 1
    for block_index, source in enumerate(blocks):
        try:
            exec(compile(source, f"README.md#python-block-{block_index}", "exec"), {})
            print(f"ok: executed README python block {block_index}")
        except Exception as exc:  # noqa: BLE001 - report and keep checking
            failures += 1
            print(f"FAIL: README python block {block_index}: {exc!r}", file=sys.stderr)

    if failures:
        print(f"{failures} docs-hygiene failure(s)", file=sys.stderr)
        return 1
    print("docs hygiene: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
