"""Deprecation-shim lint: no in-repo caller may use the legacy entry points.

The per-kind engine entry points (``point_queries`` / ``window_queries`` /
``knn_queries``) survive as deprecated shims over ``execute(QueryRequest)``
for external callers.  The repo itself must not depend on them: this lint
greps the library, benchmark and example trees for call sites and fails on
any hit, so the shims can eventually be deleted without an internal
migration.  The ``tests/`` tree is exempt — the legacy tests *are* the
shim-compatibility suite and exercise the deprecated surface on purpose.

Usage::

    python tools/check_deprecated.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: trees the lint walks (tests/ deliberately absent)
LINTED_TREES = ("src/repro", "benchmarks", "examples")

#: call sites of the deprecated per-kind entry points
DEPRECATED_CALL = re.compile(r"\.(point|window|knn)_queries\(")

#: the shim definitions themselves (allowed, obviously)
DEFINITION = re.compile(r"def (point|window|knn)_queries\(")


def find_violations(root: Path) -> list[tuple[Path, int, str]]:
    violations = []
    for tree in LINTED_TREES:
        for path in sorted((root / tree).rglob("*.py")):
            for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if DEFINITION.search(line):
                    continue
                if DEPRECATED_CALL.search(line):
                    violations.append((path.relative_to(root), lineno, line.strip()))
    return violations


def main() -> int:
    violations = find_violations(REPO_ROOT)
    if violations:
        print(
            "deprecated per-kind entry points called outside tests/ "
            "(use engine.execute(QueryRequest.for_...) instead):",
            file=sys.stderr,
        )
        for path, lineno, line in violations:
            print(f"  {path}:{lineno}: {line}", file=sys.stderr)
        return 1
    print(
        f"deprecation lint passed: no legacy engine entry-point calls under "
        f"{', '.join(LINTED_TREES)}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
