"""Perf-regression gate: compare emitted ``BENCH_*.json`` against baselines.

CI's ``perf-gate`` job runs the fast benchmark configs (which write
``benchmarks/results/BENCH_*.json``) and then this checker, which compares
every baseline file committed under ``benchmarks/baselines/`` against the
freshly emitted results with per-metric tolerances:

* **config keys** (``n_points``, ``cache_blocks``, ``count``, per-shard /
  per-tenant op counts, ...) are deterministic given the same code + budget
  and must match exactly — a mismatch means the benchmark config drifted
  from the committed baselines (regenerate them with ``--update``) *or* a
  behaviour change rerouted work, either of which deserves a human look.
* **gated metrics** fail the build when they regress beyond their
  tolerance: higher-is-better ones (``hit_ratio``, ``physical_reduction``,
  ``fairness_index``) may not drop, lower-is-better ones (``logical_reads``,
  ``physical_reads_*``) may not grow.
* **informational metrics** (anything wall-clock: ``*_ms``, ``*ops_per_s``,
  ``queueing_ratio``, fractions) are reported in the delta table but never
  gate — CI machines are too noisy to compare milliseconds across runs.

Usage::

    PYTHONPATH=src python tools/check_bench.py            # gate (CI)
    PYTHONPATH=src python tools/check_bench.py --update   # refresh baselines
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"
BASELINES_DIR = REPO_ROOT / "benchmarks" / "baselines"

#: metric names (last path segment) that must match the baseline exactly
CONFIG_KEYS = {
    "n_points",
    "n_queries",
    "n_ops",
    "n_shards",
    "n_tenants",
    "block_capacity",
    "cache_blocks",
    "cache_blocks_per_shard",
    "cache_policy",
    "overload_fraction",
    "count",
    "per_tenant_ops",
    "per_shard_query_counts",
    "checkpoint_every",
    "n_wal_replayed",
    "n_windows",
    "pool_blocks",
    "pool_admission",
    # parallel serving: worker topology, answer identity and admission
    # decisions are deterministic; the speedup *gate* resolves to a flag
    # (trivially 1 below 4 cores) so the committed baseline stays
    # machine-independent while >= 4-core machines still enforce the ratio
    "n_workers",
    "worker_counts",
    "answers_identical",
    "speedup_gate_ok",
    "sojourn_gate_ok",
    "n_accepted",
    "n_dropped",
    # analytics: the aggregate batch and the brute-force scan cost are fixed
    # by (budget, block capacity); answer verification resolves to flags
    "n_aggregates",
    "brute_force_reads",
    "quantile_within_bound",
    "touched_shards",
    "layout",
}

#: gated metrics that may not drop below baseline * (1 - tolerance)
HIGHER_IS_BETTER = {
    "hit_ratio": 0.02,
    "hit_ratios": 0.02,
    "physical_reduction": 0.20,
    "fairness_index": 0.30,
    # wall-clock ratio, but its structural margin (training time vs
    # unpickling) is huge — gate only a total collapse of the recovery win
    "cold_start_speedup": 0.50,
    # buffer-pool / Hilbert-layout claims (deterministic: the pool's
    # admission sketch uses a stable hash, so only code changes move these)
    "pool_hit_ratio": 0.03,
    "layout_read_reduction": 0.15,
    "run_reduction": 0.10,
    "scan_advantage": 0.30,
    "drift_advantage": 0.20,
    # rebalancing claims (deterministic: the controller's trigger is decayed
    # logical read counts, latency_gate off — only code changes move these)
    "blocks_advantage": 0.10,
    "n_splits": 0.50,
    # push-down aggregates: blocks touched vs a full scan per aggregate
    # (deterministic routing; only code changes move it)
    "agg_read_reduction": 0.15,
}

#: gated metrics that may not rise above baseline * (1 + tolerance)
LOWER_IS_BETTER = {
    "logical_reads": 0.02,
    "physical_reads_cached": 0.10,
    "physical_reads_uncached": 0.02,
    "logical_reads_z": 0.02,
    "logical_reads_hilbert": 0.02,
    "hot_refaults_tinylfu": 0.50,
    "tail_blocks_per_op_on": 0.10,
    "agg_logical_reads": 0.02,
}


def flatten(payload, prefix: str = "") -> dict[str, object]:
    """Nested benchmark dicts as dotted-path leaves.

    Dicts whose *path* ends in a config key (per-shard counts, per-tenant
    ops) stay whole so they compare exactly as units.
    """
    flat: dict[str, object] = {}
    for key, value in payload.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict) and key not in CONFIG_KEYS:
            flat.update(flatten(value, path))
        else:
            flat[path] = value
    return flat


def classify(path: str) -> tuple[str, float]:
    """(kind, tolerance) for one dotted metric path."""
    leaf = path.rsplit(".", 1)[-1]
    if leaf in CONFIG_KEYS:
        return "config", 0.0
    # hit_ratios.lru / hit_ratios.clock style nesting gates on the parent name
    for name, tolerance in HIGHER_IS_BETTER.items():
        if leaf == name or f".{name}." in f".{path}.":
            return "higher", tolerance
    for name, tolerance in LOWER_IS_BETTER.items():
        if leaf == name:
            return "lower", tolerance
    return "info", 0.0


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def compare_file(baseline: dict, current: dict, file_name: str) -> tuple[list, int]:
    """Delta rows plus the number of regressions for one BENCH file."""
    base_flat = flatten(baseline)
    curr_flat = flatten(current)
    rows: list[tuple[str, str, str, str, str]] = []
    failures = 0
    for path in sorted(base_flat):
        kind, tolerance = classify(path)
        base_value = base_flat[path]
        if path not in curr_flat:
            rows.append((f"{file_name}:{path}", _fmt(base_value), "MISSING", "-", "FAIL"))
            failures += 1
            continue
        value = curr_flat[path]
        if kind == "config":
            status = "ok" if value == base_value else "CONFIG MISMATCH"
            if status != "ok":
                failures += 1
            rows.append((f"{file_name}:{path}", _fmt(base_value), _fmt(value), "-", status))
            continue
        if not isinstance(value, (int, float)) or not isinstance(base_value, (int, float)):
            continue
        delta = (
            (value - base_value) / abs(base_value) if base_value else float(value != base_value)
        )
        delta_text = f"{delta:+.1%}"
        if kind == "higher":
            status = "REGRESSION" if value < base_value * (1 - tolerance) else "ok"
        elif kind == "lower":
            status = "REGRESSION" if value > base_value * (1 + tolerance) else "ok"
        else:
            status = "info"
        if status == "REGRESSION":
            failures += 1
        rows.append((f"{file_name}:{path}", _fmt(base_value), _fmt(value), delta_text, status))
    return rows, failures


def print_table(rows: list) -> None:
    header = ("metric", "baseline", "current", "delta", "status")
    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows)) if rows else len(header[col])
        for col in range(5)
    ]
    line = "  ".join(title.ljust(width) for title, width in zip(header, widths))
    print(line)
    print("  ".join("-" * width for width in widths))
    for row in rows:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))


def update_baselines(results_dir: Path, baselines_dir: Path) -> int:
    baselines_dir.mkdir(parents=True, exist_ok=True)
    copied = 0
    for path in sorted(results_dir.glob("BENCH_*.json")):
        shutil.copyfile(path, baselines_dir / path.name)
        print(f"baseline updated: {baselines_dir / path.name}")
        copied += 1
    if not copied:
        print(f"no BENCH_*.json under {results_dir}; run the benchmarks first",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare emitted BENCH_*.json against committed baselines"
    )
    parser.add_argument("--results", type=Path, default=RESULTS_DIR,
                        help="directory the benchmarks wrote into")
    parser.add_argument("--baselines", type=Path, default=BASELINES_DIR,
                        help="directory of committed baselines")
    parser.add_argument("--update", action="store_true",
                        help="copy current results over the baselines instead of gating")
    args = parser.parse_args(argv)

    if args.update:
        return update_baselines(args.results, args.baselines)

    baseline_files = sorted(args.baselines.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"no baselines under {args.baselines}; seed them with --update",
              file=sys.stderr)
        return 1

    all_rows: list = []
    failures = 0
    for baseline_path in baseline_files:
        result_path = args.results / baseline_path.name
        if not result_path.exists():
            print(f"FAIL: {result_path} was not emitted (baseline exists)",
                  file=sys.stderr)
            failures += 1
            continue
        rows, file_failures = compare_file(
            json.loads(baseline_path.read_text()),
            json.loads(result_path.read_text()),
            baseline_path.name,
        )
        all_rows.extend(rows)
        failures += file_failures
    for result_path in sorted(args.results.glob("BENCH_*.json")):
        if not (args.baselines / result_path.name).exists():
            print(f"note: {result_path.name} has no baseline yet "
                  f"(add one with --update)")

    print_table(all_rows)
    if failures:
        print(f"\n{failures} perf-gate failure(s) against {args.baselines}",
              file=sys.stderr)
        return 1
    print(f"\nperf gate passed: {len(all_rows)} metrics checked against "
          f"{len(baseline_files)} baseline file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
