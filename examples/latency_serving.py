"""Latency-aware serving: arrival pacing, percentiles, multi-tenant streams.

A runnable tour of the latency subsystem: replay one scenario closed-loop to
measure the server's capacity, re-offer it open-loop at rates around that
capacity to watch the p99 sojourn hockey-stick as the virtual queue builds,
then serve three interleaved tenant streams (each checked against its own
oracle shadow) and read the per-tenant percentiles and fairness index.
Run with::

    python examples/latency_serving.py
"""

from __future__ import annotations

from repro.baselines import KDBTree
from repro.datasets import generate_skewed
from repro.workloads import (
    MultiTenantOracle,
    ScenarioRunner,
    generate_tenant_operations,
    scenario_by_name,
)

N_POINTS = 8_000
N_OPS = 2_000
N_TENANTS = 3


def _fmt(summary) -> str:
    return (
        f"p50 {summary.p50_ms:7.3f} ms   p95 {summary.p95_ms:7.3f} ms   "
        f"p99 {summary.p99_ms:7.3f} ms"
    )


def main() -> None:
    points = generate_skewed(N_POINTS, seed=7)

    # 1. closed loop: each op issued as the previous completes, so sojourn ==
    #    service and the measured throughput is the server's capacity
    spec = scenario_by_name("latency-hotspot").with_overrides(
        n_ops=N_OPS, snapshot_every=N_OPS // 2, seed=42
    )
    closed = ScenarioRunner(
        KDBTree(block_capacity=50).build(points),
        spec.with_overrides(arrival_model="closed-loop"),
    ).run(points)
    capacity = closed.ops_per_s
    print(f"closed loop: capacity {capacity:,.0f} ops/s   {_fmt(closed.latency)}")

    # 2. open loop: a virtual-time Poisson arrival schedule independent of
    #    the server; past saturation the queue (and the p99 tail) grows even
    #    though per-op service time is unchanged
    for fraction in (0.5, 0.9, 1.5):
        open_spec = spec.with_overrides(
            arrival_model="open-loop", arrival_rate=capacity * fraction
        )
        result = ScenarioRunner(
            KDBTree(block_capacity=50).build(points), open_spec
        ).run(points)
        print(
            f"open loop @ {fraction:>3.1f}x capacity: {_fmt(result.latency)}   "
            f"(service p99 {result.service_latency.p99_ms:.3f} ms)"
        )

    # 3. multi-tenant: three independently-seeded streams over three slices
    #    of the data, merged by arrival time, each tenant shadowed by its own
    #    oracle — any answer disagreement raises ScenarioMismatch
    tenant_spec = scenario_by_name("tenant-mixed").with_overrides(
        n_ops=N_OPS, snapshot_every=N_OPS // 2, seed=9
    )
    operations, tenant_points = generate_tenant_operations(
        tenant_spec, points, N_TENANTS
    )
    oracle = MultiTenantOracle(N_TENANTS).build(tenant_points)
    result = ScenarioRunner(
        KDBTree(block_capacity=50).build(points),
        tenant_spec,
        oracle=oracle,
        exact_results=True,
    ).replay(operations)
    print(f"\n{result.n_ops} multi-tenant ops verified against per-tenant oracles:")
    for tenant, summary in result.latency_by_tenant.items():
        print(f"  tenant {tenant}: {summary.count:>5} ops   {_fmt(summary)}")
    print(f"  fairness index (Jain, per-tenant mean sojourn): {result.fairness:.3f}")


if __name__ == "__main__":
    main()
