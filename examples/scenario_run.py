"""Scenario workloads: declarative mixed read/write streams with fuzzing.

Builds an RSMI, replays a drifting-hotspot scenario through it with the
brute-force shadow oracle attached (every answer is verified while the
metrics are collected), then prints the ScenarioSnapshot series.  Run with::

    python examples/scenario_run.py
"""

from __future__ import annotations

from repro import RSMI, RSMIConfig
from repro.datasets import generate_skewed
from repro.nn import TrainingConfig
from repro.workloads import (
    OperationMix,
    OracleIndex,
    ScenarioRunner,
    ScenarioSpec,
    scenario_by_name,
)


def main() -> None:
    # 1. build a scaled-down RSMI
    points = generate_skewed(8_000, seed=7)
    config = RSMIConfig(
        block_capacity=50,
        partition_threshold=1_000,
        training=TrainingConfig(epochs=40),
    )
    index = RSMI(config).build(points)
    print(f"built {index!r}")

    # 2. take a preset scenario and resize it; any field can be overridden
    spec = scenario_by_name("drifting").with_overrides(
        n_ops=4_000, snapshot_every=800, seed=42, k=10
    )
    print(
        f"\nscenario '{spec.name}': {spec.n_ops} ops, "
        f"distribution={spec.distribution}, mix={spec.mix.probabilities()}"
    )

    # 3. replay it with the shadow oracle attached: the runner asserts answer
    #    agreement per operation (raising ScenarioMismatch on any bug) while
    #    collecting throughput / block-access / recall / chain-depth metrics
    oracle = OracleIndex().build(points)
    runner = ScenarioRunner(index, spec, oracle=oracle)
    result = runner.run(points)

    print(f"\n{result.n_ops} ops verified against the oracle; snapshots:")
    header = f"{'ops':>6} {'ops/s':>9} {'acc/op':>7} {'points':>7} " \
             f"{'w-recall':>8} {'k-recall':>8} {'overflow':>8} {'chain':>5}"
    print(header)
    for s in result.snapshots:
        print(
            f"{s.op_index:>6} {s.ops_per_s:>9.0f} {s.avg_block_accesses:>7.2f} "
            f"{s.n_points:>7} "
            f"{s.window_recall if s.window_recall is not None else float('nan'):>8.3f} "
            f"{s.knn_recall if s.knn_recall is not None else float('nan'):>8.3f} "
            f"{s.n_overflow_blocks:>8} {s.max_chain_depth:>5}"
        )

    # 4. custom scenarios are one dataclass away: an ingest-mostly burst mix
    custom = ScenarioSpec(
        name="ingest-burst",
        mix=OperationMix(point=0.2, insert=0.7, delete=0.1),
        distribution="hotspot",
        arrival="bursty",
        n_ops=1_500,
        snapshot_every=500,
        seed=1,
    )
    result = ScenarioRunner(index, custom, oracle=oracle).run(points)
    growth = [s.n_overflow_blocks for s in result.snapshots]
    print(f"\ncustom '{custom.name}': overflow blocks over time: {growth}")


if __name__ == "__main__":
    main()
