"""Extended-object scenario: indexing rectangles (e.g. building footprints).

The paper indexes points and sketches, as future work, how objects with
non-zero extent can be supported through query expansion (Section 7).  The
library implements that extension in :class:`repro.core.ExtendedObjectIndex`:
rectangles are indexed by their centres and window queries are expanded by the
largest half-extent before exact geometric filtering.

This script indexes synthetic building footprints, runs viewport intersection
queries and point (stabbing) queries, and verifies the answers against brute
force.

Run with::

    python examples/extended_objects.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import ExtendedObjectIndex, RSMIConfig
from repro.geometry import Rect
from repro.nn import TrainingConfig


def make_footprints(n: int, seed: int = 0) -> list[Rect]:
    """Synthetic building footprints: small axis-aligned rectangles in clusters."""
    rng = np.random.default_rng(seed)
    cluster_centers = rng.random((30, 2))
    assignments = rng.integers(0, 30, n)
    centers = cluster_centers[assignments] + rng.normal(scale=0.02, size=(n, 2))
    centers = np.clip(centers, 0.01, 0.99)
    half_sizes = rng.uniform(0.0005, 0.004, (n, 2))
    return [
        Rect(cx - hw, cy - hh, cx + hw, cy + hh)
        for (cx, cy), (hw, hh) in zip(centers, half_sizes)
    ]


def main() -> None:
    footprints = make_footprints(20_000, seed=13)
    print(f"indexing {len(footprints)} building footprints")

    index = ExtendedObjectIndex(
        RSMIConfig(block_capacity=50, partition_threshold=2_000,
                   training=TrainingConfig(epochs=60))
    ).build(footprints)
    print(f"built {index!r}")

    # viewport intersection queries
    rng = np.random.default_rng(7)
    total_time = 0.0
    total_found = 0
    exact_matches = 0
    n_queries = 50
    for _ in range(n_queries):
        cx, cy = rng.random(2)
        viewport = Rect.from_center(float(cx), float(cy), 0.05, 0.05).clip_to(Rect.unit())
        start = time.perf_counter()
        reported = index.window_query(viewport, exact=True)
        total_time += time.perf_counter() - start
        total_found += len(reported)
        truth = sum(1 for rect in footprints if viewport.intersects(rect))
        exact_matches += int(len(reported) == truth)
    print(f"\nviewport queries: avg latency {total_time / n_queries * 1000:.3f} ms, "
          f"avg {total_found / n_queries:.1f} footprints per viewport, "
          f"{exact_matches}/{n_queries} answers exactly match brute force")

    # stabbing query: which buildings cover this coordinate?
    target = footprints[123]
    px, py = target.center
    hits = index.stabbing_query(px, py, exact=True)
    print(f"\nstabbing query at {px:.4f}, {py:.4f}: {len(hits)} footprint(s) cover the point; "
          f"expected footprint included: {target in hits}")

    # nearest footprints to a point of interest
    nearest = index.knn_query(0.5, 0.5, k=5, exact=True)
    print(f"\n5 footprints nearest to the map centre:")
    for rect in nearest:
        print(f"  centre=({rect.center[0]:.4f}, {rect.center[1]:.4f}) "
              f"size=({rect.width:.4f} x {rect.height:.4f})")


if __name__ == "__main__":
    main()
