"""Sharded serving: partition the space across shards, dispatch in batches.

A tour of :mod:`repro.sharding`: build a :class:`ShardedSpatialIndex` under
each sharding policy, route batches through the
:class:`ShardedBatchEngine`, inspect per-shard access attribution (window
batches only touch the shards they intersect), and replay an oracle-checked
mixed read/write scenario against the sharded deployment.  Run with::

    PYTHONPATH=src python examples/sharded_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.analytics import QueryRequest
from repro.datasets import dataset_by_name
from repro.geometry import Rect
from repro.nn import TrainingConfig
from repro.queries import generate_point_queries, generate_window_queries
from repro.sharding import ShardedBatchEngine, ShardedSpatialIndex, shard_index_factory
from repro.workloads import OracleIndex, ScenarioRunner, scenario_by_name

# shrunk by the test suite; the defaults keep the script at a few seconds
N_POINTS = 20_000
N_SHARDS = 4
N_RSMI_POINTS = 3_000
SCENARIO_OPS = 400


def main() -> None:
    # 1. one data set, three sharding policies
    points = dataset_by_name("skewed", N_POINTS, seed=11)
    factory = shard_index_factory("Grid", block_capacity=50)
    for policy in ("grid", "zorder", "balanced"):
        index = ShardedSpatialIndex(factory, n_shards=N_SHARDS, policy=policy).build(points)
        print(f"{policy:9s} per-shard points: {index.per_shard_points()}")

    # 2. batched dispatch with per-shard attribution
    index = ShardedSpatialIndex(factory, n_shards=N_SHARDS, policy="balanced").build(points)
    engine = ShardedBatchEngine(index)

    queries = generate_point_queries(points, 500, seed=21)
    batch = engine.execute(QueryRequest.for_points(queries))
    print(f"\npoint batch: {sum(batch.values)}/{batch.n_queries} found, "
          f"{batch.access.logical_reads} block accesses, "
          f"per shard: {batch.access.per_shard_logical_reads}")

    windows = generate_window_queries(points, 50, area_fraction=0.001, seed=22)
    window_batch = engine.execute(QueryRequest.for_windows(windows))
    touched = sorted(window_batch.access.per_shard_logical_reads)
    print(f"window batch: {sum(r.shape[0] for r in window_batch.values)} result "
          f"points, shards touched: {touched} of {N_SHARDS}")

    # a window inside one shard's region touches exactly that shard
    extent = index.shard_extents()[0]
    cx, cy = extent.center
    local = Rect.from_center(cx, cy, extent.width * 0.2, extent.height * 0.2)
    local_batch = engine.execute(QueryRequest.for_windows([local]))
    print(f"single-region window touched shards: "
          f"{sorted(local_batch.access.per_shard_logical_reads)}")

    # 3. shards can wrap the learned index too (RSMI per shard)
    rsmi_points = dataset_by_name("uniform", N_RSMI_POINTS, seed=13)
    rsmi_factory = shard_index_factory(
        "RSMI",
        block_capacity=25,
        partition_threshold=max(200, N_RSMI_POINTS // (4 * N_SHARDS)),
        training=TrainingConfig(epochs=30),
    )
    rsmi_sharded = ShardedSpatialIndex(
        rsmi_factory, n_shards=N_SHARDS, policy="grid"
    ).build(rsmi_points)
    knn_batch = ShardedBatchEngine(rsmi_sharded).execute(QueryRequest.for_knn(rsmi_points[:20], k=5))
    print(f"\nsharded RSMI: {rsmi_sharded.per_shard_points()} points per shard, "
          f"kNN batch of {knn_batch.n_queries} served with "
          f"{knn_batch.access.logical_reads} block accesses")

    # 4. serving under churn, every answer checked against a brute-force oracle
    spec = scenario_by_name("sharded-mixed").with_overrides(
        n_ops=SCENARIO_OPS, snapshot_every=SCENARIO_OPS // 2, k=5
    )
    runner = ScenarioRunner(
        index, spec, oracle=OracleIndex().build(points), exact_results=True
    )
    result = runner.run(points)
    last = result.snapshots[-1]
    print(f"\nscenario '{spec.name}': {result.n_ops} ops verified against the "
          f"oracle at {result.ops_per_s:.0f} ops/s; final per-shard points: "
          f"{last.per_shard_points}")


if __name__ == "__main__":
    main()
