"""Batched queries: push whole workloads through the index in one call.

Mirrors ``examples/quickstart.py`` but executes the workloads through
:class:`repro.BatchQueryEngine`, comparing throughput and block accesses
against the sequential per-query loops.  Run with::

    python examples/batched_queries.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import BatchQueryEngine, RSMI, RSMIConfig
from repro.analytics import QueryRequest
from repro.datasets import generate_uniform
from repro.nn import TrainingConfig
from repro.queries import generate_point_queries, generate_window_queries


def main() -> None:
    # 1. build the same scaled-down index as the quickstart
    points = generate_uniform(20_000, seed=7)
    config = RSMIConfig(
        block_capacity=50,
        partition_threshold=2_000,
        training=TrainingConfig(epochs=60),
    )
    index = RSMI(config).build(points)
    print(f"built {index!r}")

    # 2. point queries: 2 000 lookups, sequential loop vs one engine call
    queries = generate_point_queries(points, 2_000, seed=21)
    engine = BatchQueryEngine(index)

    index.stats.reset()
    start = time.perf_counter()
    sequential_found = sum(index.contains(float(x), float(y)) for x, y in queries)
    sequential_s = time.perf_counter() - start
    sequential_accesses = index.stats.total_reads

    start = time.perf_counter()
    batch = engine.execute(QueryRequest.for_points(queries))
    batched_s = time.perf_counter() - start

    assert sum(batch.values) == sequential_found == len(queries)
    print(f"\npoint queries ({len(queries)} lookups, all stored points):")
    print(f"  sequential: {len(queries) / sequential_s:>10.0f} q/s, "
          f"{sequential_accesses} block accesses")
    print(f"  batched:    {len(queries) / batched_s:>10.0f} q/s, "
          f"{batch.access.logical_reads} block accesses "
          f"({sequential_s / batched_s:.1f}x faster)")

    # 3. window queries: identical answers, shared block scans
    windows = generate_window_queries(points, 200, area_fraction=0.0004, seed=22)
    index.stats.reset()
    start = time.perf_counter()
    sequential_results = [index.window_query(w).points for w in windows]
    sequential_s = time.perf_counter() - start
    sequential_accesses = index.stats.total_reads

    start = time.perf_counter()
    window_batch = engine.execute(QueryRequest.for_windows(windows))
    batched_s = time.perf_counter() - start

    assert all(
        np.array_equal(got, want)
        for got, want in zip(window_batch.values, sequential_results)
    )
    total_hits = sum(r.shape[0] for r in window_batch.values)
    print(f"\nwindow queries ({len(windows)} windows, {total_hits} result points):")
    print(f"  sequential: {len(windows) / sequential_s:>10.0f} q/s, "
          f"{sequential_accesses} block accesses")
    print(f"  batched:    {len(windows) / batched_s:>10.0f} q/s, "
          f"{window_batch.access.logical_reads} block accesses "
          f"({sequential_s / batched_s:.1f}x faster)")

    # 4. kNN batches run through the uniform per-query path (Algorithm 3 is
    #    adaptive, so there is no vectorised formulation) — same answers
    knn_batch = engine.execute(QueryRequest.for_knn(queries[:50], k=10))
    print(f"\nkNN queries: {knn_batch.n_queries} batched lookups, "
          f"avg {knn_batch.avg_block_accesses:.1f} block accesses/query")


if __name__ == "__main__":
    main()
