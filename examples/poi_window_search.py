"""Window-query scenario: "Search this area" over a POI-style data set.

This mirrors the paper's motivating example (Figure 1a): a map application
issues window queries for the points of interest visible in the current
viewport.  The script builds RSMI and the two strongest traditional
competitors (HRR and KDB) over an OSM-like clustered data set, runs a batch
of viewport-sized window queries, and reports average latency, block accesses
and recall for each index.

Run with::

    python examples/poi_window_search.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines import HRRTree, KDBTree
from repro.core import RSMI, RSMIConfig
from repro.datasets import generate_osm_like
from repro.nn import TrainingConfig
from repro.queries import brute_force_window, generate_window_queries


def main() -> None:
    points = generate_osm_like(30_000, seed=3)
    print(f"data set: {points.shape[0]} OSM-like points of interest")

    rsmi = RSMI(
        RSMIConfig(block_capacity=50, partition_threshold=2_000,
                   training=TrainingConfig(epochs=60))
    ).build(points)
    hrr = HRRTree(block_capacity=50).build(points)
    kdb = KDBTree(block_capacity=50).build(points)

    # viewport-sized windows (0.01 % of the map), centred on POIs
    windows = generate_window_queries(points, 100, area_fraction=0.0001, seed=11)

    def evaluate(name, query_fn, stats):
        stats.reset()
        recalls, elapsed = [], 0.0
        for window in windows:
            start = time.perf_counter()
            reported = query_fn(window)
            elapsed += time.perf_counter() - start
            truth = brute_force_window(points, window)
            if truth.shape[0]:
                truth_set = {tuple(p) for p in np.round(truth, 12)}
                found = {tuple(p) for p in np.round(reported, 12)}
                recalls.append(len(found & truth_set) / len(truth_set))
            else:
                recalls.append(1.0)
        print(f"  {name:6s} avg latency {elapsed / len(windows) * 1000:7.3f} ms   "
              f"avg blocks {stats.total_reads / len(windows):7.1f}   "
              f"recall {np.mean(recalls):.3f}")

    print("\n'search this area' (window) queries:")
    evaluate("RSMI", lambda w: rsmi.window_query(w).points, rsmi.stats)
    evaluate("RSMIa", lambda w: rsmi.window_query_exact(w).points, rsmi.stats)
    evaluate("HRR", hrr.window_query, hrr.stats)
    evaluate("KDB", kdb.window_query, kdb.stats)


if __name__ == "__main__":
    main()
