"""Quickstart: build an RSMI over synthetic data and run every query type.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import RSMI, RSMIConfig, Rect
from repro.datasets import generate_uniform
from repro.nn import TrainingConfig
from repro.queries import brute_force_knn, brute_force_window


def main() -> None:
    # 1. generate data: 20 000 uniform points in the unit square
    points = generate_uniform(20_000, seed=7)

    # 2. build the learned index (scaled-down block/partition sizes so the
    #    script finishes in a few seconds; the paper uses B=100, N=10 000)
    config = RSMIConfig(
        block_capacity=50,
        partition_threshold=2_000,
        training=TrainingConfig(epochs=60),
    )
    index = RSMI(config).build(points)
    print(f"built {index!r}")
    print(f"  height={index.height}  sub-models={index.n_models}  "
          f"error bounds={index.error_bounds()}  size={index.size_bytes() / 1024:.0f} KiB")

    # 3. point query: look up a stored point
    x, y = map(float, points[1234])
    print(f"\npoint query ({x:.4f}, {y:.4f}): found={index.contains(x, y)}")

    # 4. window query ("search this area")
    window = Rect(0.40, 0.40, 0.45, 0.45)
    result = index.window_query(window)
    truth = brute_force_window(points, window)
    print(f"\nwindow query {window.as_tuple()}:")
    print(f"  reported {result.count} points (true answer {truth.shape[0]}), "
          f"recall={result.count / max(truth.shape[0], 1):.3f}, "
          f"blocks scanned={result.blocks_scanned}")

    # 5. kNN query ("dinner near me")
    qx, qy = 0.5, 0.5
    knn = index.knn_query(qx, qy, k=10)
    truth_knn = brute_force_knn(points, qx, qy, 10)
    true_dists = np.hypot(truth_knn[:, 0] - qx, truth_knn[:, 1] - qy)
    print(f"\n10-NN of ({qx}, {qy}):")
    print(f"  reported distances: {np.round(knn.distances, 4).tolist()}")
    print(f"  true distances:     {np.round(np.sort(true_dists), 4).tolist()}")

    # 6. updates
    index.insert(0.123, 0.456)
    print(f"\nafter insert: contains(0.123, 0.456) = {index.contains(0.123, 0.456)}")
    index.delete(0.123, 0.456)
    print(f"after delete: contains(0.123, 0.456) = {index.contains(0.123, 0.456)}")


if __name__ == "__main__":
    main()
