"""kNN scenario: "Dinner near me" over a clustered restaurant-style data set.

This mirrors the paper's second motivating example (Figure 1b): a location-
based app asks for the k nearest restaurants.  The script compares RSMI's
approximate expansion-based kNN algorithm (Algorithm 3) against the exact
best-first search on an R*-tree and on the MBR-augmented RSMI (RSMIa),
reporting latency and recall for several k.

Run with::

    python examples/nearest_neighbors.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines import RStarTree
from repro.core import RSMI, RSMIConfig
from repro.datasets import generate_tiger_like
from repro.nn import TrainingConfig
from repro.queries import brute_force_knn, generate_knn_queries


def main() -> None:
    points = generate_tiger_like(15_000, seed=5)
    print(f"data set: {points.shape[0]} Tiger-like restaurant locations")

    rsmi = RSMI(
        RSMIConfig(block_capacity=50, partition_threshold=1_500,
                   training=TrainingConfig(epochs=60))
    ).build(points)
    rstar = RStarTree(block_capacity=50).build(points)

    queries = generate_knn_queries(points, 50, seed=21, jitter=0.01)

    for k in (1, 10, 50):
        print(f"\nk = {k}")
        for name, query_fn, stats in (
            ("RSMI", lambda x, y, kk: rsmi.knn_query(x, y, kk).points, rsmi.stats),
            ("RSMIa", lambda x, y, kk: rsmi.knn_query_exact(x, y, kk).points, rsmi.stats),
            ("RR*", rstar.knn_query, rstar.stats),
        ):
            stats.reset()
            recalls, elapsed = [], 0.0
            for qx, qy in queries:
                start = time.perf_counter()
                reported = query_fn(float(qx), float(qy), k)
                elapsed += time.perf_counter() - start
                truth = brute_force_knn(points, float(qx), float(qy), k)
                truth_set = {tuple(p) for p in np.round(truth, 12)}
                found = {tuple(p) for p in np.round(reported, 12)}
                recalls.append(len(found & truth_set) / max(len(truth_set), 1))
            print(f"  {name:6s} avg latency {elapsed / len(queries) * 1000:7.3f} ms   "
                  f"avg blocks {stats.total_reads / len(queries):6.1f}   "
                  f"recall {np.mean(recalls):.3f}")


if __name__ == "__main__":
    main()
