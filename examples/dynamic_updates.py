"""Update-handling scenario: a growing POI database with periodic rebuilds.

The paper targets query-heavy workloads but still supports inserts and
deletes (Section 5) and proposes periodic rebuilds (RSMIr) to keep query
performance high (Section 6.2.5).  This script simulates a database that
keeps receiving new points: it measures query quality right after bulk
loading, after 30 % insertions, and after a rebuild, and also demonstrates
deletions.

Run with::

    python examples/dynamic_updates.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PeriodicRebuilder, RSMI, RSMIConfig
from repro.datasets import generate_skewed
from repro.nn import TrainingConfig
from repro.queries import brute_force_window, generate_window_queries


def window_recall_sample(index: RSMI, points: np.ndarray, seed: int) -> float:
    windows = generate_window_queries(points, 40, area_fraction=0.0002, seed=seed)
    recalls = []
    for window in windows:
        reported = index.window_query(window).points
        truth = brute_force_window(points, window)
        if truth.shape[0] == 0:
            recalls.append(1.0)
            continue
        truth_set = {tuple(p) for p in np.round(truth, 12)}
        found = {tuple(p) for p in np.round(reported, 12)}
        recalls.append(len(found & truth_set) / len(truth_set))
    return float(np.mean(recalls))


def main() -> None:
    base = generate_skewed(12_000, seed=1)
    incoming = generate_skewed(6_000, seed=42)

    index = RSMI(
        RSMIConfig(block_capacity=50, partition_threshold=1_500,
                   training=TrainingConfig(epochs=60))
    ).build(base)
    print(f"initial build: {index.n_points} points, {index.store.n_blocks} blocks, "
          f"recall={window_recall_sample(index, base, seed=7):.3f}")

    # stream 30% new points through the RSMIr wrapper (rebuild every 10%)
    rebuilder = PeriodicRebuilder(index, rebuild_fraction=0.10)
    inserted = []
    for i, (x, y) in enumerate(incoming[: int(0.3 * base.shape[0])]):
        rebuilder.insert(float(x), float(y))
        inserted.append((float(x), float(y)))
    all_points = np.vstack([base, np.asarray(inserted)])
    print(f"after 30% insertions ({len(inserted)} points, {rebuilder.n_rebuilds} rebuilds): "
          f"{index.n_points} points, {index.store.n_overflow_blocks} overflow blocks, "
          f"recall={window_recall_sample(index, all_points, seed=8):.3f}")

    # verify a few of the inserted points are queryable, then delete them
    sample = inserted[:100]
    found = sum(index.contains(x, y) for x, y in sample)
    print(f"inserted-point lookups: {found}/{len(sample)} found")
    deleted = sum(index.delete(x, y) for x, y in sample)
    still_there = sum(index.contains(x, y) for x, y in sample)
    print(f"deletions: {deleted} removed, {still_there} still reachable")


if __name__ == "__main__":
    main()
