"""Picklable serving specs: rebuild shard-identical indices in any process.

:class:`ServingSpec` is the unit of state the multi-process serving tier
ships to its workers: a shard-index factory (already picklable — see
:class:`~repro.sharding.index._ShardIndexFactory`), a resolved
:class:`~repro.sharding.policy.ShardingPolicy` instance, and the exact
per-shard point arrays of the index being served.  Rebuilding from a spec
goes through :meth:`ShardedSpatialIndex.build_assigned`, which constructs
every shard's wrapped index over the same array in the same order — so a
worker process, the parent, and a single-threaded reference all end up with
**byte-identical** shard structures, and therefore byte-identical answers
(window-result enumeration order included).

Nothing runtime-shared crosses the process boundary: the spec carries cache
*configuration* (``cache_blocks``/``cache_policy``), never live
:class:`~repro.storage.PageCache` or
:class:`~repro.storage.SharedBufferPool` objects, so every worker builds
its own private caches (see the fork/spawn-safety note in
:mod:`repro.storage.buffer_pool`).
"""

from __future__ import annotations

import pickle
from typing import Iterable, Optional

import numpy as np

from repro.geometry import Rect
from repro.sharding.index import EXACT_KINDS, ShardedSpatialIndex
from repro.sharding.policy import ShardingPolicy, make_policy
from repro.sharding.router import ShardRouter

__all__ = ["ServingSpec"]


class ServingSpec:
    """Everything needed to rebuild one sharded index, bit-for-bit.

    Parameters
    ----------
    factory:
        A picklable ``factory(points, shard_id, stats) -> index`` (use
        :func:`~repro.sharding.shard_index_factory`).
    policy:
        A resolved :class:`ShardingPolicy` **instance** (never a name: the
        resolved regions are part of the identity being shipped).
    shard_points:
        ``shard_id -> (n, 2) array`` of each shard's points, in the build
        order of the index being mirrored.
    exact_queries / cache_blocks / cache_policy / name:
        Forwarded to every rebuilt :class:`ShardedSpatialIndex`.
    """

    def __init__(
        self,
        factory,
        policy: ShardingPolicy,
        shard_points: dict,
        *,
        exact_queries: Optional[bool] = None,
        cache_blocks: Optional[int] = None,
        cache_policy: str = "lru",
        name: Optional[str] = None,
    ):
        if not isinstance(policy, ShardingPolicy):
            raise TypeError("ServingSpec requires a resolved ShardingPolicy instance")
        self.factory = factory
        self.policy = policy
        self.shard_points = {
            int(shard_id): np.asarray(points, dtype=float).reshape(-1, 2)
            for shard_id, points in shard_points.items()
        }
        kind = getattr(factory, "kind", None)
        if exact_queries is None:
            exact_queries = kind in EXACT_KINDS
        self.exact_queries = bool(exact_queries)
        self.cache_blocks = cache_blocks
        self.cache_policy = cache_policy
        self.name = name or f"Serving[{kind or 'index'}x{policy.n_shards}:{policy.name}]"

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_points(
        cls,
        factory,
        points: np.ndarray,
        n_shards: int = 4,
        policy="grid",
        data_space: Optional[Rect] = None,
        **kwargs,
    ) -> "ServingSpec":
        """Partition ``points`` the way :meth:`ShardedSpatialIndex.build`
        would: same policy resolution, same owner computation, same
        per-shard array order — so a spec-built index and a directly built
        one are byte-identical."""
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        if points.shape[0] == 0:
            raise ValueError("cannot build a serving spec over an empty point set")
        data_space = data_space if data_space is not None else Rect.unit()
        if not isinstance(policy, ShardingPolicy):
            policy = make_policy(policy, n_shards, data_space, sample=points)
        owners = ShardRouter(policy).shards_for_points(points)
        shard_points = {
            shard_id: points[owners == shard_id] for shard_id in range(policy.n_shards)
        }
        return cls(factory, policy, shard_points, **kwargs)

    @classmethod
    def from_index(cls, index: ShardedSpatialIndex, **kwargs) -> "ServingSpec":
        """Snapshot a *built* sharded index — including one whose topology
        the online rebalancer has already refined (the adaptive policy and
        the live per-shard point sets pickle along)."""
        index._require_built()
        shard_points = {
            shard_id: index.live_shard_points(shard_id)
            for shard_id in range(index.n_shards)
        }
        kwargs.setdefault("exact_queries", index.exact_queries)
        kwargs.setdefault("cache_blocks", index.cache_blocks)
        kwargs.setdefault("cache_policy", index.cache_policy)
        kwargs.setdefault("name", index.name)
        return cls(index.factory, index.policy, shard_points, **kwargs)

    # -- derived views ---------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.policy.n_shards

    @property
    def n_points(self) -> int:
        return sum(points.shape[0] for points in self.shard_points.values())

    def subset(self, shard_ids: Iterable[int]) -> "ServingSpec":
        """The spec restricted to ``shard_ids`` (a worker's owned shards).

        The policy ships whole — workers must route and reason about the
        full topology — only the point payload is restricted.
        """
        keep = set(int(s) for s in shard_ids)
        return ServingSpec(
            self.factory,
            self.policy,
            {s: p for s, p in self.shard_points.items() if s in keep},
            exact_queries=self.exact_queries,
            cache_blocks=self.cache_blocks,
            cache_policy=self.cache_policy,
            name=self.name,
        )

    def build_index(self) -> ShardedSpatialIndex:
        """Rebuild a :class:`ShardedSpatialIndex` over this spec's shards.

        The policy is deep-copied (pickle round-trip) so concurrent rebuilds
        — the parent's router, each worker, a test's reference index — never
        share mutable policy state.
        """
        index = ShardedSpatialIndex(
            self.factory,
            policy=pickle.loads(pickle.dumps(self.policy)),
            exact_queries=self.exact_queries,
            name=self.name,
            cache_blocks=self.cache_blocks,
            cache_policy=self.cache_policy,
        )
        return index.build_assigned(self.shard_points)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServingSpec(name={self.name!r}, shards={self.n_shards}, "
            f"points={self.n_points})"
        )
