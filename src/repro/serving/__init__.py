"""Multi-core serving: process-pool shards behind an async front door.

The paper's cost model is block accesses, but a served workload feels
wall-clock latency under offered load — and a single Python process caps
throughput at one core.  This package turns the share-nothing sharding
layer into real multi-core serving:

* :class:`ServingSpec` — a picklable description of one sharded index
  (factory + resolved policy + per-shard point arrays) from which any
  process rebuilds byte-identical shards;
* :class:`ParallelShardEngine` — the batch-query surface of
  :class:`~repro.sharding.ShardedBatchEngine` executed on per-shard-group
  worker processes, with optional read replicas (writes fan out, reads
  round-robin);
* :class:`FrontDoor` — an asyncio ingress applying per-tenant token-bucket
  admission control, bounded-queue overload shedding and latency-aware
  adaptive batching, usable as a deterministic replayer or as a wall-clock
  open-loop load generator.
"""

from repro.serving.engine import ParallelShardEngine
from repro.serving.frontdoor import (
    AdmissionReport,
    FrontDoor,
    FrontDoorReport,
    TokenBucket,
    admit_operations,
)
from repro.serving.spec import ServingSpec

__all__ = [
    "AdmissionReport",
    "FrontDoor",
    "FrontDoorReport",
    "ParallelShardEngine",
    "ServingSpec",
    "TokenBucket",
    "admit_operations",
]
