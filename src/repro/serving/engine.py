"""Process-pool serving: per-shard-group workers behind one batch engine.

:class:`ParallelShardEngine` is the multi-core sibling of
:class:`~repro.sharding.ShardedBatchEngine`: the same whole-batch query
surface and the same :class:`~repro.core.batch.BatchResult` accounting, but
the per-shard sub-batches execute in **worker processes** — real
parallelism instead of GIL-shared threads.

Worker topology
---------------
* Shard ``s`` belongs to **group** ``s % n_workers`` (with at most one
  group per shard, so extra workers never idle-own nothing).
* Each group is served by one :class:`~concurrent.futures
  .ProcessPoolExecutor` sized to exactly one long-lived worker, which
  builds the group's shards in-process from a picklable
  :class:`~repro.serving.spec.ServingSpec` subset (see
  :mod:`repro.serving.worker`).
* With ``replicas > 1`` each group gets that many identical workers:
  **reads round-robin** deterministically across a group's replicas, every
  **write fans out** to all of them (and delete outcomes must agree), so
  replicas stay bit-identical and a hot shard's read load spreads.

The parent does all routing through its own
:class:`~repro.sharding.router.ShardRouter` (rebuilt over the spec, so its
overflow bookkeeping matches a single-threaded index built from the same
assignment).  Answers are byte-identical to the single-threaded engines —
the differential fuzz suite (``tests/test_parallel_differential.py``)
asserts this across index kinds, sharding policies and worker counts.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

import numpy as np

from repro.analytics.ops import (
    QueryRequest,
    QueryResult,
    warn_deprecated_entry_point,
)
from repro.core.batch import BatchResult, latency_from_durations, latency_uniform
from repro.serving import worker as worker_mod
from repro.serving.spec import ServingSpec
from repro.sharding.router import ShardRouter

__all__ = ["ParallelShardEngine"]

_EMPTY = np.empty((0, 2), dtype=float)


class ParallelShardEngine:
    """Execute query batches against process-pool-resident shards.

    Parameters
    ----------
    spec:
        The :class:`ServingSpec` describing the index to serve.
    n_workers:
        Number of shard groups / worker processes (>= 1; capped at the
        shard count).
    replicas:
        Identical workers per group (>= 1); reads round-robin, writes fan
        out to all.
    mode / reorder:
        Forwarded to every worker's per-shard engines (same semantics as
        :class:`~repro.sharding.ShardedBatchEngine`).
    start_method:
        Optional :mod:`multiprocessing` start method (``"fork"`` /
        ``"spawn"``); None uses the platform default.  Everything shipped
        to workers is picklable, so both work.
    """

    #: the scenario runner routes writes through engines advertising this
    applies_writes = True

    def __init__(
        self,
        spec: ServingSpec,
        n_workers: int = 2,
        replicas: int = 1,
        mode: str = "auto",
        reorder: bool = False,
        start_method: Optional[str] = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.spec = spec
        self.n_workers = min(int(n_workers), spec.n_shards)
        self.replicas = int(replicas)
        self.mode = mode
        self.name = spec.name
        #: capability flags, mirroring the sharded index the workers rebuild
        self.supports_exact_results = bool(spec.exact_queries)
        self.supports_attributes = True
        # the parent routes with its own router over a private policy copy;
        # replaying the spec's assignment reproduces the overflow extents a
        # directly built index would have recorded
        self.router = ShardRouter(pickle.loads(pickle.dumps(spec.policy)))
        for shard_id in sorted(spec.shard_points):
            points = spec.shard_points[shard_id]
            if points.shape[0] > 0:
                self.router.record_assignments(
                    points, np.full(points.shape[0], shard_id, dtype=np.int64)
                )
        self._groups: dict[int, list[int]] = {
            group: [] for group in range(self.n_workers)
        }
        for shard_id in range(spec.n_shards):
            self._groups[shard_id % self.n_workers].append(shard_id)
        mp_context = None
        if start_method is not None:
            import multiprocessing

            mp_context = multiprocessing.get_context(start_method)
        self._pools: dict[int, list[ProcessPoolExecutor]] = {}
        self._rr: dict[int, int] = {group: 0 for group in self._groups}
        self._closed = False
        self._n_points = spec.n_points
        self._write_logical = 0
        self._write_physical = 0
        try:
            for group, shard_ids in self._groups.items():
                self._pools[group] = [
                    ProcessPoolExecutor(max_workers=1, mp_context=mp_context)
                    for _ in range(self.replicas)
                ]
            expected = {
                shard_id: spec.shard_points.get(shard_id, _EMPTY).shape[0]
                for shard_id in range(spec.n_shards)
            }
            futures = [
                (group, pool.submit(worker_mod.worker_init,
                                    spec.subset(shard_ids), shard_ids, mode, reorder))
                for group, shard_ids in self._groups.items()
                for pool in self._pools[group]
            ]
            for group, future in futures:
                built = future.result()
                for shard_id, n_points in built.items():
                    if n_points != expected[shard_id]:
                        raise RuntimeError(
                            f"worker group {group} built shard {shard_id} with "
                            f"{n_points} points, spec has {expected[shard_id]}"
                        )
        except BaseException:
            self.close()
            raise

    # -- convenience constructors ----------------------------------------------

    @classmethod
    def from_points(cls, factory, points, n_shards=4, policy="grid", **kwargs):
        """Build straight from a point set (spec construction included)."""
        spec_kwargs = {
            key: kwargs.pop(key)
            for key in ("exact_queries", "cache_blocks", "cache_policy", "name")
            if key in kwargs
        }
        spec = ServingSpec.from_points(
            factory, points, n_shards=n_shards, policy=policy, **spec_kwargs
        )
        return cls(spec, **kwargs)

    @classmethod
    def from_index(cls, index, **kwargs):
        """Serve a snapshot of a built (possibly rebalanced) sharded index."""
        return cls(ServingSpec.from_index(index), **kwargs)

    # -- dispatch plumbing -------------------------------------------------------

    def _read_pool(self, group: int) -> ProcessPoolExecutor:
        """The next replica of ``group`` in deterministic round-robin order."""
        pools = self._pools[group]
        if len(pools) == 1:
            return pools[0]
        slot = self._rr[group]
        self._rr[group] = (slot + 1) % len(pools)
        return pools[slot]

    def _merge_reads(self, per_group_reads) -> tuple[dict, int]:
        per_shard: dict[int, int] = {}
        physical = 0
        for reads in per_group_reads:
            for shard_id, (logical, phys) in reads.items():
                per_shard[shard_id] = per_shard.get(shard_id, 0) + logical
                physical += phys
        return per_shard, physical

    def _finalize(
        self,
        results: list,
        per_group_reads,
        group_seconds: dict,
        group_positions: dict,
        shard_counts: dict,
    ) -> BatchResult:
        per_shard, physical = self._merge_reads(per_group_reads)
        per_shard_latency = {}
        per_query = np.zeros(len(results), dtype=float)
        for group, seconds in sorted(group_seconds.items()):
            positions = group_positions.get(group) or []
            if not positions:
                continue
            per_query[positions] += seconds / len(positions)
            for shard_id, count in sorted(shard_counts.get(group, {}).items()):
                summary = latency_uniform(seconds * count / len(positions), count)
                if summary is not None:
                    per_shard_latency[shard_id] = summary
        latency = latency_from_durations(per_query) if per_shard_latency else None
        return BatchResult(
            results=results,
            total_block_accesses=sum(per_shard.values()),
            per_shard_block_accesses=per_shard,
            total_physical_accesses=physical,
            latency=latency,
            per_shard_latency=per_shard_latency or None,
        )

    # -- queries -----------------------------------------------------------------

    def execute(self, request: QueryRequest) -> QueryResult:
        """Execute one :class:`~repro.analytics.ops.QueryRequest`.

        Same protocol as the single-process engines.  Aggregate requests
        ship **partials** back from the workers — an O(1)-sized object per
        (spec, shard) instead of the shard's window point set — and merge
        them parent-side in shard-id order, so answers are identical to
        :class:`~repro.sharding.ShardedBatchEngine` over the same spec.
        """
        if request.kind == "point":
            return QueryResult.from_batch("point", self._run_points(request.points))
        if request.kind == "window":
            return QueryResult.from_batch("window", self._run_windows(request.windows))
        if request.kind == "knn":
            return QueryResult.from_batch("knn", self._run_knn(request.points, request.k))
        return QueryResult.from_batch(
            "aggregate", self._run_aggregates(request.aggregates)
        )

    def point_queries(self, points: np.ndarray) -> BatchResult:
        """Deprecated shim over :meth:`execute`; use
        ``execute(QueryRequest.for_points(...))`` in new code."""
        warn_deprecated_entry_point(
            "ParallelShardEngine.point_queries", "execute(QueryRequest.for_points(...))"
        )
        return self._run_points(points)

    def window_queries(self, windows) -> BatchResult:
        """Deprecated shim over :meth:`execute`; use
        ``execute(QueryRequest.for_windows(...))`` in new code."""
        warn_deprecated_entry_point(
            "ParallelShardEngine.window_queries",
            "execute(QueryRequest.for_windows(...))",
        )
        return self._run_windows(windows)

    def knn_queries(self, queries: np.ndarray, k: int) -> BatchResult:
        """Deprecated shim over :meth:`execute`; use
        ``execute(QueryRequest.for_knn(...))`` in new code."""
        warn_deprecated_entry_point(
            "ParallelShardEngine.knn_queries", "execute(QueryRequest.for_knn(...))"
        )
        return self._run_knn(queries, k)

    def _run_points(self, points: np.ndarray) -> BatchResult:
        """Membership of every row of ``points``; booleans in input order."""
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        results: list = [False] * points.shape[0]
        if points.shape[0] == 0:
            return BatchResult(results=results, total_block_accesses=0,
                               per_shard_block_accesses={},
                               total_physical_accesses=0)
        owners = self.router.shards_for_points(points)
        shard_positions = {
            int(shard_id): np.nonzero(owners == shard_id)[0].tolist()
            for shard_id in np.unique(owners)
        }
        payloads: dict[int, dict] = {}
        group_positions: dict[int, list] = {}
        shard_counts: dict[int, dict] = {}
        for shard_id, positions in shard_positions.items():
            group = shard_id % self.n_workers
            payloads.setdefault(group, {})[shard_id] = points[positions]
            group_positions.setdefault(group, []).extend(positions)
            shard_counts.setdefault(group, {})[shard_id] = len(positions)
        futures = {
            group: self._read_pool(group).submit(worker_mod.worker_points, payload)
            for group, payload in sorted(payloads.items())
        }
        per_group_reads = []
        group_seconds = {}
        for group, future in sorted(futures.items()):
            shard_results, reads, seconds = future.result()
            per_group_reads.append(reads)
            group_seconds[group] = seconds
            for shard_id, found in shard_results.items():
                for position, hit in zip(shard_positions[shard_id], found):
                    results[position] = bool(hit)
        return self._finalize(
            results, per_group_reads, group_seconds, group_positions, shard_counts
        )

    def _run_windows(self, windows) -> BatchResult:
        """Window queries; per-window results merge per-shard chunks in
        shard-id order, exactly like the single-process sharded engine."""
        windows = list(windows)
        if not windows:
            return BatchResult(results=[], total_block_accesses=0,
                               per_shard_block_accesses={},
                               total_physical_accesses=0)
        by_shard: dict[int, list[int]] = {}
        for window_index, window in enumerate(windows):
            for shard_id in self.router.shards_for_window(window):
                by_shard.setdefault(shard_id, []).append(window_index)
        payloads: dict[int, dict] = {}
        group_positions: dict[int, list] = {}
        shard_counts: dict[int, dict] = {}
        for shard_id, window_indices in by_shard.items():
            group = shard_id % self.n_workers
            payloads.setdefault(group, {})[shard_id] = [windows[i] for i in window_indices]
            group_positions.setdefault(group, []).extend(window_indices)
            shard_counts.setdefault(group, {})[shard_id] = len(window_indices)
        futures = {
            group: self._read_pool(group).submit(worker_mod.worker_windows, payload)
            for group, payload in sorted(payloads.items())
        }
        parts: list[list] = [[] for _ in windows]
        per_group_reads = []
        group_seconds = {}
        for group, future in sorted(futures.items()):
            shard_chunks, reads, seconds = future.result()
            per_group_reads.append(reads)
            group_seconds[group] = seconds
            for shard_id, chunks in shard_chunks.items():
                for window_index, chunk in zip(by_shard[shard_id], chunks):
                    parts[window_index].append((shard_id, chunk))
        results = []
        for chunks in parts:
            chunks = [chunk for _, chunk in sorted(chunks, key=lambda c: c[0])]
            chunks = [chunk for chunk in chunks if chunk.shape[0] > 0]
            results.append(np.vstack(chunks) if chunks else _EMPTY.copy())
        return self._finalize(
            results, per_group_reads, group_seconds, group_positions, shard_counts
        )

    def _run_knn(self, queries: np.ndarray, k: int) -> BatchResult:
        """kNN: every group computes its owned shards' local top-k; the
        parent merges with the same ``(distance, px, py)`` sort + truncate
        the best-first single-threaded expansion ends in.

        Answers are byte-identical to the single-threaded engine; the
        *access accounting* is an upper bound on it — the single-threaded
        expansion can prune far shards using the running k-th distance,
        a bound that cannot be shared across processes without
        serialising the fan-out, so here every shard always answers."""
        if k < 1:
            raise ValueError("k must be >= 1")
        queries = np.asarray(queries, dtype=float).reshape(-1, 2)
        if queries.shape[0] == 0:
            return BatchResult(results=[], total_block_accesses=0,
                               per_shard_block_accesses={},
                               total_physical_accesses=0)
        started = time.perf_counter()
        futures = {
            group: self._read_pool(group).submit(worker_mod.worker_knn, queries, k)
            for group in sorted(self._groups)
        }
        merged: list[list] = [[] for _ in range(queries.shape[0])]
        per_group_reads = []
        for _group, future in sorted(futures.items()):
            candidates, reads, _seconds = future.result()
            per_group_reads.append(reads)
            for query_index, best in enumerate(candidates):
                merged[query_index].extend(best)
        results = []
        for best in merged:
            best.sort()
            del best[k:]
            results.append(
                np.asarray([(px, py) for _, px, py in best], dtype=float).reshape(-1, 2)
            )
        per_shard, physical = self._merge_reads(per_group_reads)
        return BatchResult(
            results=results,
            total_block_accesses=sum(per_shard.values()),
            per_shard_block_accesses=per_shard,
            total_physical_accesses=physical,
            latency=latency_uniform(time.perf_counter() - started, queries.shape[0]),
        )

    def _run_aggregates(self, specs) -> BatchResult:
        """Aggregates with worker-side push-down.

        Every spec fans out to the shards its window intersects (grouped
        per worker); each worker folds its shards' blocks into one
        unfinalised partial per (spec, shard) and ships the partials back.
        The parent merges them in shard-id order and finalises — the same
        deterministic merge tree the single-process sharded engine uses,
        so the answers agree bit-for-bit for count/sum/top-k.
        """
        specs = list(specs)
        if not specs:
            return BatchResult(results=[], total_block_accesses=0,
                               per_shard_block_accesses={},
                               total_physical_accesses=0)
        by_shard: dict[int, list[int]] = {}
        for spec_index, spec in enumerate(specs):
            for shard_id in self.router.shards_for_window(spec.window):
                by_shard.setdefault(shard_id, []).append(spec_index)
        payloads: dict[int, dict] = {}
        group_positions: dict[int, list] = {}
        shard_counts: dict[int, dict] = {}
        for shard_id, spec_indices in by_shard.items():
            group = shard_id % self.n_workers
            payloads.setdefault(group, {})[shard_id] = [specs[i] for i in spec_indices]
            group_positions.setdefault(group, []).extend(spec_indices)
            shard_counts.setdefault(group, {})[shard_id] = len(spec_indices)
        futures = {
            group: self._read_pool(group).submit(worker_mod.worker_aggregates, payload)
            for group, payload in sorted(payloads.items())
        }
        parts: list[list] = [[] for _ in specs]
        per_group_reads = []
        group_seconds = {}
        for group, future in sorted(futures.items()):
            shard_partials, reads, seconds = future.result()
            per_group_reads.append(reads)
            group_seconds[group] = seconds
            for shard_id, partials in shard_partials.items():
                for spec_index, partial in zip(by_shard[shard_id], partials):
                    parts[spec_index].append((shard_id, partial))
        results = []
        for spec, chunks in zip(specs, parts):
            merged = spec.new_partial()
            for _, partial in sorted(chunks, key=lambda c: c[0]):
                merged = merged.merge(partial)
            results.append(spec.finalize(merged))
        return self._finalize(
            results, per_group_reads, group_seconds, group_positions, shard_counts
        )

    # -- writes ------------------------------------------------------------------

    def insert(self, x: float, y: float) -> None:
        """Insert through the owning shard's worker (all replicas)."""
        x, y = float(x), float(y)
        shard_id = self.router.record_insert(x, y)
        group = shard_id % self.n_workers
        futures = [
            pool.submit(worker_mod.worker_insert, shard_id, x, y)
            for pool in self._pools[group]
        ]
        deltas = [future.result() for future in futures]
        # replicas duplicate the work; bill one replica's reads so the
        # accounting matches a single-threaded index applying this write once
        self._write_logical += deltas[0][0]
        self._write_physical += deltas[0][1]
        self._n_points += 1

    def delete(self, x: float, y: float) -> bool:
        """Delete through the owning shard's worker (all replicas agree)."""
        x, y = float(x), float(y)
        shard_id = self.router.shard_for_point(x, y)
        group = shard_id % self.n_workers
        futures = [
            pool.submit(worker_mod.worker_delete, shard_id, x, y)
            for pool in self._pools[group]
        ]
        outcomes = [future.result() for future in futures]
        removed = outcomes[0][0]
        if any(other != removed for other, _ in outcomes[1:]):
            raise RuntimeError(
                f"replica divergence: delete({x}, {y}) outcomes "
                f"{[other for other, _ in outcomes]}"
            )
        self._write_logical += outcomes[0][1][0]
        self._write_physical += outcomes[0][1][1]
        if removed:
            self._n_points -= 1
        return removed

    def pop_write_accesses(self) -> tuple[int, int]:
        """(logical, physical) reads accumulated by writes since last call."""
        out = (self._write_logical, self._write_physical)
        self._write_logical = 0
        self._write_physical = 0
        return out

    # -- accounting / lifecycle --------------------------------------------------

    @property
    def n_points(self) -> int:
        """Live points across all shards (tracked parent-side)."""
        return self._n_points

    @property
    def n_processes(self) -> int:
        return sum(len(pools) for pools in self._pools.values())

    def close(self) -> None:
        """Shut every worker pool down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for pools in self._pools.values():
            for pool in pools:
                pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ParallelShardEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelShardEngine(name={self.name!r}, shards={self.spec.n_shards}, "
            f"workers={self.n_workers}, replicas={self.replicas})"
        )
