"""What runs inside one serving worker process.

Each :class:`~concurrent.futures.ProcessPoolExecutor` of the parallel
engine is sized to exactly **one** long-lived worker, so this module's
process-global :class:`_WorkerState` is that worker's whole world: the
partial :class:`~repro.sharding.ShardedSpatialIndex` holding only the
shards the worker owns (rebuilt in-process from a picklable
:class:`~repro.serving.spec.ServingSpec` subset — no index state, cache or
pool object ever crosses the process boundary), plus a
:class:`~repro.sharding.ShardedBatchEngine` whose cached per-shard
``BatchQueryEngine``s serve the sub-batches.

The parent does all routing; tasks arrive already grouped per shard.  Every
task resets the touched shards' :class:`~repro.storage.AccessStats` on
entry and returns ``{shard_id: (logical, physical)}`` read deltas plus its
own wall time, so the parent can aggregate block accounting and latency
exactly like the single-process engines do.

Answers are byte-identical to the single-threaded engine because the shard
structures are byte-identical (see :meth:`ShardedSpatialIndex
.build_assigned`) and each sub-batch goes through the very same per-shard
engine code path (``prefetch_windows`` warming and the exact-RSMI adapter
included).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.serving.spec import ServingSpec
from repro.sharding.engine import ShardedBatchEngine

__all__ = [
    "worker_init",
    "worker_points",
    "worker_windows",
    "worker_aggregates",
    "worker_knn",
    "worker_insert",
    "worker_delete",
]

_EMPTY = np.empty((0, 2), dtype=float)

#: the process-global worker state; exactly one per worker process because
#: every pool is constructed with ``max_workers=1``
_STATE: Optional["_WorkerState"] = None


class _WorkerState:
    def __init__(self, spec: ServingSpec, shard_ids, mode: str, reorder: bool):
        self.shard_ids = sorted(int(s) for s in shard_ids)
        self.index = spec.subset(self.shard_ids).build_index()
        self.engine = ShardedBatchEngine(self.index, mode=mode, reorder=reorder)

    def reads_since_reset(self, shard_ids) -> dict:
        out = {}
        for shard_id in shard_ids:
            stats = self.index.shards[shard_id].stats
            if stats.total_reads > 0:
                out[shard_id] = (int(stats.total_reads), int(stats.physical_reads))
        return out


def _state() -> "_WorkerState":
    if _STATE is None:
        raise RuntimeError("worker not initialised; the pool must run worker_init first")
    return _STATE


# -- lifecycle -----------------------------------------------------------------


def worker_init(spec: ServingSpec, shard_ids, mode: str = "auto", reorder: bool = False):
    """Build this worker's owned shards; returns ``{shard_id: n_points}``."""
    global _STATE
    _STATE = _WorkerState(spec, shard_ids, mode, reorder)
    return {
        shard_id: _STATE.index.shards[shard_id].n_points
        for shard_id in _STATE.shard_ids
    }


# -- reads ---------------------------------------------------------------------


def worker_points(groups: dict):
    """Membership sub-batches: ``{shard_id: (n, 2) array}`` of queries.

    Returns ``(results, reads, seconds)`` with ``results[shard_id]`` a
    boolean list aligned to the shard's query array.
    """
    state = _state()
    started = time.perf_counter()
    results: dict[int, list] = {}
    for shard_id in sorted(groups):
        queries = np.asarray(groups[shard_id], dtype=float).reshape(-1, 2)
        shard = state.index.shards[shard_id]
        shard.stats.reset()
        if shard.is_empty:
            results[shard_id] = [False] * queries.shape[0]
            continue
        batch = state.engine.engine_for(shard_id)._run_points(queries)
        results[shard_id] = [bool(found) for found in batch.results]
    reads = state.reads_since_reset(sorted(groups))
    return results, reads, time.perf_counter() - started


def worker_windows(groups: dict):
    """Window sub-batches: ``{shard_id: list[Rect]}`` (already routed).

    Returns ``(chunks, reads, seconds)`` with ``chunks[shard_id]`` the
    shard's per-window point arrays in input order — the parent merges the
    per-shard chunks in shard-id order, exactly like
    :meth:`ShardedBatchEngine.window_queries`.
    """
    state = _state()
    started = time.perf_counter()
    chunks: dict[int, list] = {}
    for shard_id in sorted(groups):
        windows = list(groups[shard_id])
        shard = state.index.shards[shard_id]
        shard.stats.reset()
        if shard.is_empty:
            chunks[shard_id] = [_EMPTY.copy() for _ in windows]
            continue
        admitted = shard.prefetch_windows(windows)
        batch = state.engine.engine_for(shard_id)._run_windows(windows)
        if admitted:
            # the per-shard engine reset the counters at batch entry; the
            # speculative I/O belongs to this task's interval
            shard.stats.record_block_prefetch(admitted)
        chunks[shard_id] = list(batch.results)
    reads = state.reads_since_reset(sorted(groups))
    return chunks, reads, time.perf_counter() - started


def worker_aggregates(groups: dict):
    """Aggregate sub-batches: ``{shard_id: list[AggregateSpec]}`` (routed).

    Returns ``(partials, reads, seconds)`` with ``partials[shard_id]`` one
    **unfinalised** picklable partial per spec in input order — this is
    where the parallel tier's push-down pays: an O(1)-sized partial crosses
    the process boundary instead of the shard's window point set, and the
    parent merges partials across workers in shard-id order exactly like
    :meth:`ShardedBatchEngine._run_aggregates` merges across shards.
    """
    state = _state()
    started = time.perf_counter()
    partials: dict[int, list] = {}
    for shard_id in sorted(groups):
        specs = list(groups[shard_id])
        shard = state.index.shards[shard_id]
        shard.stats.reset()
        if shard.is_empty:
            partials[shard_id] = [spec.new_partial() for spec in specs]
            continue
        admitted = shard.prefetch_windows([spec.window for spec in specs])
        batch = state.engine.engine_for(shard_id).aggregate_partials(specs)
        if admitted:
            shard.stats.record_block_prefetch(admitted)
        partials[shard_id] = list(batch.results)
    reads = state.reads_since_reset(sorted(groups))
    return partials, reads, time.perf_counter() - started


def worker_knn(queries: np.ndarray, k: int):
    """Local top-k over this worker's owned shards, for every query.

    Returns ``(candidates, reads, seconds)`` where ``candidates[i]`` is a
    list of at most ``k * n_owned_shards`` ``(distance, px, py)`` tuples;
    the parent merges the workers' candidate lists with the same
    ``sort(); del [k:]`` the single-threaded best-first expansion uses, so
    the merged answer is byte-identical (any shard the reference expansion
    skipped can only contribute strictly farther candidates).
    """
    state = _state()
    started = time.perf_counter()
    queries = np.asarray(queries, dtype=float).reshape(-1, 2)
    for shard_id in state.shard_ids:
        state.index.shards[shard_id].stats.reset()
    candidates: list[list] = []
    for x, y in queries:
        x, y = float(x), float(y)
        best: list[tuple[float, float, float]] = []
        for shard_id in state.shard_ids:
            shard = state.index.shards[shard_id]
            if shard.is_empty:
                continue
            for px, py in shard.knn_query(x, y, k):
                distance = float(np.hypot(px - x, py - y))
                best.append((distance, float(px), float(py)))
        best.sort()
        del best[k:]
        candidates.append(best)
    reads = state.reads_since_reset(state.shard_ids)
    return candidates, reads, time.perf_counter() - started


# -- writes --------------------------------------------------------------------


def _write_bracket(shard_id: int):
    stats = _state().index.shards[shard_id].stats
    return int(stats.total_reads), int(stats.physical_reads)


def worker_insert(shard_id: int, x: float, y: float):
    """Apply one insert to the owned shard; returns the read delta."""
    state = _state()
    before_logical, before_physical = _write_bracket(shard_id)
    shard = state.index.shards[shard_id]
    shard.insert(float(x), float(y), state.index.factory)
    after_logical, after_physical = _write_bracket(shard_id)
    return (
        max(0, after_logical - before_logical),
        max(0, after_physical - before_physical),
    )


def worker_delete(shard_id: int, x: float, y: float):
    """Apply one delete to the owned shard; returns ``(removed, delta)``."""
    state = _state()
    before_logical, before_physical = _write_bracket(shard_id)
    removed = bool(state.index.shards[shard_id].delete(float(x), float(y)))
    after_logical, after_physical = _write_bracket(shard_id)
    return removed, (
        max(0, after_logical - before_logical),
        max(0, after_physical - before_physical),
    )
