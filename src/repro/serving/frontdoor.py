"""The async front door: admission control, rate limiting, adaptive batching.

:class:`FrontDoor` accepts an interleaved multi-tenant
:class:`~repro.workloads.stream.Operation` stream and serves it against any
batch engine (the process-pool :class:`~repro.serving.ParallelShardEngine`,
or the single-process engines) from an asyncio event loop:

* **admission control** — each tenant gets a :class:`TokenBucket` refilled
  by the operations' *virtual* arrival instants, so the accept/reject
  sequence is a pure function of the stream (same spec + seed ⇒ identical
  decisions, asserted by the seeded admission test) and never depends on
  wall-clock scheduling;
* **overload shedding** — in paced mode a bounded inflight queue
  (``max_inflight``) drops arrivals that find it full, which is the
  wall-clock counterpart of the hockey-stick the latency sweeps measure;
* **adaptive batching** — the dispatcher takes ``clamp(queue_depth,
  min_batch, max_batch)`` operations per engine call: deep queues amortise
  per-call overhead into big batches, low rates shrink toward single-op
  dispatch and shave the batch-of-64 service quantum.

Reads batch together (split per kind, like the scenario runner's flush);
writes dispatch singly and never re-order around reads — the stream's
read/write interleaving is preserved exactly, so collected answers are
byte-identical to a sequential replay of the accepted operations.

:func:`admit_operations` applies the same token-bucket admission as a
deterministic stream pre-filter (no event loop), which is what the CLI's
``--tenant-rate`` uses so oracle-checked scenario runs stay reproducible.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.analytics.ops import QueryRequest
from repro.workloads.latency import LatencySummary, PercentileSketch
from repro.workloads.stream import Operation

__all__ = [
    "TokenBucket",
    "AdmissionReport",
    "admit_operations",
    "FrontDoor",
    "FrontDoorReport",
]

_READ_KINDS = ("point", "window", "knn")


class TokenBucket:
    """A token bucket refilled along a (virtual or wall) timeline.

    ``rate`` tokens accrue per second up to ``burst``; each admitted
    operation spends one.  Driven by the stream's virtual arrival instants
    the decisions are deterministic — time only ever moves forward, and
    same timestamps ⇒ same refills ⇒ same accept/reject sequence.
    """

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError("rate must be > 0")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = 0.0

    def admit(self, now: float) -> bool:
        """Spend one token at instant ``now``; False when none is available."""
        now = float(now)
        if now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
            self._last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class AdmissionReport:
    """The deterministic outcome of token-bucket admission over one stream."""

    n_offered: int = 0
    n_accepted: int = 0
    #: per-tenant rate-limit drops
    drops_by_tenant: dict = field(default_factory=dict)
    #: one accept/reject flag per offered operation, in stream order
    decisions: list = field(default_factory=list)

    @property
    def n_dropped(self) -> int:
        return self.n_offered - self.n_accepted

    def as_dict(self) -> dict:
        return {
            "n_offered": self.n_offered,
            "n_accepted": self.n_accepted,
            "n_dropped": self.n_dropped,
            "drops_by_tenant": {str(t): n for t, n in sorted(self.drops_by_tenant.items())},
        }


class _Admission:
    """Lazily created per-tenant buckets sharing one (rate, burst) config."""

    def __init__(self, tenant_rate: Optional[float], burst: float):
        self.tenant_rate = tenant_rate
        self.burst = float(burst)
        self._buckets: dict[int, TokenBucket] = {}
        self.report = AdmissionReport()

    def admit(self, op: Operation) -> bool:
        self.report.n_offered += 1
        if self.tenant_rate is None:
            accepted = True
        else:
            bucket = self._buckets.get(op.tenant)
            if bucket is None:
                bucket = self._buckets[op.tenant] = TokenBucket(
                    self.tenant_rate, self.burst
                )
            accepted = bucket.admit(op.arrival_time)
        self.report.decisions.append(accepted)
        if accepted:
            self.report.n_accepted += 1
        else:
            self.report.drops_by_tenant[op.tenant] = (
                self.report.drops_by_tenant.get(op.tenant, 0) + 1
            )
        return accepted


def admit_operations(
    operations: Sequence[Operation],
    tenant_rate: float,
    burst: float = 8.0,
) -> tuple[list[Operation], AdmissionReport]:
    """Filter a stream through per-tenant token buckets, deterministically.

    Dropped operations vanish for every consumer alike — the index under
    test and the shadow oracle replay the same accepted stream, so all the
    differential machinery keeps working on rate-limited runs.
    """
    admission = _Admission(float(tenant_rate), burst)
    accepted = [op for op in operations if admission.admit(op)]
    return accepted, admission.report


@dataclass
class FrontDoorReport:
    """What one :meth:`FrontDoor.serve` call did."""

    #: the admission outcome (deterministic part)
    admission: AdmissionReport
    #: paced-mode arrivals shed because the inflight queue was full
    n_shed: int = 0
    #: operations actually executed
    n_served: int = 0
    #: engine-call batch sizes, in dispatch order
    batch_sizes: list = field(default_factory=list)
    #: wall-clock sojourn summary (enqueue -> completion; paced mode only)
    sojourn: Optional[LatencySummary] = None
    #: wall seconds between first dispatch and last completion
    elapsed_s: float = 0.0
    #: answers aligned to the served operations (when collected)
    answers: Optional[list] = None

    @property
    def mean_batch_size(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0


class FrontDoor:
    """Serve an operation stream against a batch engine from an event loop.

    Parameters
    ----------
    engine:
        Anything with ``point_queries`` / ``window_queries`` /
        ``knn_queries``; writes go through the engine's own
        ``insert``/``delete`` when it advertises ``applies_writes`` (the
        parallel engine), else through ``engine.index``.
    max_inflight:
        Bound on queued-but-undispatched operations; in paced mode an
        arrival finding the queue full is shed.
    tenant_rate / tenant_burst:
        Per-tenant token-bucket admission over virtual arrival times
        (None disables admission).
    min_batch / max_batch:
        Adaptive-batching clamp on the per-dispatch batch size.
    collect_answers:
        Retain every served operation's answer (for differential tests).
    """

    def __init__(
        self,
        engine,
        *,
        max_inflight: int = 256,
        tenant_rate: Optional[float] = None,
        tenant_burst: float = 8.0,
        min_batch: int = 1,
        max_batch: int = 64,
        collect_answers: bool = False,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if not 1 <= min_batch <= max_batch:
            raise ValueError("need 1 <= min_batch <= max_batch")
        self.engine = engine
        self.max_inflight = int(max_inflight)
        self.tenant_rate = tenant_rate
        self.tenant_burst = float(tenant_burst)
        self.min_batch = int(min_batch)
        self.max_batch = int(max_batch)
        self.collect_answers = bool(collect_answers)
        if getattr(engine, "applies_writes", False):
            self._write_target = engine
        else:
            self._write_target = getattr(engine, "index", engine)

    # -- public entry ----------------------------------------------------------

    def serve(
        self,
        operations: Sequence[Operation],
        paced: bool = False,
        speed: float = 1.0,
    ) -> FrontDoorReport:
        """Run the stream to completion and return the report.

        ``paced=False`` offers every operation immediately (admission still
        applies on virtual time; nothing is shed) — the deterministic mode
        the differential tests use.  ``paced=True`` is the wall-clock load
        generator: operation ``i`` is offered at
        ``arrival_time / speed`` seconds after the start, the inflight
        bound sheds overload, and per-op sojourns are measured.
        """
        return asyncio.run(self._serve(list(operations), paced, float(speed)))

    # -- the loop ----------------------------------------------------------------

    async def _serve(
        self, operations: list[Operation], paced: bool, speed: float
    ) -> FrontDoorReport:
        if speed <= 0:
            raise ValueError("speed must be > 0")
        loop = asyncio.get_running_loop()
        admission = _Admission(self.tenant_rate, self.tenant_burst)
        report = FrontDoorReport(admission=admission.report)
        answers: list = [] if self.collect_answers else None
        queue: list[tuple[Operation, float]] = []
        sojourns = PercentileSketch()
        arrived = asyncio.Event()
        producer_done = False
        started = time.perf_counter()

        async def producer() -> None:
            nonlocal producer_done
            for op in operations:
                if paced:
                    delay = op.arrival_time / speed - (time.perf_counter() - started)
                    if delay > 0:
                        await asyncio.sleep(delay)
                if not admission.admit(op):
                    continue
                if paced and len(queue) >= self.max_inflight:
                    report.n_shed += 1
                    continue
                queue.append((op, time.perf_counter()))
                arrived.set()
            producer_done = True
            arrived.set()

        async def consumer() -> None:
            while True:
                if not queue:
                    if producer_done:
                        return
                    arrived.clear()
                    await arrived.wait()
                    continue
                batch = self._take_batch(queue)
                report.batch_sizes.append(len(batch))
                done_at = await loop.run_in_executor(
                    None, self._execute, [op for op, _ in batch], answers
                )
                report.n_served += len(batch)
                for _, enqueued in batch:
                    sojourns.add(done_at - enqueued)

        producer_task = asyncio.ensure_future(producer())
        consumer_task = asyncio.ensure_future(consumer())
        try:
            await asyncio.gather(producer_task, consumer_task)
        finally:
            for task in (producer_task, consumer_task):
                task.cancel()
        report.elapsed_s = time.perf_counter() - started
        if paced:
            report.sojourn = LatencySummary.from_sketch(sojourns)
        report.answers = answers
        return report

    def _take_batch(self, queue: list) -> list:
        """Pop the next adaptive batch: a run of reads, or one write.

        The batch size follows the queue depth (clamped to
        ``[min_batch, max_batch]``); a write at the head dispatches alone,
        and a write inside the window ends the read run early — stream
        order is never violated.
        """
        size = max(self.min_batch, min(len(queue), self.max_batch))
        if queue[0][0].kind not in _READ_KINDS:
            return [queue.pop(0)]
        run = 0
        while run < size and run < len(queue) and queue[run][0].kind in _READ_KINDS:
            run += 1
        batch = queue[:run]
        del queue[:run]
        return batch

    def _execute(self, ops: list[Operation], answers: Optional[list]) -> float:
        """Run one batch on the engine (executor thread); returns the
        completion instant.  Reads split per kind but results append in
        stream order when collected."""
        slot_answers: dict[int, object] = {}
        by_kind: dict[str, list[int]] = {}
        for position, op in enumerate(ops):
            by_kind.setdefault(op.kind, []).append(position)
        for kind in ("point", "window", "knn", "aggregate"):
            positions = by_kind.get(kind)
            if not positions:
                continue
            if kind == "point":
                queries = np.asarray(
                    [(ops[p].x, ops[p].y) for p in positions], dtype=float
                )
                request = QueryRequest.for_points(queries)
            elif kind == "window":
                request = QueryRequest.for_windows(
                    [ops[p].window for p in positions]
                )
            elif kind == "knn":
                queries = np.asarray(
                    [(ops[p].x, ops[p].y) for p in positions], dtype=float
                )
                request = QueryRequest.for_knn(queries, ops[positions[0]].k)
            else:
                request = QueryRequest.for_aggregates(
                    [ops[p].agg for p in positions]
                )
            result = self.engine.execute(request)
            for position, answer in zip(positions, result.values):
                slot_answers[position] = answer
        for position in by_kind.get("insert", []):
            op = ops[position]
            self._write_target.insert(op.x, op.y)
            slot_answers[position] = None
        for position in by_kind.get("delete", []):
            op = ops[position]
            slot_answers[position] = bool(self._write_target.delete(op.x, op.y))
        if answers is not None:
            for position in range(len(ops)):
                answers.append(slot_answers.get(position))
        return time.perf_counter()
