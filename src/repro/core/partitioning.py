"""Learned grid partitioning for the internal levels of RSMI (paper Section 3.2).

A partition with more than ``N`` points is split through a non-regular
``g x g`` grid with ``g = 2^floor(log4(N/B))``:

1. the points are cut into ``g`` columns of (almost) equal cardinality by
   x-coordinate,
2. each column is cut into ``g`` cells of (almost) equal cardinality by
   y-coordinate,
3. a space-filling curve of order ``log2(g)`` assigns each cell a curve value,
4. an MLP is trained to map a point's coordinates to the curve value of its
   cell, and
5. the points are grouped **by the trained model's predictions** (not the true
   cells), so that query-time routing follows exactly the same function that
   decided where each point went.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import RSMIConfig
from repro.curves import curve_by_name
from repro.nn import MinMaxScaler, MLPRegressor, train_regressor

__all__ = ["LearnedPartitioning", "grid_side_for", "compute_grid_cells", "build_partitioning"]


def grid_side_for(partition_threshold: int, block_capacity: int) -> int:
    """``g = 2^floor(log4(N/B))``, at least 2 so a split always happens."""
    ratio = max(partition_threshold // block_capacity, 1)
    exponent = int(math.floor(math.log(ratio, 4))) if ratio > 1 else 0
    return max(2, 2**exponent)


def compute_grid_cells(points: np.ndarray, grid_side: int) -> tuple[np.ndarray, np.ndarray]:
    """Column and row indices of each point in the non-regular ``g x g`` grid.

    Columns contain (almost) equal numbers of points; within each column the
    rows contain (almost) equal numbers of points, so the grid adapts to the
    data distribution (paper Section 3.2).
    """
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    if n == 0:
        raise ValueError("cannot partition an empty point set")
    if grid_side < 1:
        raise ValueError("grid_side must be >= 1")

    # rank by x (ties broken by y) -> column index
    order_x = np.lexsort((points[:, 1], points[:, 0]))
    rank_x = np.empty(n, dtype=np.int64)
    rank_x[order_x] = np.arange(n)
    columns = (rank_x * grid_side) // n

    rows = np.zeros(n, dtype=np.int64)
    for column in range(grid_side):
        members = np.nonzero(columns == column)[0]
        size = members.size
        if size == 0:
            continue
        order_y = members[np.lexsort((points[members, 0], points[members, 1]))]
        rank_in_column = np.arange(size)
        rows[order_y] = (rank_in_column * grid_side) // size
    return columns, rows


class LearnedPartitioning:
    """A trained internal-level partitioning function."""

    def __init__(
        self,
        model: MLPRegressor,
        scaler: MinMaxScaler,
        grid_side: int,
        curve_name: str,
    ):
        self.model = model
        self.scaler = scaler
        self.grid_side = int(grid_side)
        self.n_cells = self.grid_side * self.grid_side
        self.curve_name = curve_name

    def predict_cell(self, x: float, y: float) -> int:
        """Predicted cell curve value for a point, in ``[0, n_cells)``."""
        features = self.scaler.transform(np.array([[x, y]], dtype=float))
        denominator = max(self.n_cells - 1, 1)
        raw = self.model.predict(features)[0] * denominator
        return int(np.clip(np.rint(raw), 0, self.n_cells - 1))

    def predict_cells(self, points: np.ndarray, ys: np.ndarray | None = None) -> np.ndarray:
        """Vectorised cell prediction.

        Accepts either an ``(n, 2)`` point array (used by the build path), or
        two 1-D coordinate arrays ``predict_cells(xs, ys)`` (used by the
        batched query engine's level-synchronous routing).  One model
        invocation serves the whole batch either way.
        """
        if ys is not None:
            xs = np.asarray(points, dtype=float).ravel()
            ys = np.asarray(ys, dtype=float).ravel()
            if xs.shape != ys.shape:
                raise ValueError("xs and ys must have the same length")
            points = np.column_stack((xs, ys))
        points = np.asarray(points, dtype=float)
        features = self.scaler.transform(points)
        denominator = max(self.n_cells - 1, 1)
        raw = self.model.predict_chunked(features) * denominator
        return np.clip(np.rint(raw), 0, self.n_cells - 1).astype(np.int64)

    def size_bytes(self) -> int:
        return self.model.size_bytes() + 64


def build_partitioning(
    points: np.ndarray,
    config: RSMIConfig,
    rng: np.random.Generator,
) -> tuple[LearnedPartitioning, dict[int, np.ndarray]]:
    """Train a partitioning model and group ``points`` by its predictions.

    Returns the trained :class:`LearnedPartitioning` and a mapping from
    predicted cell value to the indices (into ``points``) of the points in
    that group.  Only non-empty groups are returned.
    """
    points = np.asarray(points, dtype=float)
    grid_side = grid_side_for(config.partition_threshold, config.block_capacity)
    columns, rows = compute_grid_cells(points, grid_side)

    curve_order = max(1, int(round(math.log2(grid_side))))
    curve = curve_by_name(config.curve, curve_order)
    cell_values = curve.encode_many(columns, rows)

    n_cells = grid_side * grid_side
    denominator = max(n_cells - 1, 1)
    targets = cell_values / denominator

    scaler = MinMaxScaler().fit(points)
    features = scaler.transform(points)
    hidden = config.hidden_width_for(n_cells)
    model = MLPRegressor(2, (hidden,), activation="sigmoid", rng=rng)
    train_regressor(model, features, targets, config.training)

    partitioning = LearnedPartitioning(model, scaler, grid_side, config.curve)
    predicted = partitioning.predict_cells(points)

    groups: dict[int, np.ndarray] = {}
    for cell in np.unique(predicted):
        groups[int(cell)] = np.nonzero(predicted == cell)[0]
    return partitioning, groups
