"""Piecewise mapping function (PMF) approximation of a one-dimensional CDF.

The approximate kNN algorithm (paper Section 4.3) sizes its initial search
region with skew parameters ``αx`` and ``αy`` derived from the slope of the
per-dimension cumulative distribution functions at the query point.  Because
evaluating the exact CDF is expensive, the paper approximates it with a
piecewise linear mapping function built from ``γ`` equal-count partitions
(``γ = 100`` in the experiments).
"""

from __future__ import annotations

import numpy as np

__all__ = ["PiecewiseMappingFunction"]


class PiecewiseMappingFunction:
    """Piecewise-linear approximation of the CDF of a 1-D sample."""

    def __init__(self, values: np.ndarray, n_partitions: int = 100):
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            raise ValueError("cannot build a PMF from an empty sample")
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        self.n_partitions = int(min(n_partitions, values.size))
        self.n_values = int(values.size)
        sorted_values = np.sort(values)
        # boundary i sits at the (i / n_partitions)-quantile of the sample;
        # the first boundary is the minimum and the last is the maximum.
        quantile_idx = np.linspace(0, values.size - 1, self.n_partitions + 1).astype(int)
        self.boundaries = sorted_values[quantile_idx]
        self.cumulative = quantile_idx.astype(float) / max(values.size - 1, 1)

    # -- evaluation ----------------------------------------------------------------

    def evaluate(self, value: float) -> float:
        """Approximate CDF value, clamped to ``[0, 1]``."""
        if value <= self.boundaries[0]:
            return 0.0
        if value >= self.boundaries[-1]:
            return 1.0
        idx = int(np.searchsorted(self.boundaries, value, side="right")) - 1
        idx = min(idx, len(self.boundaries) - 2)
        lo, hi = self.boundaries[idx], self.boundaries[idx + 1]
        clo, chi = self.cumulative[idx], self.cumulative[idx + 1]
        if hi == lo:
            return float(chi)
        fraction = (value - lo) / (hi - lo)
        return float(clo + fraction * (chi - clo))

    def slope(self, value: float, delta: float = 0.01) -> float:
        """Estimated CDF slope (density) over ``[value, value + delta]``."""
        if delta <= 0:
            raise ValueError("delta must be positive")
        rise = self.evaluate(value + delta) - self.evaluate(value)
        return rise / delta

    def skew_parameter(self, value: float, delta: float = 0.01) -> float:
        """The paper's α estimate at ``value`` (Equation 6).

        ``α = Δ / (CDF(value + Δ) − CDF(value))``.  A flat region (no data in
        ``[value, value + Δ]``) yields an unbounded α; it is clamped to the
        span of the sample so the initial kNN search region stays finite.
        """
        rise = self.evaluate(value + delta) - self.evaluate(value)
        span = float(self.boundaries[-1] - self.boundaries[0])
        max_alpha = max(span, 1.0) / max(delta, 1e-12)
        if rise <= 0:
            return max_alpha
        return float(min(delta / rise, max_alpha))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PiecewiseMappingFunction(partitions={self.n_partitions}, "
            f"values={self.n_values})"
        )
