"""Saving and loading built indices.

Training an RSMI is the expensive part of its life cycle (the paper reports
hours of construction time at full scale), so a production deployment builds
the index once and serves queries from the stored artefact.  This module
provides a small, versioned persistence layer for any of the indices in this
package (RSMI and the baselines alike): the whole structure — models, blocks,
error bounds, PMFs — is serialised with :mod:`pickle` inside an envelope that
records a format version and the creating library version, so stale artefacts
are rejected with a clear error instead of failing obscurely.

Only load artefacts you created yourself: like any pickle-based format the
file can execute code when loaded.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = ["IndexArtifact", "save_index", "load_index", "PersistenceError", "fsync_dir"]

#: bump when the on-disk layout of the envelope changes
FORMAT_VERSION = 1

_MAGIC = b"RSMIREPRO"


class PersistenceError(RuntimeError):
    """Raised when an artefact cannot be read back."""


def fsync_dir(directory: str | Path) -> None:
    """``fsync`` a directory so a just-renamed/created entry survives a crash.

    ``os.replace`` makes a rename atomic, but the *directory entry* itself
    lives in the parent directory's data — until that is flushed, a crash
    can silently roll the rename back and resurrect the old file.  No-op on
    platforms whose directories cannot be opened for syncing.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. Windows
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class IndexArtifact:
    """The envelope stored on disk around a serialised index."""

    format_version: int
    library_version: str
    index_type: str
    payload: Any

    def describe(self) -> str:
        return (
            f"{self.index_type} artefact (format v{self.format_version}, "
            f"written by repro {self.library_version})"
        )


def save_index(index: Any, path: str | Path) -> Path:
    """Serialise a built index to ``path`` and return the path written.

    Works for :class:`~repro.core.rsmi.RSMI` and every baseline index; the
    object is stored as-is, so anything reachable from it (block store,
    models, statistics counters) is preserved.

    The write is **atomic with respect to crashes**: the artefact is
    written to a temporary file in the destination directory, flushed and
    ``fsync``'d, then moved into place with ``os.replace``.  A process
    killed mid-save therefore leaves either the previous artefact or the
    new one at ``path`` — never a torn file — which is what lets the
    durability layer treat checkpoints as always-loadable.
    """
    from repro import __version__

    path = Path(path)
    artifact = IndexArtifact(
        format_version=FORMAT_VERSION,
        library_version=__version__,
        index_type=type(index).__name__,
        payload=index,
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(_MAGIC)
            pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        # the rename only becomes durable once the parent directory's entry
        # table is flushed; without this a crash right after os.replace can
        # silently lose the new checkpoint (the caller has typically already
        # reset its WAL by the time anyone notices)
        fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already renamed or removed
            pass
        raise
    return path


def load_index(path: str | Path, expected_type: type | None = None) -> Any:
    """Load an index previously written by :func:`save_index`.

    Parameters
    ----------
    path:
        File written by :func:`save_index`.
    expected_type:
        When given, the loaded index must be an instance of this type;
        otherwise a :class:`PersistenceError` is raised.
    """
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no such artefact: {path}")
    with path.open("rb") as handle:
        magic = handle.read(len(_MAGIC))
        if magic != _MAGIC:
            raise PersistenceError(f"{path} is not a repro index artefact")
        payload_bytes = handle.read()
    if not payload_bytes:
        raise PersistenceError(
            f"{path} is truncated: a valid header but no payload follows"
        )
    try:
        artifact: IndexArtifact = pickle.loads(payload_bytes)
    except (EOFError, pickle.UnpicklingError, AttributeError, IndexError) as exc:
        # the torn state a crash mid-write produces: a valid magic header
        # followed by a cut-off pickle stream
        raise PersistenceError(
            f"{path} is truncated or corrupt after its header "
            f"({len(payload_bytes)} payload bytes): {exc}"
        ) from exc
    except Exception as exc:  # pragma: no cover - other corrupt-file paths
        raise PersistenceError(f"failed to unpickle {path}: {exc}") from exc
    if not isinstance(artifact, IndexArtifact):
        raise PersistenceError(f"{path} does not contain an IndexArtifact envelope")
    if artifact.format_version != FORMAT_VERSION:
        raise PersistenceError(
            f"{path} uses format v{artifact.format_version}, "
            f"this library reads v{FORMAT_VERSION}"
        )
    index = artifact.payload
    if expected_type is not None and not isinstance(index, expected_type):
        raise PersistenceError(
            f"{path} holds a {artifact.index_type}, expected {expected_type.__name__}"
        )
    return index
