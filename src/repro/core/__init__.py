"""The paper's primary contribution: the Recursive Spatial Model Index (RSMI).

Public entry points:

* :class:`~repro.core.config.RSMIConfig` — build/training configuration,
* :class:`~repro.core.rsmi.RSMI` — the learned index with point, window and
  kNN queries (both the paper's approximate algorithms and the exact,
  MBR-assisted "RSMIa" variants) plus insert/delete support,
* :class:`~repro.core.updates.PeriodicRebuilder` — the "RSMIr" wrapper that
  rebuilds the index after a configurable fraction of insertions,
* :class:`~repro.core.pmf.PiecewiseMappingFunction` — the piecewise CDF
  approximation used to size the initial kNN search region.
"""

from repro.core.batch import (
    BatchResult,
    batch_knn_queries,
    batch_point_queries,
    batch_window_queries,
)
from repro.core.config import RSMIConfig
from repro.core.extent import ExtendedObjectIndex
from repro.core.persistence import load_index, save_index
from repro.core.pmf import PiecewiseMappingFunction
from repro.core.results import KNNQueryResult, PointQueryResult, WindowQueryResult
from repro.core.rsmi import RSMI
from repro.core.updates import PeriodicRebuilder

__all__ = [
    "RSMI",
    "RSMIConfig",
    "PeriodicRebuilder",
    "PiecewiseMappingFunction",
    "PointQueryResult",
    "WindowQueryResult",
    "KNNQueryResult",
    "ExtendedObjectIndex",
    "BatchResult",
    "batch_point_queries",
    "batch_window_queries",
    "batch_knn_queries",
    "save_index",
    "load_index",
]
