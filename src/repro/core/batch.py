"""Batch query helpers.

The query algorithms of the paper are defined per query; applications such as
map tile rendering or analytics jobs issue them in large batches.  These
helpers run whole workloads against one index and collect the results (and,
optionally, the per-batch block-access totals) in a single call.  They work
with any object exposing the RSMI query interface and with the baseline
indices through the evaluation adapters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.geometry import Rect
from repro.storage.stats import AccessSummary

__all__ = [
    "BatchResult",
    "contains_callable",
    "batch_point_queries",
    "batch_window_queries",
    "batch_knn_queries",
    "latency_from_durations",
    "latency_uniform",
]


def latency_from_durations(durations):
    """Per-query latency summary of one batch (None for empty batches).

    The summariser lives in :mod:`repro.workloads.latency` and is imported
    lazily: ``repro.workloads`` imports the engines, which import this
    module, so a module-level import would be circular.  Both the
    single-index and the sharded batch engine resolve through here.
    """
    if durations is None or len(durations) == 0:
        return None
    from repro.workloads.latency import summarize_durations

    return summarize_durations(durations)


def latency_uniform(elapsed: float, count: int):
    """O(1) summary attributing one batch's wall time uniformly per query."""
    if count <= 0:
        return None
    from repro.workloads.latency import LatencySummary

    return LatencySummary.uniform(elapsed, count)


def contains_callable(index):
    """The boolean point-membership callable of ``index``.

    RSMI and the baselines expose ``contains``; the evaluation adapters answer
    the same question through ``point_query`` (which returns a bool).  Both
    the sequential batch helpers and the batched query engine resolve through
    here so the two paths cannot drift.
    """
    return getattr(index, "contains", None) or index.point_query


@dataclass
class BatchResult:
    """Results of one batched workload.

    The three accounting fields are the *deprecated* spelling of one
    :class:`~repro.storage.stats.AccessSummary` — new code should read
    :attr:`access` (or use ``engine.execute`` and get a ``QueryResult``,
    which carries the summary directly).
    """

    #: one entry per query, in input order
    results: list = field(default_factory=list)
    #: deprecated alias of ``access.logical_reads`` — total logical
    #: block/node reads accumulated while serving the batch
    total_block_accesses: int | None = None
    #: deprecated alias of ``access.per_shard_logical_reads``
    per_shard_block_accesses: dict[int, int] | None = None
    #: deprecated alias of ``access.physical_reads``
    total_physical_accesses: int | None = None
    #: per-query latency percentiles for the batch (engines measure wall time
    #: per query on per-query paths and attribute the batch wall time
    #: uniformly on vectorised paths); None for the plain sequential helpers
    latency: object | None = None
    #: per-query latency percentiles attributed per shard id (sharded point
    #: and window batches only — kNN fans one query across shards)
    per_shard_latency: dict | None = None

    @property
    def access(self) -> AccessSummary:
        """The batch's read accounting as one unified summary."""
        return AccessSummary(
            logical_reads=self.total_block_accesses,
            physical_reads=self.total_physical_accesses,
            per_shard_logical_reads=self.per_shard_block_accesses,
        )

    @property
    def cache_hit_ratio(self) -> float | None:
        """Fraction of the batch's logical reads served from the cache."""
        if self.total_block_accesses is None or self.total_physical_accesses is None:
            return None
        if self.total_block_accesses <= 0:
            return 0.0
        return 1.0 - self.total_physical_accesses / self.total_block_accesses

    @property
    def n_queries(self) -> int:
        return len(self.results)

    @property
    def avg_block_accesses(self) -> float | None:
        if self.total_block_accesses is None or not self.results:
            return None
        return self.total_block_accesses / len(self.results)


def _stats_of(index) -> object | None:
    return getattr(index, "stats", None)


def batch_point_queries(index, points: np.ndarray) -> BatchResult:
    """Run a point query for every row of ``points``; results are booleans."""
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    stats = _stats_of(index)
    if stats is not None:
        stats.reset()
    contains = contains_callable(index)
    found = [bool(contains(float(x), float(y))) for x, y in points]
    total = stats.total_reads if stats is not None else None
    return BatchResult(results=found, total_block_accesses=total)


def batch_window_queries(index, windows: Sequence[Rect], exact: bool = False) -> BatchResult:
    """Run every window query; each result is an ``(m, 2)`` array of points.

    ``exact=True`` uses the RSMIa traversal when the index provides
    ``window_query_exact`` (it falls back to the approximate algorithm
    otherwise).
    """
    stats = _stats_of(index)
    if stats is not None:
        stats.reset()
    results = []
    for window in windows:
        if exact and hasattr(index, "window_query_exact"):
            answer = index.window_query_exact(window)
        else:
            answer = index.window_query(window)
        results.append(answer.points if hasattr(answer, "points") else answer)
    total = stats.total_reads if stats is not None else None
    return BatchResult(results=results, total_block_accesses=total)


def batch_knn_queries(
    index, queries: np.ndarray, k: int, exact: bool = False
) -> BatchResult:
    """Run a kNN query for every row of ``queries``; each result is a point array."""
    if k < 1:
        raise ValueError("k must be >= 1")
    queries = np.asarray(queries, dtype=float).reshape(-1, 2)
    stats = _stats_of(index)
    if stats is not None:
        stats.reset()
    results = []
    for x, y in queries:
        if exact and hasattr(index, "knn_query_exact"):
            answer = index.knn_query_exact(float(x), float(y), k)
        else:
            answer = index.knn_query(float(x), float(y), k)
        results.append(answer.points if hasattr(answer, "points") else answer)
    total = stats.total_reads if stats is not None else None
    return BatchResult(results=results, total_block_accesses=total)
