"""Leaf indexing models: MLPs that map coordinates to block positions.

A leaf model covers one partition of at most ``N`` points (paper Section 3.1).
Its points are ordered in rank space by a space-filling curve, packed into
consecutive base blocks of the global block store, and an MLP is trained to
map a point's coordinates to its block position.  The maximum under- and
over-prediction observed on the build data become the error bounds that point
queries use to limit their scan range.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import RSMIConfig
from repro.geometry import Rect, mbr_of_points
from repro.nn import MinMaxScaler, MLPRegressor, train_regressor
from repro.rank_space import order_points_by_curve
from repro.storage import BlockStore

__all__ = ["LeafModel"]


class LeafModel:
    """A trained leaf model together with its block range and error bounds.

    Attributes
    ----------
    first_position:
        Global curve-order position of this leaf's first base block.
    n_local_blocks:
        Number of base blocks packed for this leaf.
    err_below / err_above:
        How many blocks below / above the prediction the true block can lie
        (the paper's ``M.err_l`` / ``M.err_a``, oriented for scanning).
    mbr:
        Minimum bounding rectangle of the leaf's build points (used by the
        exact RSMIa query variants and by update handling).
    block_mbrs:
        Per-base-block MBRs recorded at build time (RSMIa block filtering).
    """

    def __init__(
        self,
        model: MLPRegressor,
        scaler: MinMaxScaler,
        first_position: int,
        n_local_blocks: int,
        err_below: int,
        err_above: int,
        mbr: Rect,
        block_mbrs: list[Rect],
        n_points: int,
        level: int,
    ):
        self.model = model
        self.scaler = scaler
        self.first_position = int(first_position)
        self.n_local_blocks = int(n_local_blocks)
        self.err_below = int(err_below)
        self.err_above = int(err_above)
        self.mbr = mbr
        self.block_mbrs = block_mbrs
        self.n_points = int(n_points)
        self.n_inserted = 0
        self.level = int(level)

    is_leaf = True

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(
        cls,
        points: np.ndarray,
        store: BlockStore,
        config: RSMIConfig,
        rng: np.random.Generator,
        level: int,
    ) -> "LeafModel":
        """Order, pack and learn a leaf model for ``points``."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("points must have shape (n, 2)")
        if points.shape[0] == 0:
            raise ValueError("cannot build a leaf model on an empty partition")

        ordering = order_points_by_curve(points, curve=config.curve, use_rank_space=True)
        sorted_points = ordering.sorted_points
        first_position, last_position = store.pack_points(sorted_points)
        n_local_blocks = last_position - first_position + 1
        n = sorted_points.shape[0]

        # ground truth: local block index of every (sorted) point, Equation 1
        local_block = np.arange(n) // config.block_capacity
        denominator = max(n_local_blocks - 1, 1)
        targets = local_block / denominator

        scaler = MinMaxScaler().fit(sorted_points)
        features = scaler.transform(sorted_points)
        hidden = config.hidden_width_for(n_local_blocks)
        model = MLPRegressor(2, (hidden,), activation="sigmoid", rng=rng)
        train_regressor(model, features, targets, config.training)

        predictions = np.rint(model.predict(features) * denominator).astype(np.int64)
        predictions = np.clip(predictions, 0, n_local_blocks - 1)
        signed_error = local_block - predictions
        err_above = int(max(signed_error.max(initial=0), 0))
        err_below = int(max((-signed_error).max(initial=0), 0))

        block_mbrs: list[Rect] = []
        for start in range(0, n, config.block_capacity):
            block_mbrs.append(mbr_of_points(sorted_points[start : start + config.block_capacity]))

        return cls(
            model=model,
            scaler=scaler,
            first_position=first_position,
            n_local_blocks=n_local_blocks,
            err_below=err_below,
            err_above=err_above,
            mbr=mbr_of_points(points),
            block_mbrs=block_mbrs,
            n_points=n,
            level=level,
        )

    # -- prediction ---------------------------------------------------------------

    def predict_local(self, x: float, y: float) -> int:
        """Predicted local block index in ``[0, n_local_blocks)``."""
        features = self.scaler.transform(np.array([[x, y]], dtype=float))
        denominator = max(self.n_local_blocks - 1, 1)
        raw = self.model.predict(features)[0] * denominator
        return int(np.clip(np.rint(raw), 0, self.n_local_blocks - 1))

    def predict_position(self, x: float, y: float) -> int:
        """Predicted global base-block position."""
        return self.first_position + self.predict_local(x, y)

    def scan_range(self, x: float, y: float) -> tuple[int, int]:
        """Global position range ``[begin, end]`` that is guaranteed to hold the
        point if it was part of the build data."""
        predicted = self.predict_position(x, y)
        begin = max(self.first_position, predicted - self.err_below)
        end = min(self.first_position + self.n_local_blocks - 1, predicted + self.err_above)
        return begin, end

    # -- batched prediction (one model invocation per query batch) -------------------

    def predict_locals(self, points: np.ndarray) -> np.ndarray:
        """Predicted local block indices for an ``(n, 2)`` array, shape ``(n,)``."""
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        features = self.scaler.transform(points)
        denominator = max(self.n_local_blocks - 1, 1)
        raw = self.model.predict_chunked(features) * denominator
        return np.clip(np.rint(raw), 0, self.n_local_blocks - 1).astype(np.int64)

    def predict_positions(self, points: np.ndarray) -> np.ndarray:
        """Predicted global base-block positions for an ``(n, 2)`` array."""
        return self.first_position + self.predict_locals(points)

    def scan_ranges(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`scan_range`: ``(begins, ends)`` arrays of shape ``(n,)``."""
        predicted = self.predict_positions(points)
        begins = np.maximum(self.first_position, predicted - self.err_below)
        ends = np.minimum(self.last_position, predicted + self.err_above)
        return begins, ends

    @property
    def last_position(self) -> int:
        return self.first_position + self.n_local_blocks - 1

    # -- accounting ----------------------------------------------------------------

    def size_bytes(self) -> int:
        """Model parameters plus the per-block MBR table and scalar metadata."""
        return self.model.size_bytes() + len(self.block_mbrs) * 32 + 64

    def n_models(self) -> int:
        return 1

    def height(self) -> int:
        return 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LeafModel(level={self.level}, points={self.n_points}, "
            f"blocks=[{self.first_position}..{self.last_position}], "
            f"err=({self.err_below}, {self.err_above}))"
        )
