"""The Recursive Spatial Model Index (RSMI).

This module implements the index structure of Sections 3.1–3.2 of the paper
and its point query (Algorithm 1), together with the exact ("RSMIa") window
and kNN query variants that use the per-sub-model MBRs.  The approximate
window and kNN algorithms (Algorithms 2 and 3) live in
:mod:`repro.core.window` and :mod:`repro.core.knn`; update handling lives in
:mod:`repro.core.updates`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterable, Optional

import numpy as np

from repro.core.config import RSMIConfig
from repro.core.leaf_model import LeafModel
from repro.core.partitioning import LearnedPartitioning, build_partitioning
from repro.core.pmf import PiecewiseMappingFunction
from repro.core.results import KNNQueryResult, PointQueryResult, WindowQueryResult
from repro.geometry import Rect, euclidean, mindist_point_rect, union_rects
from repro.storage import AccessStats, BlockStore

__all__ = ["RSMI", "InternalNode"]


class InternalNode:
    """An internal RSMI sub-model: a learned partitioning plus its children."""

    is_leaf = False

    def __init__(self, partitioning: LearnedPartitioning, level: int):
        self.partitioning = partitioning
        self.level = int(level)
        #: predicted cell value -> child node (LeafModel or InternalNode)
        self.children: dict[int, object] = {}
        self.mbr: Optional[Rect] = None
        self._sorted_keys: list[int] = []

    def finalize(self) -> None:
        """Compute the MBR and the sorted key list once all children exist."""
        child_mbrs = [child.mbr for child in self.children.values() if child.mbr is not None]
        self.mbr = union_rects(child_mbrs) if child_mbrs else None
        self._sorted_keys = sorted(self.children)

    def route(self, x: float, y: float) -> tuple[int, object]:
        """Child responsible for ``(x, y)``.

        The child for the predicted cell is returned when it exists; otherwise
        the child with the nearest cell value is used.  Points seen at build
        time always route to an existing child (they were grouped by the same
        predictions), so the fallback only affects previously unseen points
        (new insertions and query corner points) and keeps routing total.
        """
        predicted = self.partitioning.predict_cell(x, y)
        child = self.children.get(predicted)
        if child is not None:
            return predicted, child
        nearest = min(self._sorted_keys, key=lambda key: abs(key - predicted))
        return nearest, self.children[nearest]

    def size_bytes(self) -> int:
        return self.partitioning.size_bytes() + 16 * len(self.children)

    def n_models(self) -> int:
        return 1 + sum(child.n_models() for child in self.children.values())

    def height(self) -> int:
        return 1 + max(child.height() for child in self.children.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InternalNode(level={self.level}, children={len(self.children)})"


class RSMI:
    """The Recursive Spatial Model Index.

    Typical usage::

        index = RSMI(RSMIConfig(block_capacity=50, partition_threshold=2000))
        index.build(points)                       # points: (n, 2) array
        index.contains(0.2, 0.7)                  # point query
        index.window_query(Rect(0.1, 0.1, 0.3, 0.3)).points
        index.knn_query(0.5, 0.5, k=10).points
        index.insert(0.42, 0.13)
        index.delete(0.42, 0.13)

    The index reports storage accesses through :attr:`stats`, which the
    experiment harness resets around each query batch.
    """

    name = "RSMI"

    def __init__(
        self,
        config: Optional[RSMIConfig] = None,
        stats: Optional[AccessStats] = None,
        cache=None,
    ):
        self.config = config if config is not None else RSMIConfig()
        self.stats = stats if stats is not None else AccessStats()
        #: optional PageCache in front of the data-block store.  The model
        #: hierarchy itself is not paged (node reads stay physical): the
        #: learned models are the in-memory directory, the blocks are storage.
        self.cache = cache
        self.store = BlockStore(self.config.block_capacity, self.stats, cache=cache)
        self.root: Optional[object] = None
        self.pmf_x: Optional[PiecewiseMappingFunction] = None
        self.pmf_y: Optional[PiecewiseMappingFunction] = None
        self._n_points = 0
        self._build_input: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ build --

    def build(self, points: np.ndarray) -> "RSMI":
        """Bulk-build the index over ``points`` (an ``(n, 2)`` array)."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("points must have shape (n, 2)")
        if points.shape[0] == 0:
            raise ValueError("cannot build an index over an empty point set")
        if self.cache is not None:
            # a fresh store reuses block ids 0..N: resident pages from the
            # old store would alias them and produce phantom hits
            self.cache.clear()
        self.store = BlockStore(self.config.block_capacity, self.stats, cache=self.cache)
        rng = np.random.default_rng(self.config.seed)
        self.root = self._build_node(points, level=0, rng=rng)
        self.pmf_x = PiecewiseMappingFunction(points[:, 0], self.config.pmf_partitions)
        self.pmf_y = PiecewiseMappingFunction(points[:, 1], self.config.pmf_partitions)
        self._n_points = points.shape[0]
        self._build_input = points
        return self

    def rebuild(self) -> "RSMI":
        """Rebuild the whole structure from the currently stored live points.

        Used by the RSMIr variant (periodic rebuilds after insertions,
        Section 6.2.5) and after heavy update workloads.
        """
        points = self.store.all_points()
        return self.build(points)

    def _build_node(self, points: np.ndarray, level: int, rng: np.random.Generator):
        at_max_height = level >= self.config.max_height - 1
        if points.shape[0] <= self.config.partition_threshold or at_max_height:
            return LeafModel.build(points, self.store, self.config, rng, level)

        partitioning, groups = build_partitioning(points, self.config, rng)
        if len(groups) <= 1:
            # the partitioning model collapsed every point into one group;
            # recursing would never terminate, so fall back to a (large) leaf
            return LeafModel.build(points, self.store, self.config, rng, level)

        node = InternalNode(partitioning, level)
        for cell in sorted(groups):
            child_points = points[groups[cell]]
            node.children[cell] = self._build_node(child_points, level + 1, rng)
        node.finalize()
        return node

    def _require_built(self) -> None:
        if self.root is None:
            raise RuntimeError("index has not been built yet")

    # ------------------------------------------------------------------ routing --

    def route_to_leaf(self, x: float, y: float) -> tuple[LeafModel, int, list[object]]:
        """Descend from the root to the leaf model responsible for ``(x, y)``.

        Returns the leaf, the number of sub-models invoked (depth) and the
        list of internal nodes on the path (used by update handling to expand
        MBRs).
        """
        self._require_built()
        node = self.root
        depth = 0
        path: list[object] = []
        while not node.is_leaf:
            path.append(node)
            depth += 1
            _, node = node.route(x, y)
        depth += 1  # the leaf model invocation
        return node, depth, path

    # ------------------------------------------------------------------ queries --

    def point_query(self, x: float, y: float) -> PointQueryResult:
        """Algorithm 1: locate the stored point with coordinates ``(x, y)``.

        Blocks in the error range are examined from the predicted position
        outwards, so the expected number of block accesses stays close to one
        when the leaf model is accurate.
        """
        leaf, depth, _ = self.route_to_leaf(x, y)
        predicted = leaf.predict_position(x, y)
        begin, end = leaf.scan_range(x, y)
        blocks_scanned = 0
        for position in _outward_positions(predicted, begin, end):
            for block in self.store.iter_chain(position):
                blocks_scanned += 1
                if block.contains(x, y):
                    return PointQueryResult(
                        found=True,
                        block_id=block.block_id,
                        position=position,
                        predicted_position=predicted,
                        depth=depth,
                        blocks_scanned=blocks_scanned,
                    )
        return PointQueryResult(
            found=False,
            predicted_position=predicted,
            depth=depth,
            blocks_scanned=blocks_scanned,
        )

    def contains(self, x: float, y: float) -> bool:
        """True when a point with exactly these coordinates is stored."""
        return self.point_query(x, y).found

    def window_query(self, window: Rect) -> WindowQueryResult:
        """Algorithm 2: approximate window query (no false positives)."""
        from repro.core.window import window_query as _window_query

        return _window_query(self, window)

    def window_query_exact(self, window: Rect) -> WindowQueryResult:
        """RSMIa: exact window query via an R-tree-style MBR traversal."""
        self._require_built()
        collected: list[np.ndarray] = []
        blocks_scanned = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                self.stats.record_node_read()
                for offset, block_mbr in enumerate(node.block_mbrs):
                    if not window.intersects(block_mbr):
                        continue
                    position = node.first_position + offset
                    for block in self.store.iter_chain(position):
                        blocks_scanned += 1
                        points = block.points()
                        if points.shape[0] == 0:
                            continue
                        mask = window.contains_points(points)
                        if mask.any():
                            collected.append(points[mask])
                continue
            self.stats.record_node_read()
            for child in node.children.values():
                if child.mbr is not None and window.intersects(child.mbr):
                    stack.append(child)
        points = np.vstack(collected) if collected else np.empty((0, 2), dtype=float)
        return WindowQueryResult(points=points, blocks_scanned=blocks_scanned, exact=True)

    def knn_query(self, x: float, y: float, k: int) -> KNNQueryResult:
        """Algorithm 3: approximate kNN query via search-region expansion."""
        from repro.core.knn import knn_query as _knn_query

        return _knn_query(self, x, y, k)

    def knn_query_exact(self, x: float, y: float, k: int) -> KNNQueryResult:
        """RSMIa: exact kNN via best-first traversal of the MBR hierarchy."""
        self._require_built()
        if k < 1:
            raise ValueError("k must be >= 1")
        counter = itertools.count()
        heap: list[tuple[float, int, str, object]] = []
        heapq.heappush(heap, (0.0, next(counter), "node", self.root))
        results_points: list[tuple[float, float]] = []
        results_dists: list[float] = []
        blocks_scanned = 0

        while heap and len(results_points) < k:
            distance, _, kind, payload = heapq.heappop(heap)
            if kind == "point":
                px, py = payload
                results_points.append((px, py))
                results_dists.append(distance)
            elif kind == "block":
                position = payload
                for block in self.store.iter_chain(position):
                    blocks_scanned += 1
                    for px, py in block.iter_points():
                        d = euclidean(x, y, px, py)
                        heapq.heappush(heap, (d, next(counter), "point", (px, py)))
            else:  # internal or leaf node
                node = payload
                self.stats.record_node_read()
                if node.is_leaf:
                    for offset, block_mbr in enumerate(node.block_mbrs):
                        d = mindist_point_rect(x, y, block_mbr)
                        heapq.heappush(
                            heap, (d, next(counter), "block", node.first_position + offset)
                        )
                else:
                    for child in node.children.values():
                        if child.mbr is None:
                            continue
                        d = mindist_point_rect(x, y, child.mbr)
                        heapq.heappush(heap, (d, next(counter), "node", child))

        points = np.asarray(results_points, dtype=float).reshape(-1, 2)
        distances = np.asarray(results_dists, dtype=float)
        return KNNQueryResult(
            points=points, distances=distances, blocks_scanned=blocks_scanned, exact=True
        )

    # ------------------------------------------------------------------ updates --

    def insert(self, x: float, y: float) -> None:
        """Insert a new point (paper Section 5)."""
        from repro.core.updates import insert_point

        insert_point(self, x, y)

    def delete(self, x: float, y: float) -> bool:
        """Delete a stored point; returns True when a point was removed."""
        from repro.core.updates import delete_point

        return delete_point(self, x, y)

    # ------------------------------------------------------------------ caching --

    def attach_cache(self, cache) -> None:
        """Route all subsequent data-block reads through ``cache`` (None detaches)."""
        self.cache = cache
        self.store.attach_cache(cache)

    # ------------------------------------------------------------------ accounting --

    @property
    def n_points(self) -> int:
        """Number of live points currently stored."""
        return self._n_points

    @property
    def height(self) -> int:
        """Number of model levels (the paper's ``h``)."""
        self._require_built()
        return self.root.height()

    @property
    def n_models(self) -> int:
        """Total number of sub-models in the structure."""
        self._require_built()
        return self.root.n_models()

    def size_bytes(self) -> int:
        """Approximate index size: every sub-model plus the data blocks."""
        self._require_built()
        total = self.store.size_bytes()
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += node.size_bytes()
            if not node.is_leaf:
                stack.extend(node.children.values())
        return total

    def error_bounds(self) -> tuple[int, int]:
        """Maximum (err_below, err_above) over all leaf models (Table 4)."""
        self._require_built()
        err_below = 0
        err_above = 0
        for leaf in self.iter_leaves():
            err_below = max(err_below, leaf.err_below)
            err_above = max(err_above, leaf.err_above)
        return err_below, err_above

    def iter_leaves(self) -> Iterable[LeafModel]:
        """Iterate over every leaf model in the structure."""
        self._require_built()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.extend(node.children.values())

    def average_depth(self, sample: Optional[np.ndarray] = None) -> float:
        """Average number of sub-models invoked to reach a data block.

        When ``sample`` is None the build input (or a subsample of it) is
        used, matching how the paper reports average depth.
        """
        self._require_built()
        if sample is None:
            if self._build_input is None:
                raise RuntimeError("no build input retained; pass an explicit sample")
            sample = self._build_input
            if sample.shape[0] > 2000:
                step = sample.shape[0] // 2000
                sample = sample[::step]
        depths = [self.route_to_leaf(float(px), float(py))[1] for px, py in np.asarray(sample)]
        return float(np.mean(depths)) if depths else 0.0

    def data_space(self) -> Rect:
        """MBR of the indexed data (root MBR)."""
        self._require_built()
        if self.root.mbr is None:
            raise RuntimeError("index has no MBR (empty structure)")
        return self.root.mbr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.root is None:
            return "RSMI(unbuilt)"
        return (
            f"RSMI(points={self.n_points}, height={self.height}, "
            f"models={self.n_models}, blocks={self.store.n_blocks})"
        )


def _outward_positions(predicted: int, begin: int, end: int) -> Iterable[int]:
    """Positions ``begin..end`` ordered by distance from ``predicted``."""
    predicted = max(begin, min(predicted, end))
    yield predicted
    step = 1
    while True:
        lower = predicted - step
        upper = predicted + step
        emitted = False
        if lower >= begin:
            yield lower
            emitted = True
        if upper <= end:
            yield upper
            emitted = True
        if not emitted:
            return
        step += 1
