"""Indexing spatial objects with non-zero extent (rectangles).

The paper indexes point data and notes (Section 7) that the learned indices
"may be applied to spatial objects with non-zero extent using query
expansion", citing the point-representation technique of Stefanakis et
al. [44] and Zhang et al. [48].  This module implements that extension:

* every rectangle is represented by its **centre point**, which is indexed in
  a regular RSMI;
* the index remembers the largest half-width and half-height seen, so a
  window (intersection) query can be answered by **expanding** the query
  window by those maxima, retrieving the candidate centres, and filtering the
  candidates' actual rectangles against the original window;
* point (stabbing) queries are windows of zero extent.

The expansion preserves the paper's "no false positives" property because the
final filter uses the true geometry; recall is inherited from the underlying
RSMI window query (use ``exact=True`` for the MBR-based exact traversal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import RSMIConfig
from repro.core.rsmi import RSMI
from repro.geometry import Rect
from repro.storage import AccessStats

__all__ = ["ExtendedObjectIndex", "rects_to_arrays"]


def rects_to_arrays(rects: list[Rect] | np.ndarray) -> np.ndarray:
    """Normalise a list of rectangles (or an ``(n, 4)`` array) to an ``(n, 4)`` array."""
    if isinstance(rects, np.ndarray):
        array = np.asarray(rects, dtype=float)
        if array.ndim != 2 or array.shape[1] != 4:
            raise ValueError("rectangle array must have shape (n, 4): xlo, ylo, xhi, yhi")
        if np.any(array[:, 0] > array[:, 2]) or np.any(array[:, 1] > array[:, 3]):
            raise ValueError("degenerate rectangles: lows must not exceed highs")
        return array
    return np.asarray([rect.as_tuple() for rect in rects], dtype=float).reshape(-1, 4)


@dataclass
class _StoredObject:
    """A rectangle plus its centre (the key under which it is indexed)."""

    rect: Rect
    center: tuple[float, float]
    deleted: bool = False


class ExtendedObjectIndex:
    """A learned index over rectangles built on top of RSMI via query expansion."""

    def __init__(self, config: Optional[RSMIConfig] = None, stats: Optional[AccessStats] = None):
        self.config = config if config is not None else RSMIConfig()
        self.stats = stats if stats is not None else AccessStats()
        self._point_index = RSMI(self.config, stats=self.stats)
        #: centre (rounded) -> stored objects with that centre
        self._objects: dict[tuple[float, float], list[_StoredObject]] = {}
        self.max_half_width = 0.0
        self.max_half_height = 0.0
        self._n_objects = 0

    # -- construction -------------------------------------------------------------

    def build(self, rects: list[Rect] | np.ndarray) -> "ExtendedObjectIndex":
        """Bulk-build the index over a collection of rectangles."""
        array = rects_to_arrays(rects)
        if array.shape[0] == 0:
            raise ValueError("cannot build an index over an empty object set")
        centers = np.column_stack(
            [(array[:, 0] + array[:, 2]) / 2.0, (array[:, 1] + array[:, 3]) / 2.0]
        )
        self._objects = {}
        self._n_objects = 0
        self.max_half_width = 0.0
        self.max_half_height = 0.0
        for row, (cx, cy) in zip(array, centers):
            self._register(Rect(*row), (float(cx), float(cy)))
        # duplicate centres are legal for objects: the point index only needs the
        # distinct centres (the object table holds the rest)
        distinct_centers = np.unique(np.round(centers, 12), axis=0)
        self._point_index.build(distinct_centers)
        return self

    def _register(self, rect: Rect, center: tuple[float, float]) -> None:
        key = self._key(center)
        self._objects.setdefault(key, []).append(_StoredObject(rect=rect, center=center))
        self.max_half_width = max(self.max_half_width, rect.width / 2.0)
        self.max_half_height = max(self.max_half_height, rect.height / 2.0)
        self._n_objects += 1

    @staticmethod
    def _key(center: tuple[float, float]) -> tuple[float, float]:
        return (round(center[0], 12), round(center[1], 12))

    # -- queries -------------------------------------------------------------------

    def window_query(self, window: Rect, exact: bool = False) -> list[Rect]:
        """All stored rectangles intersecting ``window``.

        The query window is expanded by the largest half-extents before being
        run against the centre-point index; the candidates are then filtered
        with an exact geometric intersection test, so the answer never
        contains false positives.
        """
        expanded = Rect(
            window.xlo - self.max_half_width,
            window.ylo - self.max_half_height,
            window.xhi + self.max_half_width,
            window.yhi + self.max_half_height,
        )
        if exact:
            candidates = self._point_index.window_query_exact(expanded).points
        else:
            candidates = self._point_index.window_query(expanded).points
        results: list[Rect] = []
        for cx, cy in np.asarray(candidates).reshape(-1, 2):
            for stored in self._objects.get(self._key((float(cx), float(cy))), []):
                if not stored.deleted and window.intersects(stored.rect):
                    results.append(stored.rect)
        return results

    def stabbing_query(self, x: float, y: float, exact: bool = False) -> list[Rect]:
        """All stored rectangles containing the point ``(x, y)``."""
        return self.window_query(Rect(x, y, x, y), exact=exact)

    def knn_query(self, x: float, y: float, k: int, exact: bool = False) -> list[Rect]:
        """The ``k`` rectangles whose centres are nearest to ``(x, y)``.

        Centre distance is the standard point-representation approximation for
        extended objects; an application needing true object distance can
        re-rank the (small) result set.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if exact:
            result = self._point_index.knn_query_exact(x, y, k)
        else:
            result = self._point_index.knn_query(x, y, k)
        rects: list[Rect] = []
        for cx, cy in result.points:
            for stored in self._objects.get(self._key((float(cx), float(cy))), []):
                if not stored.deleted:
                    rects.append(stored.rect)
        return rects[:k]

    # -- updates --------------------------------------------------------------------

    def insert(self, rect: Rect) -> None:
        """Insert one rectangle (its centre is inserted into the point index)."""
        center = rect.center
        key = self._key(center)
        is_new_center = key not in self._objects or all(
            stored.deleted for stored in self._objects[key]
        )
        self._register(rect, center)
        if is_new_center:
            self._point_index.insert(*center)

    def delete(self, rect: Rect) -> bool:
        """Delete one stored rectangle equal to ``rect``; returns True on success."""
        key = self._key(rect.center)
        for stored in self._objects.get(key, []):
            if not stored.deleted and stored.rect == rect:
                stored.deleted = True
                self._n_objects -= 1
                if all(other.deleted for other in self._objects[key]):
                    self._point_index.delete(*rect.center)
                return True
        return False

    # -- accounting -------------------------------------------------------------------

    @property
    def n_objects(self) -> int:
        """Number of live rectangles stored."""
        return self._n_objects

    def size_bytes(self) -> int:
        """Underlying point index plus the object table (4 floats + flags per object)."""
        table = sum(len(objects) for objects in self._objects.values()) * 40
        return self._point_index.size_bytes() + table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExtendedObjectIndex(objects={self.n_objects}, "
            f"max_extent=({self.max_half_width:.4f}, {self.max_half_height:.4f}))"
        )
