"""Approximate window queries on the RSMI (Algorithm 2 of the paper).

The algorithm locates the data-block positions of (a superset of) the points
falling into the query window by running point queries for selected corner
points of the window:

* with a **Z-curve** ordering, the bottom-left and top-right corners bound the
  curve values covered by the window, so two point queries suffice;
* with a **Hilbert-curve** ordering the extreme curve values lie somewhere on
  the window boundary; the paper heuristically uses all four corners.

The block range spanned by the corner predictions (widened by the leaf error
bounds) is then scanned and filtered against the window.  The answer may miss
points (bounded recall) but never contains false positives.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import WindowQueryResult
from repro.geometry import Rect

__all__ = ["window_corner_points", "window_block_range", "window_query"]


def window_corner_points(window: Rect, curve_name: str) -> list[tuple[float, float]]:
    """The corner points whose predicted positions bound the scan range."""
    normalized = curve_name.lower()
    if normalized in ("z", "zcurve", "z-curve", "morton"):
        return [(window.xlo, window.ylo), (window.xhi, window.yhi)]
    return window.corners


def window_block_range(index, window: Rect) -> tuple[int, int]:
    """Base-block position range ``[begin, end]`` to scan for ``window``.

    For each corner point the query descends the RSMI like a point query; if
    the corner happens to be an indexed point its true block position is used,
    otherwise the prediction widened by the leaf's error bound.
    """
    corners = window_corner_points(window, index.config.curve)
    lower_bounds: list[int] = []
    upper_bounds: list[int] = []
    for cx, cy in corners:
        result = index.point_query(cx, cy)
        if result.found and result.position is not None:
            lower_bounds.append(result.position)
            upper_bounds.append(result.position)
            continue
        leaf, _, _ = index.route_to_leaf(cx, cy)
        predicted = leaf.predict_position(cx, cy)
        lower_bounds.append(max(leaf.first_position, predicted - leaf.err_below))
        upper_bounds.append(min(leaf.last_position, predicted + leaf.err_above))
    begin = index.store.clamp_position(min(lower_bounds))
    end = index.store.clamp_position(max(upper_bounds))
    if begin > end:
        begin, end = end, begin
    return begin, end


def window_query(index, window: Rect) -> WindowQueryResult:
    """Algorithm 2: scan the corner-bounded block range and filter by ``window``."""
    index._require_built()
    begin, end = window_block_range(index, window)
    collected: list[np.ndarray] = []
    blocks_scanned = 0
    for block in index.store.scan_positions(begin, end):
        blocks_scanned += 1
        points = block.points()
        if points.shape[0] == 0:
            continue
        mask = window.contains_points(points)
        if mask.any():
            collected.append(points[mask])
    points = np.vstack(collected) if collected else np.empty((0, 2), dtype=float)
    return WindowQueryResult(
        points=points,
        blocks_scanned=blocks_scanned,
        scan_begin=begin,
        scan_end=end,
        exact=False,
    )
