"""Update handling for the RSMI (paper Section 5) and the RSMIr rebuild policy.

Insertions route the new point to its leaf model exactly like a point query.
The point goes into the predicted block (or its overflow chain) if there is
room; otherwise a new overflow block is linked right after the chain.  Because
overflow blocks never shift the curve-order positions of base blocks, the
learned error bounds stay valid and query correctness for previously indexed
points is unaffected.  MBRs along the routing path are expanded so the exact
(RSMIa) query variants keep finding inserted points.

Deletions locate the point with a point query and flag its slot as deleted;
blocks are never removed, which also preserves the error bounds.
"""

from __future__ import annotations

__all__ = ["insert_point", "delete_point", "PeriodicRebuilder"]


def insert_point(index, x: float, y: float) -> None:
    """Insert ``(x, y)`` into ``index`` (an :class:`~repro.core.rsmi.RSMI`)."""
    index._require_built()
    leaf, _, path = index.route_to_leaf(x, y)

    # expand MBRs along the path so RSMIa queries keep seeing the new point
    for node in path:
        node.mbr = node.mbr.expand_to_point(x, y) if node.mbr is not None else None
    leaf.mbr = leaf.mbr.expand_to_point(x, y)

    position = index.store.clamp_position(leaf.predict_position(x, y))
    local_offset = position - leaf.first_position
    if 0 <= local_offset < len(leaf.block_mbrs):
        leaf.block_mbrs[local_offset] = leaf.block_mbrs[local_offset].expand_to_point(x, y)

    target = None
    last_block = None
    for block in index.store.iter_chain(position):
        last_block = block
        if not block.is_full:
            target = block
            break
    if target is None:
        target = index.store.allocate_overflow(last_block.block_id)
    target.append(x, y)
    index.store.note_write(target.block_id)

    leaf.n_inserted += 1
    index._n_points += 1


def delete_point(index, x: float, y: float) -> bool:
    """Delete the stored point equal to ``(x, y)``; returns True on success."""
    index._require_built()
    result = index.point_query(x, y)
    if not result.found or result.block_id is None:
        return False
    block = index.store.peek(result.block_id)
    removed = block.delete(x, y)
    if removed:
        index.store.note_write(block.block_id)
        index._n_points -= 1
    return removed


class PeriodicRebuilder:
    """The RSMIr policy: rebuild the index after a fraction of insertions.

    The paper's RSMIr rebuilds the sub-models whose partitions exceeded the
    partition threshold after every ``10% * n`` insertions.  This wrapper
    applies the same trigger; the rebuild itself re-runs the bulk build over
    all live points, which subsumes the per-sub-model rebuild (every oversized
    sub-model is re-learned) at the cost of also re-learning the others.  The
    amortised insertion cost it reports is therefore an upper bound on the
    paper's variant.
    """

    def __init__(self, index, rebuild_fraction: float = 0.10):
        if rebuild_fraction <= 0:
            raise ValueError("rebuild_fraction must be positive")
        self.index = index
        self.rebuild_fraction = float(rebuild_fraction)
        self._base_size = index.n_points
        self._inserted_since_rebuild = 0
        self.n_rebuilds = 0

    def insert(self, x: float, y: float) -> bool:
        """Insert a point; returns True when the insertion triggered a rebuild."""
        self.index.insert(x, y)
        self._inserted_since_rebuild += 1
        threshold = max(1, int(self.rebuild_fraction * max(self._base_size, 1)))
        if self._inserted_since_rebuild >= threshold:
            self.rebuild()
            return True
        return False

    def rebuild(self) -> None:
        """Force a rebuild from the currently stored live points."""
        self.index.rebuild()
        self._base_size = self.index.n_points
        self._inserted_since_rebuild = 0
        self.n_rebuilds += 1

    def __getattr__(self, item):
        # delegate queries (contains, window_query, ...) to the wrapped index
        return getattr(self.index, item)
