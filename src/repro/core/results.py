"""Result records returned by the RSMI query algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PointQueryResult", "WindowQueryResult", "KNNQueryResult"]


@dataclass
class PointQueryResult:
    """Outcome of a point query (Algorithm 1).

    Attributes
    ----------
    found:
        True when a stored point with the query coordinates exists.
    block_id:
        Id of the block holding the point (``None`` when not found).
    position:
        Curve-order position of the base block whose chain holds the point.
    predicted_position:
        The leaf model's (clamped) predicted base-block position.
    depth:
        Number of sub-models invoked to reach the leaf (the paper's "depth").
    blocks_scanned:
        Number of data blocks examined while searching the error range.
    """

    found: bool
    block_id: int | None = None
    position: int | None = None
    predicted_position: int | None = None
    depth: int = 0
    blocks_scanned: int = 0


@dataclass
class WindowQueryResult:
    """Outcome of a window query (Algorithm 2 or the exact RSMIa traversal)."""

    points: np.ndarray
    blocks_scanned: int = 0
    scan_begin: int | None = None
    scan_end: int | None = None
    exact: bool = False

    @property
    def count(self) -> int:
        return int(self.points.shape[0])


@dataclass
class KNNQueryResult:
    """Outcome of a kNN query (Algorithm 3 or the exact best-first traversal)."""

    points: np.ndarray
    distances: np.ndarray
    blocks_scanned: int = 0
    expansions: int = 0
    exact: bool = False
    notes: dict = field(default_factory=dict)

    @property
    def count(self) -> int:
        return int(self.points.shape[0])
