"""Approximate kNN queries on the RSMI (Algorithm 3 of the paper).

The algorithm expands a rectangular search region centred on the query point
until it provably covers the k nearest neighbours found so far.  The initial
region size assumes ``k/n`` of the space is needed under a uniform
distribution and corrects for skew with the parameters ``αx`` and ``αy``
estimated from piecewise CDF approximations (Equation 6).
"""

from __future__ import annotations

import bisect
import math

import numpy as np

from repro.core.results import KNNQueryResult
from repro.core.window import window_block_range
from repro.geometry import Rect, euclidean, mindist_point_rect

__all__ = ["initial_search_region", "knn_query"]


def initial_search_region(index, x: float, y: float, k: int) -> tuple[float, float]:
    """Width and height of the initial search region (paper Section 4.3)."""
    n = max(index.n_points, 1)
    base = math.sqrt(k / n)
    delta = index.config.knn_delta
    alpha_x = index.pmf_x.skew_parameter(x, delta) if index.pmf_x is not None else 1.0
    alpha_y = index.pmf_y.skew_parameter(y, delta) if index.pmf_y is not None else 1.0
    return alpha_x * base, alpha_y * base


def knn_query(index, x: float, y: float, k: int) -> KNNQueryResult:
    """Algorithm 3: expanding-window approximate kNN search."""
    index._require_built()
    if k < 1:
        raise ValueError("k must be >= 1")

    width, height = initial_search_region(index, x, y, k)
    width = max(width, 1e-9)
    height = max(height, 1e-9)

    space = index.data_space()
    space_diagonal = math.hypot(space.width, space.height) or 1.0

    # sorted list of (distance, px, py); the k-th entry bounds the search
    best: list[tuple[float, float, float]] = []
    visited_positions: set[int] = set()
    blocks_scanned = 0
    expansions = 0

    def kth_distance() -> float:
        return best[k - 1][0] if len(best) >= k else float("inf")

    while True:
        expansions += 1
        region = Rect.from_center(x, y, width, height)
        begin, end = window_block_range(index, region)

        for position in range(begin, end + 1):
            if position in visited_positions:
                continue
            visited_positions.add(position)
            for block in index.store.iter_chain(position):
                blocks_scanned += 1
                block_mbr = block.mbr()
                if block_mbr is None:
                    continue
                if len(best) >= k and mindist_point_rect(x, y, block_mbr) >= kth_distance():
                    continue
                for px, py in block.iter_points():
                    distance = euclidean(x, y, px, py)
                    if len(best) < k or distance < kth_distance():
                        bisect.insort(best, (distance, px, py))

        covered_everything = begin == 0 and end == index.store.n_base_blocks - 1
        region_covers_space = width >= space_diagonal * 2 and height >= space_diagonal * 2

        if len(best) < k:
            if covered_everything and region_covers_space:
                break  # fewer than k live points exist
            width *= 2.0
            height *= 2.0
        elif kth_distance() > math.hypot(width, height) / 2.0:
            width = 2.0 * kth_distance()
            height = 2.0 * kth_distance()
        else:
            break

        if expansions >= index.config.knn_max_expansions:
            break

    top = best[:k]
    points = np.asarray([(px, py) for _, px, py in top], dtype=float).reshape(-1, 2)
    distances = np.asarray([d for d, _, _ in top], dtype=float)
    return KNNQueryResult(
        points=points,
        distances=distances,
        blocks_scanned=blocks_scanned,
        expansions=expansions,
        exact=False,
    )
