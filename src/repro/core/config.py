"""Configuration of the RSMI build."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nn import TrainingConfig

__all__ = ["RSMIConfig"]


@dataclass(frozen=True)
class RSMIConfig:
    """Build parameters of the Recursive Spatial Model Index.

    Attributes
    ----------
    block_capacity:
        ``B`` — number of points per disk block (paper default 100).
    partition_threshold:
        ``N`` — the largest point set a single leaf model handles (paper
        default 10 000).  Larger partitions are recursively split.
    curve:
        Space-filling curve used to order points: ``"hilbert"`` (paper
        default, better query performance) or ``"z"``.
    training:
        Hyper-parameters for training every sub-model MLP.
    hidden_size:
        Fixed hidden-layer width.  When ``None`` the paper's rule is used:
        ``(n_inputs + n_output_classes) / 2`` capped at ``hidden_size_cap``.
    hidden_size_cap:
        Upper bound on the hidden width so very large partitions do not blow
        up the pure-NumPy training time.
    max_height:
        Safety bound on the recursion depth; partitions that cannot be split
        further fall back to (larger) leaf models.
    knn_delta:
        ``Δ`` used when estimating the skew parameters αx/αy from the
        piecewise CDFs (paper uses 0.01).
    pmf_partitions:
        ``γ`` — number of pieces of the piecewise mapping function
        approximating each per-dimension CDF (paper uses 100).
    knn_max_expansions:
        Safety bound on the number of search-region expansions of the
        approximate kNN algorithm.
    seed:
        Seed for model-weight initialisation (reproducible builds).
    """

    block_capacity: int = 100
    partition_threshold: int = 10_000
    curve: str = "hilbert"
    training: TrainingConfig = field(default_factory=TrainingConfig)
    hidden_size: int | None = None
    hidden_size_cap: int = 64
    max_height: int = 16
    knn_delta: float = 0.01
    pmf_partitions: int = 100
    knn_max_expansions: int = 40
    seed: int = 0

    def __post_init__(self) -> None:
        if self.block_capacity < 1:
            raise ValueError("block_capacity must be >= 1")
        if self.partition_threshold < self.block_capacity:
            raise ValueError(
                "partition_threshold must be at least block_capacity "
                f"({self.partition_threshold} < {self.block_capacity})"
            )
        if self.curve.lower() not in ("hilbert", "z", "zcurve", "z-curve", "morton", "h"):
            raise ValueError(f"unknown curve: {self.curve!r}")
        if self.hidden_size is not None and self.hidden_size < 1:
            raise ValueError("hidden_size must be positive when given")
        if self.hidden_size_cap < 1:
            raise ValueError("hidden_size_cap must be positive")
        if self.max_height < 1:
            raise ValueError("max_height must be >= 1")
        if self.knn_delta <= 0:
            raise ValueError("knn_delta must be positive")
        if self.pmf_partitions < 1:
            raise ValueError("pmf_partitions must be >= 1")
        if self.knn_max_expansions < 1:
            raise ValueError("knn_max_expansions must be >= 1")

    def hidden_width_for(self, n_output_classes: int) -> int:
        """Hidden-layer width for a sub-model with ``n_output_classes`` outputs.

        Implements the paper's sizing rule (Section 6.1): the hidden layer has
        ``(#inputs + #output classes) / 2`` neurons, e.g. 51 when the input is
        two coordinates and there are 100 distinct block ids.
        """
        if self.hidden_size is not None:
            return self.hidden_size
        width = max(4, (2 + int(n_output_classes)) // 2)
        return min(width, self.hidden_size_cap)
