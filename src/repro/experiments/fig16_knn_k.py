"""Figure 16 — kNN query cost and recall vs. k (1 to 625 in the paper)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points, make_suite, run_knn_workload

HEADER = ["k", "index", "query_time_ms", "block_accesses", "recall"]


@register_experiment(
    "fig16",
    "kNN query cost and recall vs. k",
    "Figure 16",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    points = make_points(profile)
    adapters, _ = make_suite(points, profile)
    rows: list[list] = []
    for k in profile.k_values:
        metrics = run_knn_workload(adapters, points, profile, k=k)
        for name in profile.index_names:
            rows.append(
                [
                    k,
                    name,
                    metrics[name].avg_time_ms,
                    metrics[name].avg_block_accesses,
                    metrics[name].recall,
                ]
            )

    return ExperimentResult(
        experiment_id="fig16",
        title="kNN query cost and recall vs. k",
        paper_reference="Figure 16",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, n={points.shape[0]}, "
            f"distribution={profile.default_distribution}",
            "expected shape: cost grows with k for every index; RSMI remains fastest with "
            "high recall across k",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
