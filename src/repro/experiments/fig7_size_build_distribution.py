"""Figure 7 — index size and construction time vs. data distribution.

The learned indices (RSMI, ZM) are the smallest structures because they only
store data blocks plus tiny models, while the R-trees carry internal nodes
(and HRR two auxiliary rank B-trees); construction is slowest for the learned
indices (model training) and for the insertion-built R*-tree.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points, make_suite

HEADER = ["distribution", "index", "index_size_mb", "construction_time_s"]

BUILD_INDICES = ("Grid", "HRR", "KDB", "RR*", "RSMI", "ZM")


@register_experiment(
    "fig7",
    "Index size and construction time vs. data distribution",
    "Figure 7",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    index_names = tuple(n for n in profile.index_names if n in BUILD_INDICES)
    rows: list[list] = []
    for distribution in profile.distributions:
        points = make_points(profile, distribution=distribution)
        _, reports = make_suite(points, profile, distribution=distribution, index_names=index_names)
        for name in index_names:
            rows.append(
                [distribution, name, reports[name].size_mb, reports[name].build_time_s]
            )

    return ExperimentResult(
        experiment_id="fig7",
        title="Index size and construction time vs. data distribution",
        paper_reference="Figure 7",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, n={profile.n_points}, B={profile.block_capacity}",
            "expected shape: learned indices smallest; learned indices and RR* slowest to build; "
            "Grid and KDB fastest to build",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
