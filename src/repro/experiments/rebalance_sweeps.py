"""Rebalance sweep: latency-driven shard splitting, controller on vs off.

The ``drifting`` scenario moves its hot region across the space over the
stream, so whichever shard currently hosts it absorbs ~90 % of the traffic
*and* the hotspot's insert pressure — its structures degrade (overflow
chains, over-full cells) exactly where the tail latency is measured.  This
experiment replays the identical stream twice per index over a sharded
deployment: once static, once with a :class:`~repro.sharding.
RebalanceController` attached, which watches per-shard heat and p99 and
splits the hot shard online (children rebuilt compactly from the live
points, in-flight writes rescued, swap atomic).  One row per snapshot per
arm; the summary notes compare tail-half block accesses and p99, where the
controller's advantage must show once the hotspot has moved.

Both arms are shadowed by the brute-force oracle, so the sweep doubles as
a mid-migration correctness check (:class:`~repro.workloads.runner.
ScenarioMismatch` on any divergence).
"""

from __future__ import annotations

from statistics import mean
from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.scenario_sweeps import (
    build_sharded_index,
    scenario_spec_for_profile,
)
from repro.experiments.sweeps import execution_mode, make_points
from repro.evaluation.runner import SuiteConfig
from repro.sharding import RebalanceConfig, RebalanceController
from repro.workloads import OracleIndex, ScenarioRunner

__all__ = ["REBALANCE_SWEEP_INDEX_NAMES", "rebalance_sweep_config", "run_rebalance_sweep"]

#: default arms: one exact paged baseline, one learned block layout
REBALANCE_SWEEP_INDEX_NAMES = ("Grid", "ZM")

_ENGINE_MODES = {"sequential": "sequential", "batched": "auto", "threaded": "threaded"}


def rebalance_sweep_config(
    n_ops: int, split_threshold: Optional[float] = None
) -> RebalanceConfig:
    """Controller settings for the sweep: the decayed heat total reaches a
    scale-free equilibrium (it depends on batch size and decay, not stream
    length), so the warm-up threshold is fixed and the decay is slowed to
    keep the equilibrium above it; a longer cooldown damps split/merge
    thrash on short CI streams."""
    del n_ops  # the trigger thresholds are deliberately scale-free
    kwargs = dict(min_observations=96, decay=0.95, cooldown_ticks=4)
    if split_threshold is not None:
        kwargs["split_threshold"] = float(split_threshold)
    return RebalanceConfig(**kwargs)


def run_rebalance_sweep(
    profile: ScaleProfile,
    index_names: Optional[Sequence[str]] = None,
    scenario: str = "drifting",
    shards: int = 4,
    check: bool = True,
) -> ExperimentResult:
    """Replay ``scenario`` per index with the rebalancer off, then on."""
    names = tuple(index_names) if index_names is not None else REBALANCE_SWEEP_INDEX_NAMES
    spec = scenario_spec_for_profile(profile, scenario)
    spec = spec.with_overrides(snapshot_every=max(1, spec.n_ops // 8))
    points = make_points(profile)
    config = SuiteConfig(
        n_points=points.shape[0],
        distribution=profile.default_distribution,
        block_capacity=profile.block_capacity,
        partition_threshold=profile.partition_threshold,
        training_epochs=profile.training_epochs,
        seed=profile.seed,
    )
    engine_mode = _ENGINE_MODES[execution_mode(profile)]
    split_threshold = profile.extras.get("split_threshold")

    rows: list[list] = []
    notes: list[str] = [
        f"scenario '{spec.name}': {spec.n_ops} ops over {shards} initial shards; "
        "each index runs the identical stream twice (controller off / on)"
    ]
    for name in names:
        tails: dict[str, tuple[float, float]] = {}
        for arm in ("off", "on"):
            index = build_sharded_index(points, name, shards, "grid", config)
            rebalancer = None
            if arm == "on":
                rebalancer = RebalanceController(
                    index, rebalance_sweep_config(spec.n_ops, split_threshold)
                )
            runner = ScenarioRunner(
                index,
                spec,
                oracle=OracleIndex().build(points) if check else None,
                engine_mode=engine_mode,
                rebalancer=rebalancer,
            )
            result = runner.run(points)
            for snapshot in result.snapshots:
                rows.append(
                    [
                        name,
                        arm,
                        snapshot.op_index,
                        round(snapshot.ops_per_s, 1),
                        round(snapshot.avg_block_accesses, 2),
                        index.n_shards if rebalancer is not None else shards,
                        round(snapshot.latency.p50_ms, 3) if snapshot.latency else "-",
                        round(snapshot.latency.p99_ms, 3) if snapshot.latency else "-",
                    ]
                )
            # tail half of the stream: the hot region has moved at least once
            snaps = result.snapshots
            tail = snaps[-(len(snaps) // 2) or -1 :]
            tails[arm] = (
                mean(s.avg_block_accesses for s in tail),
                mean(s.latency.p99_ms for s in tail if s.latency is not None),
            )
            if rebalancer is not None:
                report = rebalancer.report
                notes.append(
                    f"{name}: controller — {report.n_splits} split(s), "
                    f"{report.n_merges} merge(s), {report.rescued_writes} rescued "
                    f"write(s), {report.mid_migration_batches} batch(es) raced a "
                    f"migration; final topology {index.n_shards} shard(s)"
                )
            if check and result.checked:
                notes.append(
                    f"{name}/{arm}: {result.n_ops} ops verified against the oracle"
                )
        (blocks_off, p99_off), (blocks_on, p99_on) = tails["off"], tails["on"]
        notes.append(
            f"{name}: tail-half blocks/op {blocks_off:.2f} (off) vs {blocks_on:.2f} "
            f"(on); tail-half p99 {p99_off:.3f} ms (off) vs {p99_on:.3f} ms (on)"
            + (" — controller wins the tail" if p99_on < p99_off else "")
        )
    return ExperimentResult(
        experiment_id="rebalance-sweep",
        title="Online shard rebalancing under a drifting hotspot",
        paper_reference="beyond the paper (ROADMAP: rebalancing & autoscaling)",
        header=[
            "index",
            "controller",
            "ops_done",
            "ops_per_s",
            "block_accesses_per_op",
            "n_shards",
            "p50_ms",
            "p99_ms",
        ],
        rows=rows,
        notes=notes,
    )


register_experiment(
    "rebalance-sweep",
    "Latency-driven online shard rebalancing: drifting hotspot, controller on/off",
    "beyond the paper",
)(run_rebalance_sweep)
