"""Figure 17 — insertion cost and point query cost after insertions.

Indices are initialised with the default data set and then 10 %–50 % extra
points are inserted.  The paper reports the average per-insertion time
(Fig. 17a) and the average point query time on the updated index (Fig. 17b),
including the RSMIr variant that periodically rebuilds oversized sub-models.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.update_sweeps import run_update_sweep

HEADER = [
    "inserted_fraction",
    "index",
    "insertion_time_us",
    "point_query_time_us",
    "point_query_block_accesses",
]


@register_experiment(
    "fig17",
    "Insertion cost and point queries after insertions",
    "Figure 17",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    steps = run_update_sweep(profile, query_kind="point", include_rsmir=True)
    rows = [
        [
            step.fraction,
            step.index_name,
            step.insertion.avg_time_us,
            step.query.avg_time_us,
            step.query.avg_block_accesses,
        ]
        for step in steps
    ]
    return ExperimentResult(
        experiment_id="fig17",
        title="Insertion cost and point queries after insertions",
        paper_reference="Figure 17",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, n={profile.n_points}, "
            f"distribution={profile.default_distribution}",
            "expected shape: insertion times grow slowly with the inserted fraction; "
            "point query times increase after insertions; RSMI stays fastest for queries; "
            "RSMIr pays an amortised rebuild cost but keeps query times lower",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
