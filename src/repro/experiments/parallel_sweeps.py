"""Parallel-serving sweep: multi-core throughput scaling and paced tails.

The serving tier (:mod:`repro.serving`) moves shard execution onto worker
processes; this experiment measures what that buys and proves it changes no
answer:

* **Batched scaling** — one big point-query batch is executed by the
  single-process :class:`~repro.sharding.ShardedBatchEngine` and then by a
  :class:`~repro.serving.ParallelShardEngine` at each worker count, every
  result list compared byte-for-byte against the single-threaded reference
  (the run aborts on any difference).  Speedups are reported relative to
  the 1-worker pool, so the figure isolates parallelism from the fixed
  pool/IPC overhead.
* **Paced tails** — the same operation stream is offered open-loop through
  the asyncio :class:`~repro.serving.FrontDoor` at 1.5x the measured
  1-worker capacity, once on 1 worker and once on the largest pool; under
  genuine multi-core hardware the extra workers drain the queue that the
  single worker builds up, which shows in the measured sojourn p99.

Wall-clock numbers vary with the host (core count included) — they are
reported for inspection while the cross-machine gate lives in
``benchmarks/bench_parallel_serving.py``.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.analytics.ops import QueryRequest
from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points
from repro.nn import TrainingConfig
from repro.sharding import ShardedBatchEngine, shard_index_factory
from repro.workloads import generate_operations, scenario_by_name

__all__ = ["PARALLEL_SWEEP_INDEX_NAMES", "WORKER_COUNTS", "run_parallel_sweep"]

#: indices the sweep drives by default: one flat layout, one tree descent
PARALLEL_SWEEP_INDEX_NAMES = ("Grid", "KDB")

#: process-pool sizes of the scaling sweep (capped at the shard count)
WORKER_COUNTS = (1, 2, 4)


def _answers_equal(got: list, want: list) -> bool:
    """Byte-identity over a result list (bools or point arrays)."""
    if len(got) != len(want):
        return False
    for a, b in zip(got, want):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            a = np.asarray(a, dtype=float).reshape(-1, 2)
            b = np.asarray(b, dtype=float).reshape(-1, 2)
            if a.shape != b.shape or not np.array_equal(a, b):
                return False
        elif a != b:
            return False
    return True


def run_parallel_sweep(
    profile: ScaleProfile,
    index_names: Optional[Sequence[str]] = None,
    worker_counts: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """One row per (index, worker count), plus paced front-door rows."""
    from repro.serving import FrontDoor, ParallelShardEngine, ServingSpec

    names = (
        tuple(index_names) if index_names is not None else PARALLEL_SWEEP_INDEX_NAMES
    )
    counts = tuple(
        sorted(set(int(c) for c in (worker_counts or WORKER_COUNTS)))
    )
    if any(c < 1 for c in counts):
        raise ValueError("worker counts must be >= 1")
    shards = int(profile.extras.get("shards", 0)) or max(max(counts), 4)
    n_queries = int(profile.extras.get("scenario_ops", max(400, profile.n_points // 2)))

    points = make_points(profile)
    rng = np.random.default_rng(profile.seed + 409)
    queries = rng.random((n_queries, 2))
    # half the batch hits stored points, so both membership outcomes and the
    # full per-shard fan-out are exercised
    queries[: n_queries // 2] = points[
        rng.integers(0, points.shape[0], size=n_queries // 2)
    ]

    paced_spec = scenario_by_name("sharded-mixed").with_overrides(
        n_ops=min(n_queries, 600),
        seed=profile.seed + 409,
        k=profile.default_k,
        window_area_fraction=profile.default_window_area,
    )

    rows: list[list] = []
    notes: list[str] = [
        f"{n_queries} point queries per batch over {shards} shard(s); answers "
        "compared byte-for-byte against the single-threaded engine every row"
    ]

    for name in names:
        factory = shard_index_factory(
            name,
            block_capacity=profile.block_capacity,
            partition_threshold=max(
                profile.block_capacity, profile.partition_threshold // shards
            ),
            training=TrainingConfig(epochs=profile.training_epochs, seed=profile.seed),
            seed=profile.seed,
        )
        spec = ServingSpec.from_points(
            factory, points, n_shards=shards, policy="grid", name=name
        )

        reference = ShardedBatchEngine(spec.build_index())
        started = time.perf_counter()
        want = reference.execute(QueryRequest.for_points(queries)).values
        single_s = time.perf_counter() - started
        rows.append(
            [name, "batched-points", "single-thread", round(n_queries / single_s, 1),
             "-", 1, "-", "-"]
        )

        base_rate: Optional[float] = None
        for n_workers in counts:
            with ParallelShardEngine(spec, n_workers=n_workers) as engine:
                # warm the pools before timing
                engine.execute(QueryRequest.for_points(queries[: min(64, n_queries)]))
                started = time.perf_counter()
                got = engine.execute(QueryRequest.for_points(queries)).values
                elapsed = time.perf_counter() - started
            if not _answers_equal(got, want):
                raise AssertionError(
                    f"{name}: parallel point answers diverged at "
                    f"{n_workers} worker(s)"
                )
            rate = n_queries / elapsed
            if base_rate is None:
                base_rate = rate
            rows.append(
                [name, "batched-points", n_workers, round(rate, 1),
                 round(rate / base_rate, 2), 1, "-", "-"]
            )

        # capacity probe: the same mixed stream served unpaced on one worker
        # (writes dispatch singly, so this is the stream's real service rate,
        # not the big-batch point-query rate)
        with ParallelShardEngine(spec, n_workers=counts[0]) as engine:
            probe = FrontDoor(engine).serve(
                generate_operations(paced_spec, points), paced=False
            )
        capacity = probe.n_served / max(probe.elapsed_s, 1e-9)
        offered = max(capacity * 1.5, 1.0)
        operations = generate_operations(
            paced_spec.with_overrides(
                arrival_model="open-loop", arrival_rate=offered
            ),
            points,
        )
        for n_workers in (counts[0], counts[-1]):
            with ParallelShardEngine(spec, n_workers=n_workers) as engine:
                door = FrontDoor(engine, max_inflight=256)
                report = door.serve(operations, paced=True)
            sojourn = report.sojourn
            rows.append(
                [name, "paced-stream", n_workers,
                 round(report.n_served / max(report.elapsed_s, 1e-9), 1), "-", "-",
                 round(sojourn.p99_ms, 3) if sojourn is not None else "-",
                 report.n_shed]
            )
        notes.append(
            f"{name}: paced stream offered at 1.5x the measured 1-worker "
            f"capacity ({offered:.0f} ops/s), max_inflight 256, "
            f"mean batch {report.mean_batch_size:.1f}"
        )

    notes.append(
        "wall-clock rates and speedups are machine-dependent (this host may "
        "have fewer cores than workers); the CI gate checks answer identity "
        "and machine-independent access accounting only"
    )
    return ExperimentResult(
        experiment_id="parallel-sweep",
        title="Process-pool serving: throughput scaling and paced-tail latency",
        paper_reference="beyond the paper (ROADMAP: multi-core serving)",
        header=[
            "index",
            "mode",
            "n_workers",
            "ops_per_s",
            "speedup_vs_1w",
            "answers_identical",
            "sojourn_p99_ms",
            "shed",
        ],
        rows=rows,
        notes=notes,
    )


register_experiment(
    "parallel-sweep",
    "Multi-core serving: worker-count scaling with byte-identical answers",
    "beyond the paper",
)(run_parallel_sweep)
