"""Figure 13 — window query cost and recall vs. query window aspect ratio.

The aspect ratio (0.25–4.0, constant area) has little impact on the averaged
costs because the query set follows the data distribution; RSMI remains the
fastest structure across ratios.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points, make_suite, run_window_workload

HEADER = ["aspect_ratio", "index", "query_time_ms", "block_accesses", "recall"]


@register_experiment(
    "fig13",
    "Window query cost and recall vs. window aspect ratio",
    "Figure 13",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    points = make_points(profile)
    adapters, _ = make_suite(points, profile)
    rows: list[list] = []
    for aspect_ratio in profile.aspect_ratios:
        metrics = run_window_workload(adapters, points, profile, aspect_ratio=aspect_ratio)
        for name in profile.index_names:
            rows.append(
                [
                    aspect_ratio,
                    name,
                    metrics[name].avg_time_ms,
                    metrics[name].avg_block_accesses,
                    metrics[name].recall,
                ]
            )

    return ExperimentResult(
        experiment_id="fig13",
        title="Window query cost and recall vs. window aspect ratio",
        paper_reference="Figure 13",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, n={points.shape[0]}, "
            f"window area fraction={profile.default_window_area}",
            "expected shape: aspect ratio has a small effect; RSMI remains fastest with "
            "high recall",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
