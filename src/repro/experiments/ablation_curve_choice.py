"""Ablation — Hilbert-curve vs. Z-curve ordering inside RSMI.

The paper states (Section 6.1) that RSMI uses Hilbert curves "as these yield
better query performance than Z-curves".  This ablation builds RSMI with both
orderings on the same data and compares point/window query cost and recall,
validating the design choice called out in DESIGN.md.
"""

from __future__ import annotations

import time

from repro.core import RSMI, RSMIConfig
from repro.evaluation.adapters import RSMIAdapter
from repro.evaluation.runner import measure_point_queries, measure_window_queries
from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import execution_mode, make_points
from repro.nn import TrainingConfig
from repro.queries import generate_point_queries, generate_window_queries

HEADER = [
    "curve",
    "build_time_s",
    "err_l",
    "err_a",
    "point_query_block_accesses",
    "window_query_time_ms",
    "window_recall",
]


@register_experiment(
    "ablation-curve",
    "RSMI ordering curve: Hilbert vs. Z",
    "Section 6.1 (design choice)",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    points = make_points(profile)
    point_queries = generate_point_queries(points, profile.n_point_queries, seed=profile.seed + 11)
    windows = generate_window_queries(
        points,
        profile.n_window_queries,
        area_fraction=profile.default_window_area,
        seed=profile.seed + 23,
    )
    training = TrainingConfig(epochs=profile.training_epochs, seed=profile.seed)

    rows: list[list] = []
    for curve in ("hilbert", "z"):
        config = RSMIConfig(
            block_capacity=profile.block_capacity,
            partition_threshold=profile.partition_threshold,
            curve=curve,
            training=training,
            seed=profile.seed,
        )
        start = time.perf_counter()
        index = RSMI(config).build(points)
        build_time = time.perf_counter() - start
        adapter = RSMIAdapter(index)
        execution = execution_mode(profile)
        point_metrics = measure_point_queries(adapter, point_queries, execution=execution)
        window_metrics = measure_window_queries(adapter, windows, points, execution=execution)
        err_below, err_above = index.error_bounds()
        rows.append(
            [
                curve,
                build_time,
                err_below,
                err_above,
                point_metrics.avg_block_accesses,
                window_metrics.avg_time_ms,
                window_metrics.recall,
            ]
        )

    return ExperimentResult(
        experiment_id="ablation-curve",
        title="RSMI ordering curve: Hilbert vs. Z",
        paper_reference="Section 6.1 (design choice)",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, n={points.shape[0]}, "
            f"distribution={profile.default_distribution}",
            "expected shape: both orderings work; Hilbert tends to give equal or better "
            "window query cost/recall (the paper's default)",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
