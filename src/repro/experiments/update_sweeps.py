"""Shared machinery for the update-handling experiments (Figures 17–19).

The protocol follows the paper (Section 6.2.5): every index is initialised
with the default data set, then batches of new points (drawn from the same
distribution) are inserted until 10 %–50 % of the original cardinality has
been added.  After each batch the insertion cost and the query performance of
the updated index are measured.  The RSMIr variant (periodic rebuild) is
included for the insertion experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import PeriodicRebuilder, RSMI, RSMIConfig
from repro.datasets import dataset_by_name
from repro.evaluation.adapters import IndexAdapter, RSMIAdapter
from repro.evaluation.runner import (
    QueryMetrics,
    measure_insertions,
    measure_knn_queries,
    measure_point_queries,
    measure_window_queries,
)
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import execution_mode, make_points, make_suite
from repro.nn import TrainingConfig
from repro.queries import generate_knn_queries, generate_point_queries, generate_window_queries

__all__ = ["UpdateSweepStep", "run_update_sweep"]


@dataclass
class UpdateSweepStep:
    """Measurements for one index after one cumulative insertion fraction."""

    fraction: float
    index_name: str
    insertion: QueryMetrics
    query: QueryMetrics


class _RebuildingAdapter(RSMIAdapter):
    """Adapter for the RSMIr variant: inserts through a PeriodicRebuilder."""

    name = "RSMIr"

    def __init__(self, rebuilder: PeriodicRebuilder):
        super().__init__(rebuilder.index)
        self._rebuilder = rebuilder

    def insert(self, x: float, y: float) -> None:
        self._rebuilder.insert(x, y)


def _make_rsmir(points: np.ndarray, profile: ScaleProfile) -> _RebuildingAdapter:
    config = RSMIConfig(
        block_capacity=profile.block_capacity,
        partition_threshold=profile.partition_threshold,
        training=TrainingConfig(epochs=profile.training_epochs, seed=profile.seed),
        seed=profile.seed,
    )
    index = RSMI(config).build(points)
    return _RebuildingAdapter(PeriodicRebuilder(index, rebuild_fraction=0.10))


def run_update_sweep(
    profile: ScaleProfile,
    query_kind: str,
    include_rsmir: bool = False,
) -> list[UpdateSweepStep]:
    """Insert increasing fractions of new points and measure ``query_kind``.

    ``query_kind`` is one of ``"point"``, ``"window"`` or ``"knn"``.
    """
    if query_kind not in ("point", "window", "knn"):
        raise ValueError(f"unknown query kind: {query_kind!r}")

    points = make_points(profile)
    n = points.shape[0]
    max_fraction = max(profile.update_fractions)
    new_points = dataset_by_name(
        profile.default_distribution, int(np.ceil(max_fraction * n)), seed=profile.seed + 99
    )

    adapters, _ = make_suite(points, profile)
    if include_rsmir:
        adapters = dict(adapters)
        adapters["RSMIr"] = _make_rsmir(points, profile)

    steps: list[UpdateSweepStep] = []
    inserted_so_far = 0
    current_points = points
    for fraction in sorted(profile.update_fractions):
        target = int(round(fraction * n))
        batch = new_points[inserted_so_far:target]
        inserted_so_far = target
        current_points = np.vstack([current_points, batch]) if batch.shape[0] else current_points

        # RSMI and RSMIa are two query modes over one shared structure; insert
        # each batch only once per underlying index so the structure does not
        # receive duplicate points.
        inserted_structures: dict[int, QueryMetrics] = {}
        for name, adapter in adapters.items():
            structure_id = id(getattr(adapter, "wrapped", adapter))
            if batch.shape[0] == 0:
                insertion_metrics = QueryMetrics(
                    avg_time_ms=0.0, avg_block_accesses=0.0, n_queries=0
                )
            elif structure_id in inserted_structures:
                insertion_metrics = inserted_structures[structure_id]
            else:
                insertion_metrics = measure_insertions(adapter, batch)
                inserted_structures[structure_id] = insertion_metrics
            query_metrics = _measure_queries(
                adapter, query_kind, current_points, profile
            )
            steps.append(
                UpdateSweepStep(
                    fraction=fraction,
                    index_name=name,
                    insertion=insertion_metrics,
                    query=query_metrics,
                )
            )
    return steps


def _measure_queries(
    adapter: IndexAdapter,
    query_kind: str,
    current_points: np.ndarray,
    profile: ScaleProfile,
) -> QueryMetrics:
    execution = execution_mode(profile)
    if query_kind == "point":
        queries = generate_point_queries(
            current_points, profile.n_point_queries, seed=profile.seed + 11
        )
        return measure_point_queries(adapter, queries, execution=execution)
    if query_kind == "window":
        windows = generate_window_queries(
            current_points,
            profile.n_window_queries,
            area_fraction=profile.default_window_area,
            seed=profile.seed + 23,
        )
        return measure_window_queries(adapter, windows, current_points, execution=execution)
    queries = generate_knn_queries(current_points, profile.n_knn_queries, seed=profile.seed + 37)
    return measure_knn_queries(adapter, queries, profile.default_k, current_points, execution=execution)
