"""Scale profiles for the experiments.

The paper evaluates on 1–128 million points with ``B = 100`` and
``N = 10 000``.  A pure-Python reproduction cannot train models over millions
of points within a benchmark run, so every experiment accepts a
:class:`ScaleProfile` that fixes the workload scale.  Three profiles ship by
default:

* ``tiny`` — seconds per experiment; used by the test and benchmark suites,
* ``small`` — a few minutes per experiment; a more faithful laptop run,
* ``paper`` — the paper's parameters (documented; running it in pure Python
  is possible but takes hours/days and is not exercised by the benches).

All profiles keep the paper's *ratios* (e.g. ``N/B`` and query counts scale
together) so the qualitative shapes of the results are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["ScaleProfile", "PROFILES", "profile_by_name"]


@dataclass(frozen=True)
class ScaleProfile:
    """Workload scale for one experiment run."""

    name: str
    #: default number of points per data set
    n_points: int
    #: data-set sizes for the "vary the data set size" sweeps (Figures 8, 9, 11, 15)
    size_sweep: tuple[int, ...]
    #: block capacity B
    block_capacity: int
    #: RSMI partition threshold N
    partition_threshold: int
    #: values of N for the Table 3 sweep
    threshold_sweep: tuple[int, ...]
    #: MLP training epochs per sub-model
    training_epochs: int
    #: number of point / window / kNN queries per measurement
    n_point_queries: int
    n_window_queries: int
    n_knn_queries: int
    #: window sizes (fraction of the data-space area) for Figure 12
    window_area_fractions: tuple[float, ...] = (0.000006, 0.000025, 0.0001, 0.0004, 0.0016)
    #: default window size used everywhere else (the paper's boldfaced 0.01 %)
    default_window_area: float = 0.0001
    #: aspect ratios for Figure 13
    aspect_ratios: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0)
    #: k values for Figure 16 and default k
    k_values: tuple[int, ...] = (1, 5, 25, 125)
    default_k: int = 25
    #: insertion/deletion fractions for Figures 17-19
    update_fractions: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)
    #: data distributions for the "vary the distribution" sweeps
    distributions: tuple[str, ...] = ("uniform", "normal", "skewed", "tiger", "osm")
    #: default distribution for single-distribution sweeps (paper: Skewed)
    default_distribution: str = "skewed"
    #: indices included in the sweeps
    index_names: tuple[str, ...] = ("Grid", "HRR", "KDB", "RR*", "RSMI", "RSMIa", "ZM")
    seed: int = 0
    extras: dict = field(default_factory=dict)

    def with_overrides(self, **kwargs) -> "ScaleProfile":
        """A copy of this profile with some fields replaced."""
        return replace(self, **kwargs)


PROFILES: dict[str, ScaleProfile] = {
    "tiny": ScaleProfile(
        name="tiny",
        n_points=2_500,
        size_sweep=(1_000, 2_000, 4_000),
        block_capacity=25,
        partition_threshold=500,
        threshold_sweep=(125, 250, 500, 1_000, 2_000),
        training_epochs=120,
        n_point_queries=100,
        n_window_queries=15,
        n_knn_queries=15,
        k_values=(1, 5, 25),
        update_fractions=(0.1, 0.3, 0.5),
    ),
    "small": ScaleProfile(
        name="small",
        n_points=20_000,
        size_sweep=(5_000, 10_000, 20_000, 40_000),
        block_capacity=50,
        partition_threshold=2_000,
        threshold_sweep=(500, 1_000, 2_000, 4_000, 8_000),
        training_epochs=80,
        n_point_queries=500,
        n_window_queries=50,
        n_knn_queries=50,
        k_values=(1, 5, 25, 125),
        update_fractions=(0.1, 0.2, 0.3, 0.4, 0.5),
    ),
    "paper": ScaleProfile(
        name="paper",
        n_points=16_000_000,
        size_sweep=(1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000,
                    32_000_000, 64_000_000, 128_000_000),
        block_capacity=100,
        partition_threshold=10_000,
        threshold_sweep=(2_500, 5_000, 10_000, 20_000, 40_000),
        training_epochs=500,
        n_point_queries=10_000,
        n_window_queries=1_000,
        n_knn_queries=1_000,
        window_area_fractions=(0.000006, 0.000025, 0.0001, 0.0004, 0.0016),
        k_values=(1, 5, 25, 125, 625),
        update_fractions=(0.1, 0.2, 0.3, 0.4, 0.5),
    ),
}


def profile_by_name(name: str) -> ScaleProfile:
    """Look up a profile by name (``tiny``, ``small`` or ``paper``)."""
    normalized = name.strip().lower()
    if normalized not in PROFILES:
        raise ValueError(f"unknown profile {name!r}; available: {sorted(PROFILES)}")
    return PROFILES[normalized]
