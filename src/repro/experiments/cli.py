"""Command-line entry point: ``repro-experiment <id>|all [--profile tiny|small|paper]``.

Examples::

    repro-experiment --list
    repro-experiment fig6
    repro-experiment table3 fig10 --profile small
    repro-experiment all --profile tiny
    repro-experiment --scenario hotspot
    repro-experiment --scenario bulk-churn --scenario-ops 2000 --scenario-indices RSMI,Grid
    repro-experiment --scenario sharded-mixed --shards 4 --sharding-policy balanced
    repro-experiment sharded-scaling --profile tiny
    repro-experiment --scenario cache-hotspot --cache-blocks 32 --cache-policy clock
    repro-experiment cache-sweep --profile tiny
    repro-experiment --scenario tenant-mixed --tenants 3
    repro-experiment --scenario latency-hotspot --arrival-rate 5000
    repro-experiment latency-sweep --profile tiny
    repro-experiment --scenario write-heavy --storage-backend disk --checkpoint-every 128
    repro-experiment --scenario drifting --shards 4 --rebalance --split-threshold 0.4
    repro-experiment rebalance-sweep --profile small
    repro-experiment --scenario sharded-mixed --shards 4 --workers 2
    repro-experiment --scenario latency-hotspot --shards 4 --workers 4 \
        --arrival-rate 3000 --tenant-rate 500 --max-inflight 128
    repro-experiment parallel-sweep --profile tiny
    repro-experiment analytics-sweep --profile tiny
    repro-experiment analytics-sweep --aggregate-ops quantile,top-k --shards 4
    repro-experiment rebuild-policy --profile tiny
    repro-experiment --scenario analytics-mixed --scenario-indices KDB,RSMI

Every run's text table is also written to ``<results dir>/<id>.txt``; the
results directory is ``$REPRO_RESULTS_DIR`` when set, else ``./results``
(gitignored), never the current package/test tree.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.analytics import AGGREGATE_OPS
from repro.experiments import EXPERIMENT_REGISTRY, profile_by_name
from repro.experiments.scenario_sweeps import run_scenario_sweep
from repro.sharding import SHARDING_POLICY_NAMES
from repro.storage import PAGE_CACHE_POLICIES, POOL_ADMISSIONS, STORAGE_BACKENDS
from repro.workloads import SCENARIO_PRESETS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate tables/figures of 'Effectively Learning Spatial Indices'",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig6 table3), or 'all'",
    )
    parser.add_argument(
        "--profile",
        default="tiny",
        choices=("tiny", "small", "paper"),
        help="workload scale (default: tiny)",
    )
    parser.add_argument(
        "--execution",
        default="sequential",
        choices=("sequential", "batched", "threaded"),
        help="query execution mode: per-query loop (default), the batched "
        "query engine, or a thread-pooled per-query loop",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve through a sharded index with this many shards "
        "(applies to --scenario runs and the sharded-scaling experiment)",
    )
    parser.add_argument(
        "--sharding-policy",
        default=None,
        choices=SHARDING_POLICY_NAMES,
        help="how the data space is partitioned across shards (default: grid)",
    )
    parser.add_argument(
        "--cache-blocks",
        type=int,
        default=None,
        help="put a block cache of this many pages in front of every index "
        "(per shard when sharded); 0 disables (applies to --scenario runs "
        "and the cache-sweep experiment)",
    )
    parser.add_argument(
        "--cache-policy",
        default=None,
        choices=PAGE_CACHE_POLICIES,
        help="block-cache replacement policy (default: lru)",
    )
    parser.add_argument(
        "--shared-pool-blocks",
        type=int,
        default=None,
        help="serve every index from one shared buffer pool of this total "
        "capacity (all shards share it when sharded) instead of private "
        "caches; 0 disables (mutually exclusive with --cache-blocks)",
    )
    parser.add_argument(
        "--pool-admission",
        default=None,
        choices=POOL_ADMISSIONS,
        help="shared-pool admission policy: 'tinylfu' (frequency-sketch "
        "gated, scan-resistant; default) or 'lru' (always admit)",
    )
    parser.add_argument(
        "--batch-reorder",
        action="store_true",
        help="execute batched fallback queries in Hilbert-key order (results "
        "scatter back to input order), so co-located queries share cached "
        "blocks (applies to --execution batched/threaded)",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=None,
        help="split a --scenario run into this many independently-seeded "
        "tenant streams merged by virtual arrival time (per-tenant oracle "
        "shadows, per-tenant latency percentiles, fairness index)",
    )
    parser.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        help="offered open-loop load in ops per virtual second for "
        "--scenario runs (forces the open-loop arrival model; default: "
        "the scenario's own arrival model and rate)",
    )
    parser.add_argument(
        "--storage-backend",
        choices=sorted(STORAGE_BACKENDS),
        default=None,
        help="where blocks live during a --scenario run: 'memory' (default) "
        "simulates storage in RAM; 'disk' wraps every index in a durable "
        "store (write-ahead log + periodic checkpoints + block files under "
        "$REPRO_STORAGE_DIR or ./storage) whose reads perform actual I/O",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="writes between checkpoints for --storage-backend disk "
        "(default: 256)",
    )
    parser.add_argument(
        "--rebalance",
        action="store_true",
        help="attach the online rebalancing controller to a sharded "
        "--scenario run: it watches per-shard heat and p99, splits hot "
        "shards and merges cold siblings while the stream runs "
        "(requires --shards >= 2; answers stay oracle-checked mid-migration)",
    )
    parser.add_argument(
        "--split-threshold",
        type=float,
        default=None,
        help="access-share a shard must exceed before --rebalance splits it "
        "(default: 0.45)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="serve a sharded --scenario run through a process-pool engine "
        "with this many worker processes (requires --shards >= 2; shard s "
        "goes to worker s %% N; answers stay oracle-checked; incompatible "
        "with --rebalance, --storage-backend disk and --shared-pool-blocks)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="additionally run the stream through a paced asyncio front "
        "door bounding queued operations at this many (overload beyond it "
        "is shed; requires --workers); reports measured wall-clock sojourns "
        "and adaptive batch sizes",
    )
    parser.add_argument(
        "--tenant-rate",
        type=float,
        default=None,
        help="per-tenant token-bucket admission at this many ops per "
        "virtual second for --scenario runs (deterministic: refills follow "
        "the stream's arrival instants; needs an open-loop stream, e.g. "
        "via --arrival-rate)",
    )
    parser.add_argument(
        "--aggregate-ops",
        default=None,
        help="comma-separated aggregate operators for the analytics-sweep "
        f"experiment (subset of {','.join(AGGREGATE_OPS)}; default: all)",
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIO_PRESETS),
        help="replay a mixed read/write workload scenario (oracle-checked) "
        "instead of a table/figure experiment",
    )
    parser.add_argument(
        "--scenario-ops",
        type=int,
        default=None,
        help="operation budget for --scenario (default: scales with the profile)",
    )
    parser.add_argument(
        "--scenario-indices",
        default=None,
        help="comma-separated index names for --scenario "
        "(default: Grid,HRR,KDB,RR*,ZM,RSMI)",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    return parser


def _apply_profile_overrides(args, profile):
    """Fold the CLI's execution/sharding flags into the profile extras."""
    extras = dict(profile.extras)
    if args.execution != "sequential":
        extras["execution"] = args.execution
    if args.shards is not None:
        extras["shards"] = args.shards
    if args.sharding_policy is not None:
        extras["sharding_policy"] = args.sharding_policy
    if args.cache_blocks is not None:
        extras["cache_blocks"] = args.cache_blocks
    if args.cache_policy is not None:
        extras["cache_policy"] = args.cache_policy
    if args.shared_pool_blocks is not None:
        extras["shared_pool_blocks"] = args.shared_pool_blocks
    if args.pool_admission is not None:
        extras["pool_admission"] = args.pool_admission
    if args.batch_reorder:
        extras["batch_reorder"] = True
    if args.tenants is not None:
        extras["tenants"] = args.tenants
    if args.arrival_rate is not None:
        extras["arrival_rate"] = args.arrival_rate
    if args.storage_backend is not None:
        extras["storage_backend"] = args.storage_backend
    if args.checkpoint_every is not None:
        extras["checkpoint_every"] = args.checkpoint_every
    if args.rebalance:
        extras["rebalance"] = True
    if args.split_threshold is not None:
        extras["split_threshold"] = args.split_threshold
    if args.workers is not None:
        extras["workers"] = args.workers
    if args.max_inflight is not None:
        extras["max_inflight"] = args.max_inflight
    if args.tenant_rate is not None:
        extras["tenant_rate"] = args.tenant_rate
    if args.aggregate_ops:
        extras["aggregate_ops"] = tuple(
            op.strip() for op in args.aggregate_ops.split(",") if op.strip()
        )
    if extras == profile.extras:
        return profile
    return profile.with_overrides(extras=extras)


def results_dir() -> Path:
    """Where experiment/scenario text output is persisted.

    ``$REPRO_RESULTS_DIR`` when set, else ``results/`` under the current
    working directory (gitignored).  Output never lands in the source or
    test trees.
    """
    override = os.environ.get("REPRO_RESULTS_DIR", "").strip()
    return Path(override) if override else Path.cwd() / "results"


def _persist_result_text(experiment_id: str, text: str) -> Path | None:
    """Best-effort write of one result table to the results directory."""
    directory = results_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path
    except OSError:
        return None


def _run_scenario(args, profile) -> int:
    if args.scenario_ops is not None:
        if args.scenario_ops < 1:
            print("--scenario-ops must be >= 1", file=sys.stderr)
            return 2
        profile = profile.with_overrides(
            extras={**profile.extras, "scenario_ops": args.scenario_ops}
        )
    index_names = None
    if args.scenario_indices:
        index_names = tuple(
            name.strip() for name in args.scenario_indices.split(",") if name.strip()
        )
    start = time.perf_counter()
    try:
        result = run_scenario_sweep(profile, args.scenario, index_names=index_names)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    text = result.to_text()
    print(text)
    saved = _persist_result_text(result.experiment_id, text)
    print(
        f"  (scenario '{args.scenario}' completed in {elapsed:.1f}s "
        f"at profile '{profile.name}'"
        + (f"; table saved to {saved}" if saved else "")
        + ")"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.shards is not None and args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2

    if args.cache_blocks is not None and args.cache_blocks < 0:
        print("--cache-blocks must be >= 0", file=sys.stderr)
        return 2

    if args.aggregate_ops:
        requested_ops = [
            op.strip() for op in args.aggregate_ops.split(",") if op.strip()
        ]
        unknown_ops = [op for op in requested_ops if op not in AGGREGATE_OPS]
        if unknown_ops:
            print(
                f"unknown aggregate op(s): {', '.join(unknown_ops)}; "
                f"available: {', '.join(AGGREGATE_OPS)}",
                file=sys.stderr,
            )
            return 2

    if args.shared_pool_blocks is not None and args.shared_pool_blocks < 0:
        print("--shared-pool-blocks must be >= 0", file=sys.stderr)
        return 2

    if (args.cache_blocks or 0) > 0 and (args.shared_pool_blocks or 0) > 0:
        print("pass either --cache-blocks or --shared-pool-blocks, not both",
              file=sys.stderr)
        return 2

    if args.tenants is not None and args.tenants < 1:
        print("--tenants must be >= 1", file=sys.stderr)
        return 2

    if args.arrival_rate is not None and args.arrival_rate <= 0:
        print("--arrival-rate must be positive", file=sys.stderr)
        return 2

    if (args.tenants is not None or args.arrival_rate is not None) and not args.scenario:
        print("--tenants/--arrival-rate require --scenario", file=sys.stderr)
        return 2

    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        print("--checkpoint-every must be >= 1", file=sys.stderr)
        return 2

    if (
        args.storage_backend is not None or args.checkpoint_every is not None
    ) and not args.scenario:
        print("--storage-backend/--checkpoint-every require --scenario", file=sys.stderr)
        return 2

    if args.split_threshold is not None and not (0.0 < args.split_threshold <= 1.0):
        print("--split-threshold must be in (0, 1]", file=sys.stderr)
        return 2

    if args.rebalance or args.split_threshold is not None:
        if not args.scenario:
            print("--rebalance/--split-threshold require --scenario", file=sys.stderr)
            return 2
        if (args.shards or 0) < 2:
            print("--rebalance requires --shards >= 2", file=sys.stderr)
            return 2
        if args.split_threshold is not None and not args.rebalance:
            print("--split-threshold requires --rebalance", file=sys.stderr)
            return 2

    if args.workers is not None and args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2

    if args.max_inflight is not None and args.max_inflight < 1:
        print("--max-inflight must be >= 1", file=sys.stderr)
        return 2

    if args.tenant_rate is not None and args.tenant_rate <= 0:
        print("--tenant-rate must be positive", file=sys.stderr)
        return 2

    if args.workers is not None:
        if not args.scenario:
            print("--workers requires --scenario", file=sys.stderr)
            return 2
        if (args.shards or 0) < 2:
            print("--workers requires --shards >= 2", file=sys.stderr)
            return 2
        if args.rebalance:
            print("--workers cannot be combined with --rebalance", file=sys.stderr)
            return 2
        if args.storage_backend == "disk":
            print(
                "--workers cannot be combined with --storage-backend disk",
                file=sys.stderr,
            )
            return 2
        if (args.shared_pool_blocks or 0) > 0:
            print(
                "--workers cannot be combined with --shared-pool-blocks "
                "(shared pools are in-process; use per-shard --cache-blocks)",
                file=sys.stderr,
            )
            return 2

    if args.max_inflight is not None and args.workers is None:
        print("--max-inflight requires --workers", file=sys.stderr)
        return 2

    if args.tenant_rate is not None and not args.scenario:
        print("--tenant-rate requires --scenario", file=sys.stderr)
        return 2

    if args.scenario:
        if args.experiments:
            print(
                "--scenario cannot be combined with experiment ids; "
                "run them as separate invocations",
                file=sys.stderr,
            )
            return 2
        profile = _apply_profile_overrides(args, profile_by_name(args.profile))
        return _run_scenario(args, profile)

    if args.list or not args.experiments:
        print("Available experiments:")
        for experiment_id in sorted(EXPERIMENT_REGISTRY):
            spec = EXPERIMENT_REGISTRY[experiment_id]
            print(f"  {experiment_id:16s} {spec.title}  [{spec.paper_reference}]")
        return 0

    requested = list(args.experiments)
    if len(requested) == 1 and requested[0].lower() == "all":
        requested = sorted(EXPERIMENT_REGISTRY)

    unknown = [name for name in requested if name not in EXPERIMENT_REGISTRY]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENT_REGISTRY))}", file=sys.stderr)
        return 2

    profile = _apply_profile_overrides(args, profile_by_name(args.profile))
    for name in requested:
        spec = EXPERIMENT_REGISTRY[name]
        start = time.perf_counter()
        result = spec.run(profile)
        elapsed = time.perf_counter() - start
        text = result.to_text()
        print(text)
        saved = _persist_result_text(name, text)
        print(
            f"  ({name} completed in {elapsed:.1f}s at profile '{profile.name}'"
            + (f"; table saved to {saved}" if saved else "")
            + ")"
        )
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
