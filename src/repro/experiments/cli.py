"""Command-line entry point: ``repro-experiment <id>|all [--profile tiny|small|paper]``.

Examples::

    repro-experiment --list
    repro-experiment fig6
    repro-experiment table3 fig10 --profile small
    repro-experiment all --profile tiny
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.experiments import EXPERIMENT_REGISTRY, profile_by_name


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate tables/figures of 'Effectively Learning Spatial Indices'",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig6 table3), or 'all'",
    )
    parser.add_argument(
        "--profile",
        default="tiny",
        choices=("tiny", "small", "paper"),
        help="workload scale (default: tiny)",
    )
    parser.add_argument(
        "--execution",
        default="sequential",
        choices=("sequential", "batched", "threaded"),
        help="query execution mode: per-query loop (default), the batched "
        "query engine, or a thread-pooled per-query loop",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("Available experiments:")
        for experiment_id in sorted(EXPERIMENT_REGISTRY):
            spec = EXPERIMENT_REGISTRY[experiment_id]
            print(f"  {experiment_id:16s} {spec.title}  [{spec.paper_reference}]")
        return 0

    requested = list(args.experiments)
    if len(requested) == 1 and requested[0].lower() == "all":
        requested = sorted(EXPERIMENT_REGISTRY)

    unknown = [name for name in requested if name not in EXPERIMENT_REGISTRY]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENT_REGISTRY))}", file=sys.stderr)
        return 2

    profile = profile_by_name(args.profile)
    if args.execution != "sequential":
        profile = profile.with_overrides(
            extras={**profile.extras, "execution": args.execution}
        )
    for name in requested:
        spec = EXPERIMENT_REGISTRY[name]
        start = time.perf_counter()
        result = spec.run(profile)
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"  ({name} completed in {elapsed:.1f}s at profile '{profile.name}')")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
