"""Sharded-serving sweeps: batched throughput as the shard count grows.

The ``sharded-scaling`` experiment (beyond the paper; ROADMAP: sharding)
builds the same data set once per configuration — a single index, then
sharded deployments at increasing shard counts under each sharding policy —
and pushes identical batched point/window workloads through the
:class:`~repro.engine.BatchQueryEngine` (single) or the shard-grouping
:class:`~repro.sharding.ShardedBatchEngine` (sharded).  Reported per row:
queries/second for both query types, block accesses per point query, the
per-shard point balance, and how many shards the window batch actually
touched (the data-skipping effect of partition-aware routing).

The CLI's ``--shards``/``--sharding-policy`` flags select a single
configuration; without them the experiment sweeps shard counts 1/2/4/8
under every policy.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.analytics.ops import QueryRequest
from repro.engine import BatchQueryEngine
from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points
from repro.evaluation.runner import SuiteConfig
from repro.experiments.scenario_sweeps import build_sharded_index
from repro.queries import generate_point_queries, generate_window_queries
from repro.sharding import (
    SHARDING_POLICY_NAMES,
    ShardedBatchEngine,
    shard_index_factory,
)

__all__ = ["run_sharded_scaling"]

#: shard counts swept when the CLI does not pin one
DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)

#: wrapped index kind driving the sweep (the paper's headline index)
WRAPPED_KIND = "RSMI"


@register_experiment(
    "sharded-scaling",
    "Sharded serving: batched throughput and shard locality vs shard count",
    "beyond the paper",
)
def run_sharded_scaling(profile: ScaleProfile) -> ExperimentResult:
    """Measure batched query throughput across shard counts and policies."""
    points = make_points(profile)
    config = SuiteConfig(
        n_points=points.shape[0],
        distribution=profile.default_distribution,
        block_capacity=profile.block_capacity,
        partition_threshold=profile.partition_threshold,
        training_epochs=profile.training_epochs,
        seed=profile.seed,
    )
    point_queries = generate_point_queries(points, profile.n_point_queries, seed=profile.seed + 31)
    windows = generate_window_queries(
        points,
        profile.n_window_queries,
        area_fraction=profile.default_window_area,
        seed=profile.seed + 32,
    )

    pinned = int(profile.extras.get("shards", 0))
    shard_counts = (1, pinned) if pinned > 1 else DEFAULT_SHARD_COUNTS
    pinned_policy: Optional[str] = profile.extras.get("sharding_policy")
    policies = (pinned_policy,) if pinned_policy else SHARDING_POLICY_NAMES

    rows: list[list] = []
    notes: list[str] = []
    for policy in policies:
        for n_shards in shard_counts:
            if n_shards == 1 and policy != policies[0]:
                continue  # the single-index baseline is policy-independent
            started = time.perf_counter()
            if n_shards == 1:
                factory = shard_index_factory(
                    WRAPPED_KIND,
                    block_capacity=config.block_capacity,
                    partition_threshold=config.partition_threshold,
                    training=config.training_config(),
                    seed=config.seed,
                )
                index = factory(points, 0)
                engine = BatchQueryEngine(index)
                label = "single"
            else:
                index = build_sharded_index(points, WRAPPED_KIND, n_shards, policy, config)
                engine = ShardedBatchEngine(index)
                label = policy
            build_s = time.perf_counter() - started

            started = time.perf_counter()
            point_result = engine.execute(QueryRequest.for_points(point_queries))
            point_s = max(time.perf_counter() - started, 1e-9)

            started = time.perf_counter()
            window_result = engine.execute(QueryRequest.for_windows(windows))
            window_s = max(time.perf_counter() - started, 1e-9)

            touched = (
                len(window_result.access.per_shard_logical_reads)
                if window_result.access.per_shard_logical_reads is not None
                else 1
            )
            balance = (
                max(index.per_shard_points()) if n_shards > 1 else points.shape[0]
            )
            rows.append(
                [
                    label,
                    n_shards,
                    round(build_s, 2),
                    round(len(point_queries) / point_s, 1),
                    round(len(windows) / window_s, 1),
                    round((point_result.access.logical_reads or 0) / max(len(point_queries), 1), 2),
                    balance,
                    touched,
                ]
            )
    notes.append(
        f"{points.shape[0]} points ({profile.default_distribution}), "
        f"{len(point_queries)} point / {len(windows)} window queries per batch, "
        f"wrapped index: {WRAPPED_KIND}"
    )
    notes.append(
        "touched_shards counts shards with nonzero block accesses over the whole "
        "window batch; single-index rows count as 1"
    )
    return ExperimentResult(
        experiment_id="sharded-scaling",
        title="Sharded serving scaling sweep",
        paper_reference="beyond the paper (ROADMAP: sharding)",
        header=[
            "policy",
            "n_shards",
            "build_s",
            "point_qps",
            "window_qps",
            "blocks_per_point_query",
            "max_shard_points",
            "touched_shards",
        ],
        rows=rows,
        notes=notes,
    )
