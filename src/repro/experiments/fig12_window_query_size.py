"""Figure 12 — window query cost and recall vs. query window size.

The paper varies the window area from 0.0006 % to 0.16 % of the data space;
larger windows contain more result points and cost more for every index, while
RSMI stays fastest with recall above ~0.9.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points, make_suite, run_window_workload

HEADER = ["window_area_fraction", "index", "query_time_ms", "block_accesses", "recall"]


@register_experiment(
    "fig12",
    "Window query cost and recall vs. query window size",
    "Figure 12",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    points = make_points(profile)
    adapters, _ = make_suite(points, profile)
    rows: list[list] = []
    for area_fraction in profile.window_area_fractions:
        metrics = run_window_workload(adapters, points, profile, area_fraction=area_fraction)
        for name in profile.index_names:
            rows.append(
                [
                    area_fraction,
                    name,
                    metrics[name].avg_time_ms,
                    metrics[name].avg_block_accesses,
                    metrics[name].recall,
                ]
            )

    return ExperimentResult(
        experiment_id="fig12",
        title="Window query cost and recall vs. query window size",
        paper_reference="Figure 12",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, n={points.shape[0]}, "
            f"distribution={profile.default_distribution}",
            "expected shape: cost grows with window size for every index; RSMI fastest, "
            "recall stays high",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
