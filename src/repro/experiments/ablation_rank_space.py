"""Ablation — rank-space ordering vs. raw-coordinate Z-ordering.

Section 3.1 of the paper motivates the rank-space transform by the much more
even gaps it produces between consecutive curve values (Figures 2 and 3),
which makes the CDF easier to learn.  This ablation quantifies the claim: it
orders the same point set both ways, reports the gap statistics, and trains a
single leaf-style MLP on each ordering to compare the resulting prediction
error bounds.
"""

from __future__ import annotations

import numpy as np

from repro.core import RSMIConfig
from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points
from repro.nn import TrainingConfig
from repro.rank_space import order_points_by_curve

HEADER = [
    "ordering",
    "gap_variance",
    "max_gap",
    "min_gap",
    "model_err_l",
    "model_err_a",
]


def _leaf_error_for_order(ordered: np.ndarray, profile: ScaleProfile) -> tuple[int, int]:
    """Train one coordinates -> block-id MLP over an already-ordered point set.

    Unlike :class:`~repro.core.leaf_model.LeafModel` (which always applies the
    rank-space ordering itself), this helper respects the ordering under test:
    the i-th point of ``ordered`` is assigned to block ``i // B`` and the model
    is trained on that mapping, so the two ablation rows genuinely compare the
    learnability of the two orderings.
    """
    from repro.nn import MinMaxScaler, MLPRegressor, train_regressor

    block_capacity = profile.block_capacity
    n = ordered.shape[0]
    n_blocks = int(np.ceil(n / block_capacity))
    local_block = np.arange(n) // block_capacity
    denominator = max(n_blocks - 1, 1)
    targets = local_block / denominator

    config = RSMIConfig(
        block_capacity=block_capacity,
        partition_threshold=max(n, block_capacity),
        training=TrainingConfig(epochs=profile.training_epochs, seed=profile.seed),
        seed=profile.seed,
    )
    scaler = MinMaxScaler().fit(ordered)
    model = MLPRegressor(
        2,
        (config.hidden_width_for(n_blocks),),
        activation="sigmoid",
        rng=np.random.default_rng(profile.seed),
    )
    train_regressor(model, scaler.transform(ordered), targets, config.training)
    predictions = np.clip(
        np.rint(model.predict(scaler.transform(ordered)) * denominator), 0, n_blocks - 1
    ).astype(np.int64)
    signed = local_block - predictions
    return int(max((-signed).max(initial=0), 0)), int(max(signed.max(initial=0), 0))


@register_experiment(
    "ablation-rank",
    "Rank-space ordering vs. raw Z-ordering (gap variance and model error)",
    "Section 3.1, Figures 2-3",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    # cap the sample so the single-leaf models stay quick to train
    n = min(profile.n_points, 4 * profile.partition_threshold)
    points = make_points(profile, n_points=n)

    rows: list[list] = []
    for label, use_rank_space in (("rank-space", True), ("raw-coordinates", False)):
        ordering = order_points_by_curve(points, curve="z", use_rank_space=use_rank_space)
        gaps = ordering.gap_statistics()
        err_below, err_above = _leaf_error_for_order(ordering.sorted_points, profile)
        rows.append(
            [label, gaps["variance"], gaps["max_gap"], gaps["min_gap"], err_below, err_above]
        )

    return ExperimentResult(
        experiment_id="ablation-rank",
        title="Rank-space ordering vs. raw Z-ordering",
        paper_reference="Section 3.1, Figures 2-3",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, n={n}, distribution={profile.default_distribution}",
            "expected shape: the rank-space ordering has a (much) smaller curve-value gap "
            "variance, which is the paper's motivation for using it",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
