"""Cache sweep: physical block reads vs cache size under hotspot traffic.

The paper's cost metric — logical block accesses — is what the algorithms
touch; a deployment's dollar cost is the *physical* reads that survive the
buffer pool.  This experiment replays the ``cache-hotspot`` scenario (90+%
of operations hammering a small region) against a selection of indices with
a :class:`~repro.storage.PageCache` of varying capacity in front, and
reports the logical/physical split per operation plus the hit ratio.

Cache capacities are expressed as fractions of the data's block count
(``n / B``), so the sweep reads the same at every profile scale; the zero
row is the uncached baseline the reductions are measured against.  Answers
are independent of the cache by construction (asserted continuously by the
differential tests in ``tests/test_cache_differential.py``); this sweep is
about the cost curve only.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.evaluation.adapters import build_index_suite
from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points
from repro.nn import TrainingConfig
from repro.storage import make_page_cache
from repro.workloads import ScenarioRunner, scenario_by_name

__all__ = ["CACHE_SWEEP_INDEX_NAMES", "CACHE_FRACTIONS", "run_cache_sweep"]

#: indices the sweep drives by default: one per access-path family — the
#: grid directory, a tree descent, and the two learned block layouts
CACHE_SWEEP_INDEX_NAMES = ("Grid", "KDB", "ZM", "RSMI")

#: cache capacity as a fraction of the data's block count (0 = uncached)
CACHE_FRACTIONS = (0.0, 0.05, 0.10, 0.25)


def run_cache_sweep(
    profile: ScaleProfile,
    index_names: Optional[Sequence[str]] = None,
    fractions: Sequence[float] = CACHE_FRACTIONS,
    policy: Optional[str] = None,
) -> ExperimentResult:
    """One row per (index, cache size): logical/physical reads and hit ratio."""
    names = tuple(index_names) if index_names is not None else CACHE_SWEEP_INDEX_NAMES
    policy = (
        policy if policy is not None else profile.extras.get("cache_policy", "lru")
    )
    points = make_points(profile)
    n_data_blocks = max(1, points.shape[0] // profile.block_capacity)
    spec = scenario_by_name("cache-hotspot").with_overrides(
        n_ops=int(profile.extras.get("scenario_ops", max(300, profile.n_points // 5))),
        seed=profile.seed + 211,
        k=profile.default_k,
        window_area_fraction=profile.default_window_area,
    )
    spec = spec.with_overrides(snapshot_every=max(1, spec.n_ops // 2))

    rows: list[list] = []
    notes: list[str] = [
        f"scenario 'cache-hotspot': {spec.n_ops} ops, ~{n_data_blocks} data blocks, "
        f"policy={policy}; cache sizes are fractions of the block count"
    ]
    for name in names:
        uncached_physical_per_op: Optional[float] = None
        for fraction in fractions:
            cache_blocks = max(1, int(fraction * n_data_blocks)) if fraction > 0 else 0
            suite = build_index_suite(
                points,
                index_names=[name],
                block_capacity=profile.block_capacity,
                partition_threshold=profile.partition_threshold,
                training=TrainingConfig(epochs=profile.training_epochs, seed=profile.seed),
                seed=profile.seed,
            )
            index = suite[name]
            if cache_blocks > 0:
                index.attach_cache(make_page_cache(cache_blocks, policy))
            result = ScenarioRunner(index, spec).run(points)
            logical_per_op = result.total_block_accesses / result.n_ops
            physical_per_op = result.total_physical_accesses / result.n_ops
            if fraction == 0.0:
                uncached_physical_per_op = physical_per_op
            reduction = (
                uncached_physical_per_op / physical_per_op
                if uncached_physical_per_op and physical_per_op > 0
                else 1.0
            )
            rows.append(
                [
                    name,
                    cache_blocks,
                    round(logical_per_op, 2),
                    round(physical_per_op, 2),
                    round(result.cache_hit_ratio, 3),
                    round(reduction, 2),
                ]
            )
    return ExperimentResult(
        experiment_id="cache-sweep",
        title="Block cache sweep on hotspot traffic (logical vs physical reads)",
        paper_reference="beyond the paper (ROADMAP: per-shard block caches)",
        header=[
            "index",
            "cache_blocks",
            "logical_reads_per_op",
            "physical_reads_per_op",
            "hit_ratio",
            "physical_reduction",
        ],
        rows=rows,
        notes=notes,
    )


register_experiment(
    "cache-sweep",
    "Physical block reads vs cache size under hotspot traffic",
    "beyond the paper",
)(run_cache_sweep)
