"""Table 4 — prediction error bounds of ZM and RSMI per data distribution.

The paper reports the maximum under-/over-prediction (``err_l``, ``err_a``),
in blocks, of the two learned indices.  ZM's errors are orders of magnitude
larger because the Z-values of raw coordinates leave large, uneven gaps in
the learned CDF, whereas RSMI's rank-space ordering and learned partitioning
keep every leaf model's error within tens of blocks.
"""

from __future__ import annotations

from repro.baselines import ZMConfig, ZMIndex
from repro.core import RSMI, RSMIConfig
from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points
from repro.nn import TrainingConfig

HEADER = ["distribution", "index", "err_l_blocks", "err_a_blocks"]


@register_experiment(
    "table4",
    "Prediction error bounds (err_l, err_a) of ZM and RSMI",
    "Table 4",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    training = TrainingConfig(epochs=profile.training_epochs, seed=profile.seed)
    rows: list[list] = []
    for distribution in profile.distributions:
        points = make_points(profile, distribution=distribution)

        zm = ZMIndex(
            ZMConfig(block_capacity=profile.block_capacity, training=training, seed=profile.seed)
        ).build(points)
        zm_below, zm_above = zm.error_bounds()
        rows.append([distribution, "ZM", zm_below, zm_above])

        rsmi = RSMI(
            RSMIConfig(
                block_capacity=profile.block_capacity,
                partition_threshold=profile.partition_threshold,
                training=training,
                seed=profile.seed,
            )
        ).build(points)
        rsmi_below, rsmi_above = rsmi.error_bounds()
        rows.append([distribution, "RSMI", rsmi_below, rsmi_above])

    return ExperimentResult(
        experiment_id="table4",
        title="Prediction error bounds (err_l, err_a) of ZM and RSMI",
        paper_reference="Table 4",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, n={profile.n_points}, B={profile.block_capacity}",
            "expected shape: ZM error bounds are one or more orders of magnitude "
            "larger than RSMI's on every distribution",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
