"""Figure 14 — kNN query cost and recall vs. data distribution.

RSMI (with its expansion-based approximate algorithm) is the fastest; the
tree indices use the exact best-first algorithm; ZM reuses RSMI's expansion
strategy but pays for its weaker window queries.  RSMI recall stays above
~0.9.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points, make_suite, run_knn_workload

HEADER = ["distribution", "index", "query_time_ms", "block_accesses", "recall"]


@register_experiment(
    "fig14",
    "kNN query cost and recall vs. data distribution",
    "Figure 14",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    rows: list[list] = []
    for distribution in profile.distributions:
        points = make_points(profile, distribution=distribution)
        adapters, _ = make_suite(points, profile, distribution=distribution)
        metrics = run_knn_workload(adapters, points, profile)
        for name in profile.index_names:
            rows.append(
                [
                    distribution,
                    name,
                    metrics[name].avg_time_ms,
                    metrics[name].avg_block_accesses,
                    metrics[name].recall,
                ]
            )

    return ExperimentResult(
        experiment_id="fig14",
        title="kNN query cost and recall vs. data distribution",
        paper_reference="Figure 14",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, n={profile.n_points}, k={profile.default_k}",
            "expected shape: RSMI fastest with recall >~0.9; exact indices have recall 1.0",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
