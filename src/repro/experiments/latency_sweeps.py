"""Latency sweep: sojourn percentiles vs offered load, closed vs open loop.

The paper's block-access metric is load-independent; what users feel is not.
This experiment replays the ``latency-hotspot`` scenario against each index
first **closed-loop** (each operation issued as the previous completes, so
sojourn == service and the measured throughput is the server's capacity μ)
and then **open-loop** at offered loads expressed as fractions of that
measured μ.  Below saturation the sojourn percentiles track the service
percentiles; past it the virtual queue grows and p99 separates — the
hockey-stick every serving system shows, reproduced here in a
single-threaded, fully deterministic replay (arrival schedules are virtual;
only service times are wall-clock).

Offered loads are relative to each index's own measured capacity, so the
sweep reads the same on any machine and at every profile scale.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.evaluation.adapters import build_index_suite
from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points
from repro.nn import TrainingConfig
from repro.workloads import ScenarioRunner, scenario_by_name

__all__ = ["LATENCY_SWEEP_INDEX_NAMES", "LOAD_FRACTIONS", "run_latency_sweep"]

#: indices the sweep drives by default: one tree descent, one learned layout
LATENCY_SWEEP_INDEX_NAMES = ("KDB", "RSMI")

#: open-loop offered load as a fraction of the measured closed-loop capacity
LOAD_FRACTIONS = (0.5, 0.9, 1.5)


def run_latency_sweep(
    profile: ScaleProfile,
    index_names: Optional[Sequence[str]] = None,
    fractions: Sequence[float] = LOAD_FRACTIONS,
) -> ExperimentResult:
    """One row per (index, arrival mode): sojourn p50/p95/p99 and capacity."""
    names = tuple(index_names) if index_names is not None else LATENCY_SWEEP_INDEX_NAMES
    points = make_points(profile)
    base = scenario_by_name("latency-hotspot").with_overrides(
        n_ops=int(profile.extras.get("scenario_ops", max(300, profile.n_points // 5))),
        seed=profile.seed + 307,
        k=profile.default_k,
        window_area_fraction=profile.default_window_area,
    )
    base = base.with_overrides(snapshot_every=max(1, base.n_ops // 2))

    rows: list[list] = []
    notes: list[str] = [
        f"scenario 'latency-hotspot': {base.n_ops} ops; open-loop rates are "
        f"fractions of each index's measured closed-loop capacity"
    ]

    def build(name: str):
        suite = build_index_suite(
            points,
            index_names=[name],
            block_capacity=profile.block_capacity,
            partition_threshold=profile.partition_threshold,
            training=TrainingConfig(epochs=profile.training_epochs, seed=profile.seed),
            seed=profile.seed,
        )
        return suite[name]

    for name in names:
        closed = ScenarioRunner(
            build(name), base.with_overrides(arrival_model="closed-loop")
        ).run(points)
        capacity = closed.ops_per_s
        rows.append(
            [
                name,
                "closed-loop",
                "-",
                round(capacity, 1),
                round(closed.latency.p50_ms, 3),
                round(closed.latency.p95_ms, 3),
                round(closed.latency.p99_ms, 3),
                round(closed.service_latency.p99_ms, 3),
            ]
        )
        for fraction in fractions:
            rate = max(capacity * fraction, 1e-6)
            open_spec = base.with_overrides(
                arrival_model="open-loop", arrival_rate=rate
            )
            result = ScenarioRunner(build(name), open_spec).run(points)
            rows.append(
                [
                    name,
                    "open-loop",
                    round(fraction, 2),
                    round(result.ops_per_s, 1),
                    round(result.latency.p50_ms, 3),
                    round(result.latency.p95_ms, 3),
                    round(result.latency.p99_ms, 3),
                    round(result.service_latency.p99_ms, 3),
                ]
            )
        notes.append(
            f"{name}: measured closed-loop capacity {capacity:.0f} ops/s; "
            f"sojourn p99 at 1.5x offered load includes virtual queueing delay"
        )
    return ExperimentResult(
        experiment_id="latency-sweep",
        title="Sojourn percentiles vs offered load (closed vs open loop)",
        paper_reference="beyond the paper (ROADMAP: arrival-rate pacing)",
        header=[
            "index",
            "arrival",
            "load_fraction",
            "ops_per_s",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "service_p99_ms",
        ],
        rows=rows,
        notes=notes,
    )


register_experiment(
    "latency-sweep",
    "Sojourn latency percentiles vs offered load (closed vs open loop)",
    "beyond the paper",
)(run_latency_sweep)
