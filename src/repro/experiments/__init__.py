"""Experiment modules — one per table/figure of the paper's evaluation.

Importing this package registers every experiment in
:data:`~repro.experiments.base.EXPERIMENT_REGISTRY`.  Run them through the
``repro-experiment`` console script, by calling
``EXPERIMENT_REGISTRY["fig6"].run("tiny")``, or through the pytest benchmarks
in ``benchmarks/``.
"""

from repro.experiments.base import (
    EXPERIMENT_REGISTRY,
    ExperimentResult,
    ExperimentSpec,
    iter_experiments,
    register_experiment,
)
from repro.experiments.profiles import PROFILES, ScaleProfile, profile_by_name

# importing the modules registers their experiments
from repro.experiments import (  # noqa: F401  (imported for registration side effects)
    ablation_curve_choice,
    ablation_rank_space,
    analytics_sweeps,
    cache_sweeps,
    fig6_point_query_distribution,
    fig7_size_build_distribution,
    fig8_point_query_size,
    fig9_size_build_size,
    fig10_window_distribution,
    fig11_window_size,
    fig12_window_query_size,
    fig13_window_aspect,
    fig14_knn_distribution,
    fig15_knn_size,
    fig16_knn_k,
    fig17_insertions,
    fig18_window_after_insert,
    fig19_knn_after_insert,
    latency_sweeps,
    parallel_sweeps,
    rebalance_sweeps,
    scenario_sweeps,
    sharded_sweeps,
    table3_partition_threshold,
    table4_error_bounds,
)

__all__ = [
    "EXPERIMENT_REGISTRY",
    "ExperimentResult",
    "ExperimentSpec",
    "ScaleProfile",
    "PROFILES",
    "profile_by_name",
    "iter_experiments",
    "register_experiment",
]
