"""Figure 6 — point query cost vs. data distribution.

For each of the five data distributions the paper reports the average point
query response time (Fig. 6a) and number of block accesses (Fig. 6b) of all
six index structures.  The expected shape: RSMI achieves the lowest (or
near-lowest) time and far fewer block accesses than Grid and ZM; Grid is
competitive on uniform data only.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points, make_suite, run_point_workload

HEADER = ["distribution", "index", "query_time_us", "block_accesses"]

#: RSMIa answers point queries identically to RSMI, so Figure 6 omits it.
POINT_QUERY_INDICES = ("Grid", "HRR", "KDB", "RR*", "RSMI", "ZM")


@register_experiment(
    "fig6",
    "Point query cost vs. data distribution",
    "Figure 6",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    index_names = tuple(n for n in profile.index_names if n in POINT_QUERY_INDICES)
    rows: list[list] = []
    for distribution in profile.distributions:
        points = make_points(profile, distribution=distribution)
        adapters, _ = make_suite(points, profile, distribution=distribution, index_names=index_names)
        metrics = run_point_workload(adapters, points, profile)
        for name in index_names:
            rows.append(
                [
                    distribution,
                    name,
                    metrics[name].avg_time_us,
                    metrics[name].avg_block_accesses,
                ]
            )

    return ExperimentResult(
        experiment_id="fig6",
        title="Point query cost vs. data distribution",
        paper_reference="Figure 6",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, n={profile.n_points}, B={profile.block_capacity}",
            "expected shape: RSMI has the fewest block accesses on skewed/real-like data; "
            "Grid is only competitive on uniform data",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
