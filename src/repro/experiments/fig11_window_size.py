"""Figure 11 — window query cost and recall vs. data set size (Skewed data)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points, make_suite, run_window_workload

HEADER = ["n_points", "index", "query_time_ms", "block_accesses", "recall"]


@register_experiment(
    "fig11",
    "Window query cost and recall vs. data set size",
    "Figure 11",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    rows: list[list] = []
    for n_points in profile.size_sweep:
        points = make_points(profile, n_points=n_points)
        adapters, _ = make_suite(points, profile)
        metrics = run_window_workload(adapters, points, profile)
        for name in profile.index_names:
            rows.append(
                [
                    n_points,
                    name,
                    metrics[name].avg_time_ms,
                    metrics[name].avg_block_accesses,
                    metrics[name].recall,
                ]
            )

    return ExperimentResult(
        experiment_id="fig11",
        title="Window query cost and recall vs. data set size",
        paper_reference="Figure 11",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, distribution={profile.default_distribution}",
            "expected shape: query cost grows with n; RSMI fastest at larger n with recall "
            "that decreases only slightly",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
