"""Table 3 — impact of the RSMI partition threshold ``N``.

The paper varies ``N`` from 2 500 to 40 000 and reports construction time,
index height, index size, average point-query block accesses and point-query
time.  Larger ``N`` gives fewer, larger leaf models: faster construction and
a smaller structure, but less accurate leaf predictions (more block accesses).
"""

from __future__ import annotations

import time

from repro.core import RSMI, RSMIConfig
from repro.evaluation.adapters import RSMIAdapter
from repro.evaluation.runner import measure_point_queries
from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import execution_mode, make_points
from repro.nn import TrainingConfig
from repro.queries import generate_point_queries

HEADER = [
    "N",
    "construction_time_s",
    "height",
    "index_size_mb",
    "point_query_block_accesses",
    "point_query_time_us",
]


@register_experiment(
    "table3",
    "Impact of the RSMI partition threshold N",
    "Table 3",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    points = make_points(profile)
    queries = generate_point_queries(points, profile.n_point_queries, seed=profile.seed + 11)
    training = TrainingConfig(epochs=profile.training_epochs, seed=profile.seed)

    rows: list[list] = []
    for threshold in profile.threshold_sweep:
        config = RSMIConfig(
            block_capacity=profile.block_capacity,
            partition_threshold=max(threshold, profile.block_capacity),
            training=training,
            seed=profile.seed,
        )
        start = time.perf_counter()
        index = RSMI(config).build(points)
        build_time = time.perf_counter() - start

        adapter = RSMIAdapter(index)
        metrics = measure_point_queries(adapter, queries, execution=execution_mode(profile))
        rows.append(
            [
                threshold,
                build_time,
                index.height,
                index.size_bytes() / (1024 * 1024),
                metrics.avg_block_accesses,
                metrics.avg_time_us,
            ]
        )

    return ExperimentResult(
        experiment_id="table3",
        title="Impact of the RSMI partition threshold N",
        paper_reference="Table 3",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, n={points.shape[0]}, B={profile.block_capacity}, "
            f"distribution={profile.default_distribution}",
            "expected shape: construction time / height / size fall as N grows, "
            "block accesses rise, query time has a minimum at an intermediate N",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
