"""Scenario sweeps: mixed read/write workloads the paper never measures.

Every preset of :data:`repro.workloads.SCENARIO_PRESETS` is registered as an
experiment (``scenario-hotspot``, ``scenario-drifting``, ...) that replays
the scenario's operation stream against each configured index through the
:class:`~repro.workloads.runner.ScenarioRunner` and reports the periodic
:class:`~repro.workloads.runner.ScenarioSnapshot` series — throughput, block
accesses per operation, recall against the shadow oracle, and overflow-chain
growth.  The CLI exposes the same sweeps directly via ``--scenario <name>``.

Unlike the static sweeps, every index is built *fresh* per scenario run (the
stream mutates it), and the shadow oracle replays the identical stream so
answer agreement is asserted while measuring — the experiment doubles as a
differential correctness check.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.evaluation.adapters import build_index_suite
from repro.evaluation.runner import SuiteConfig
from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import execution_mode, make_points
from repro.sharding import EXACT_KINDS, ShardedSpatialIndex, shard_index_factory
from repro.storage import (
    STORAGE_BACKENDS,
    DurableIndex,
    SharedBufferPool,
    make_page_cache,
    storage_root,
)
from repro.workloads import (
    SCENARIO_PRESETS,
    MultiTenantOracle,
    OracleIndex,
    ScenarioRunner,
    ScenarioSpec,
    generate_operations,
    generate_tenant_operations,
    scenario_by_name,
)

__all__ = [
    "SCENARIO_INDEX_NAMES",
    "EXACT_RESULT_INDICES",
    "scenario_spec_for_profile",
    "build_sharded_index",
    "run_scenario_sweep",
]

#: indices a scenario sweep drives by default: RSMI plus the four baseline
#: families.  RSMIa is omitted only because it would re-train a second RSMI
#: (every name gets a fresh build here, since the stream mutates it); request
#: it explicitly via ``--scenario-indices`` to fuzz the exact query variants.
SCENARIO_INDEX_NAMES = ("Grid", "HRR", "KDB", "RR*", "ZM", "RSMI")

#: deprecated: the name set survives for older tests, but harness code now
#: reads the ``supports_exact_results`` capability flag off the index itself
#: (string-matching names breaks down for wrappers, shards and engines)
EXACT_RESULT_INDICES = EXACT_KINDS

#: engine mode per CLI/profile execution override
_ENGINE_MODES = {"sequential": "sequential", "batched": "auto", "threaded": "threaded"}


def scenario_spec_for_profile(
    profile: ScaleProfile, scenario: str | ScenarioSpec
) -> ScenarioSpec:
    """Scale a (named) scenario to a profile: op budget, k, window size, seed.

    ``profile.extras["scenario_ops"]`` overrides the operation budget (the
    CLI's ``--scenario-ops``); otherwise it tracks the profile's data size.
    """
    spec = scenario_by_name(scenario) if isinstance(scenario, str) else scenario
    n_ops = int(profile.extras.get("scenario_ops", max(200, profile.n_points // 5)))
    return spec.with_overrides(
        n_ops=n_ops,
        snapshot_every=max(1, n_ops // 4),
        seed=profile.seed + 101,
        k=profile.default_k,
        window_area_fraction=profile.default_window_area,
    )


def build_sharded_index(
    points,
    kind: str,
    n_shards: int,
    policy: str,
    config: SuiteConfig,
) -> ShardedSpatialIndex:
    """A sharded index over ``points`` wrapping ``kind`` per shard.

    The RSMI partition threshold is scaled to the expected per-shard
    population so per-shard hierarchies keep the configured depth.
    """
    factory = shard_index_factory(
        kind,
        block_capacity=config.block_capacity,
        partition_threshold=max(config.block_capacity, config.partition_threshold // n_shards),
        training=config.training_config(),
        seed=config.seed,
    )
    return ShardedSpatialIndex(factory, n_shards=n_shards, policy=policy).build(points)


def run_scenario_sweep(
    profile: ScaleProfile,
    scenario: str | ScenarioSpec,
    index_names: Optional[Sequence[str]] = None,
    check: bool = True,
    shards: Optional[int] = None,
    sharding_policy: Optional[str] = None,
    cache_blocks: Optional[int] = None,
    cache_policy: Optional[str] = None,
    shared_pool_blocks: Optional[int] = None,
    pool_admission: Optional[str] = None,
    tenants: Optional[int] = None,
    arrival_rate: Optional[float] = None,
    storage_backend: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    rebalance: Optional[bool] = None,
    split_threshold: Optional[float] = None,
    workers: Optional[int] = None,
    max_inflight: Optional[int] = None,
    tenant_rate: Optional[float] = None,
) -> ExperimentResult:
    """Replay one scenario against every index; one row per snapshot.

    ``shards``/``sharding_policy`` (or the profile extras of the same
    names, which the CLI's ``--shards``/``--sharding-policy`` flags set)
    wrap every index into a :class:`~repro.sharding.ShardedSpatialIndex`,
    so the oracle shadow validates the *sharded* answers under churn.

    ``cache_blocks``/``cache_policy`` (or the same-named profile extras,
    set by ``--cache-blocks``/``--cache-policy``) put a
    :class:`~repro.storage.PageCache` in front of every index — per shard
    when sharded — so the snapshot series reports the cache hit ratio while
    the oracle keeps asserting that answers are unchanged.

    ``shared_pool_blocks``/``pool_admission`` (CLI ``--shared-pool-blocks``/
    ``--pool-admission``, mutually exclusive with ``cache_blocks``) instead
    serve each index from one :class:`~repro.storage.SharedBufferPool` of
    that *total* capacity — shared across all shards when sharded — with
    TinyLFU admission by default, so the capacity follows the traffic and
    one-touch scans cannot flush the hot set.

    ``tenants`` (CLI ``--tenants``) splits the scenario into that many
    independently-seeded streams merged by virtual arrival time, each tenant
    shadowed by its own oracle; the notes then report per-tenant sojourn
    percentiles and the fairness index.  ``arrival_rate`` (CLI
    ``--arrival-rate``) overrides the spec's open-loop offered load.

    ``storage_backend`` (CLI ``--storage-backend``, default ``"memory"``)
    set to ``"disk"`` wraps every index in a
    :class:`~repro.storage.DurableIndex` rooted under
    :func:`~repro.storage.storage_root`: writes go through a WAL, the index
    checkpoints every ``checkpoint_every`` writes (CLI
    ``--checkpoint-every``), and blocks mirror into per-index block files —
    while the shadow oracle keeps asserting that answers are unchanged.

    ``workers`` (CLI ``--workers``, requires ``shards >= 2``) serves every
    sharded index through a process-pool
    :class:`~repro.serving.ParallelShardEngine` — shards grouped onto that
    many worker processes, writes routed to the owning worker — while the
    oracle keeps checking every answer.  Incompatible with ``rebalance``,
    ``storage_backend="disk"`` and ``shared_pool_blocks`` (worker processes
    own their shard state; see the buffer-pool module doc).  ``tenant_rate``
    (CLI ``--tenant-rate``) pre-filters the stream through per-tenant
    token-bucket admission on virtual arrival times (needs an open-loop
    stream), deterministically for index and oracle alike.  ``max_inflight``
    (CLI ``--max-inflight``, requires ``workers``) additionally runs the
    accepted stream through a *paced* :class:`~repro.serving.FrontDoor` on
    a second engine built from the same spec, reporting measured wall-clock
    sojourns, shed arrivals and adaptive batch sizes.
    """
    spec = scenario_spec_for_profile(profile, scenario)
    names = tuple(index_names) if index_names is not None else SCENARIO_INDEX_NAMES
    shards = shards if shards is not None else int(profile.extras.get("shards", 0))
    tenants = tenants if tenants is not None else int(profile.extras.get("tenants", 0))
    arrival_rate = (
        arrival_rate
        if arrival_rate is not None
        else profile.extras.get("arrival_rate")
    )
    if arrival_rate is not None:
        spec = spec.with_overrides(
            arrival_rate=float(arrival_rate), arrival_model="open-loop"
        )
    if tenants > 1:
        # tenant streams are merged by virtual arrival time, so the replay
        # must follow the same open-loop schedule the merge order came from
        spec = spec.with_overrides(arrival_model="open-loop")
    sharding_policy = (
        sharding_policy
        if sharding_policy is not None
        else profile.extras.get("sharding_policy", "grid")
    )
    cache_blocks = (
        cache_blocks
        if cache_blocks is not None
        else int(profile.extras.get("cache_blocks", 0))
    )
    cache_policy = (
        cache_policy
        if cache_policy is not None
        else profile.extras.get("cache_policy", "lru")
    )
    shared_pool_blocks = (
        shared_pool_blocks
        if shared_pool_blocks is not None
        else int(profile.extras.get("shared_pool_blocks", 0))
    )
    pool_admission = (
        pool_admission
        if pool_admission is not None
        else profile.extras.get("pool_admission", "tinylfu")
    )
    if cache_blocks > 0 and shared_pool_blocks > 0:
        raise ValueError("pass either cache_blocks or shared_pool_blocks, not both")
    storage_backend = (
        storage_backend
        if storage_backend is not None
        else profile.extras.get("storage_backend", "memory")
    )
    if storage_backend not in STORAGE_BACKENDS:
        raise ValueError(
            f"unknown storage backend {storage_backend!r}; "
            f"available: {STORAGE_BACKENDS}"
        )
    checkpoint_every = (
        checkpoint_every
        if checkpoint_every is not None
        else int(profile.extras.get("checkpoint_every", 256))
    )
    rebalance = (
        rebalance
        if rebalance is not None
        else bool(profile.extras.get("rebalance", False))
    )
    split_threshold = (
        split_threshold
        if split_threshold is not None
        else profile.extras.get("split_threshold")
    )
    if rebalance and shards <= 1:
        raise ValueError("--rebalance requires a sharded deployment (--shards >= 2)")
    workers = workers if workers is not None else int(profile.extras.get("workers", 0))
    max_inflight = (
        max_inflight
        if max_inflight is not None
        else profile.extras.get("max_inflight")
    )
    tenant_rate = (
        tenant_rate
        if tenant_rate is not None
        else profile.extras.get("tenant_rate")
    )
    if workers > 0:
        if shards <= 1:
            raise ValueError("--workers requires a sharded deployment (--shards >= 2)")
        if rebalance:
            raise ValueError(
                "--workers cannot be combined with --rebalance: worker "
                "processes own the shard state, the controller could only "
                "migrate the parent's copy"
            )
        if storage_backend == "disk":
            raise ValueError(
                "--workers cannot be combined with --storage-backend disk: "
                "the WAL/checkpoint wrapper lives in the parent process"
            )
        if shared_pool_blocks > 0:
            raise ValueError(
                "--workers cannot be combined with --shared-pool-blocks: a "
                "shared pool is an in-process structure (copies diverge "
                "across workers); per-shard --cache-blocks works"
            )
    if max_inflight is not None and workers <= 0:
        raise ValueError("--max-inflight requires --workers")
    if tenant_rate is not None and spec.arrival_model != "open-loop":
        raise ValueError(
            "--tenant-rate needs an open-loop stream (token buckets refill "
            "on virtual arrival times); pass --arrival-rate or pick an "
            "open-loop scenario"
        )
    points = make_points(profile)
    config = SuiteConfig(
        n_points=points.shape[0],
        distribution=profile.default_distribution,
        block_capacity=profile.block_capacity,
        partition_threshold=profile.partition_threshold,
        training_epochs=profile.training_epochs,
        seed=profile.seed,
    )
    engine_mode = _ENGINE_MODES[execution_mode(profile)]

    rows: list[list] = []
    notes: list[str] = []
    for name in names:
        # fresh build per index: the stream mutates the structure
        pool: Optional[SharedBufferPool] = None
        if shared_pool_blocks > 0:
            # one fresh pool per index keeps the per-index runs independent
            pool = SharedBufferPool(shared_pool_blocks, pool_admission)
        engine = None
        serving_spec = None
        if workers > 0:
            # deferred import: repro.serving pulls the sharding engines in
            from repro.serving import ParallelShardEngine, ServingSpec

            factory = shard_index_factory(
                name,
                block_capacity=config.block_capacity,
                partition_threshold=max(
                    config.block_capacity, config.partition_threshold // shards
                ),
                training=config.training_config(),
                seed=config.seed,
            )
            serving_spec = ServingSpec.from_points(
                factory,
                points,
                n_shards=shards,
                policy=sharding_policy,
                cache_blocks=cache_blocks if cache_blocks > 0 else None,
                cache_policy=cache_policy,
                name=name,
            )
            engine = ParallelShardEngine(
                serving_spec,
                n_workers=workers,
                mode=engine_mode,
                reorder=bool(profile.extras.get("batch_reorder", False)),
            )
            index = engine
        elif shards > 1:
            index = build_sharded_index(points, name, shards, sharding_policy, config)
            if cache_blocks > 0:
                index.attach_caches(cache_blocks, cache_policy)
            if pool is not None:
                index.attach_shared_pool(pool)
        else:
            suite = build_index_suite(
                points,
                index_names=[name],
                block_capacity=config.block_capacity,
                partition_threshold=config.partition_threshold,
                training=config.training_config(),
                seed=config.seed,
            )
            index = suite[name]
            if cache_blocks > 0:
                index.attach_cache(make_page_cache(cache_blocks, cache_policy))
            if pool is not None:
                index.attach_cache(pool.client(name))
        rebalancer = None
        if rebalance:
            # deferred: rebalance_sweeps imports this module at registration
            from repro.experiments.rebalance_sweeps import rebalance_sweep_config
            from repro.sharding import RebalanceController

            rebalancer = RebalanceController(
                index, rebalance_sweep_config(spec.n_ops, split_threshold)
            )
        durable: Optional[DurableIndex] = None
        if storage_backend == "disk":
            slug = name.lower().replace("*", "star")
            durable = DurableIndex(
                index,
                storage_root() / f"scenario-{spec.name}" / slug,
                checkpoint_every=checkpoint_every,
                backend="disk",
            )
            index = durable
        if tenants > 1:
            operations, tenant_points = generate_tenant_operations(
                spec, points, tenants
            )
            oracle = MultiTenantOracle(tenants).build(tenant_points) if check else None
        else:
            operations = generate_operations(spec, points)
            oracle = OracleIndex().build(points) if check else None
        raw_operations = operations
        admission_report = None
        if tenant_rate is not None:
            # the index under test and the oracle replay the same accepted
            # stream, so every differential check keeps working
            from repro.serving import admit_operations

            operations, admission_report = admit_operations(
                operations, float(tenant_rate)
            )
        runner = ScenarioRunner(
            index,
            spec,
            oracle=oracle,
            engine_mode=engine_mode,
            batch_reorder=bool(profile.extras.get("batch_reorder", False)),
            rebalancer=rebalancer,
            engine=engine,
        )
        result = runner.replay(operations)
        for snapshot in result.snapshots:
            rows.append(
                [
                    name,
                    snapshot.op_index,
                    round(snapshot.ops_per_s, 1),
                    round(snapshot.avg_block_accesses, 2),
                    snapshot.n_points,
                    _cell(snapshot.window_recall),
                    _cell(snapshot.knn_recall),
                    _cell(snapshot.n_overflow_blocks),
                    _cell(snapshot.max_chain_depth),
                    _cell(snapshot.cache_hit_ratio),
                    _latency_cell(snapshot.latency, "p50_ms"),
                    _latency_cell(snapshot.latency, "p95_ms"),
                    _latency_cell(snapshot.latency, "p99_ms"),
                ]
            )
        if result.checked:
            notes.append(f"{name}: {result.n_ops} ops verified against the shadow oracle")
        if admission_report is not None:
            drops = admission_report.as_dict()["drops_by_tenant"]
            notes.append(
                f"{name}: admission (token bucket, {float(tenant_rate):g} ops/s "
                f"per tenant) accepted {admission_report.n_accepted}/"
                f"{admission_report.n_offered}"
                + (f"; drops per tenant {drops}" if drops else "")
            )
        if result.latency is not None:
            notes.append(
                f"{name}: sojourn p50/p95/p99 = {result.latency.p50_ms:.3f}/"
                f"{result.latency.p95_ms:.3f}/{result.latency.p99_ms:.3f} ms "
                f"({spec.arrival_model}"
                + (
                    f" @ {spec.arrival_rate:.0f} ops/s offered"
                    if spec.arrival_model == "open-loop"
                    else ""
                )
                + f"), service p99 = {result.service_latency.p99_ms:.3f} ms"
            )
        if tenants > 1:
            breakdown = ", ".join(
                f"t{tenant}: {summary.p50_ms:.3f}/{summary.p95_ms:.3f}/"
                f"{summary.p99_ms:.3f} ms ({summary.count} ops)"
                for tenant, summary in result.latency_by_tenant.items()
            )
            notes.append(
                f"{name}: per-tenant sojourn p50/p95/p99 — {breakdown}; "
                f"fairness index {result.fairness:.3f}"
            )
        if cache_blocks > 0:
            notes.append(
                f"{name}: block cache {cache_blocks} blocks/{cache_policy}"
                + (" per shard" if shards > 1 else "")
                + f", whole-run hit ratio {result.cache_hit_ratio:.3f}"
            )
        if pool is not None:
            notes.append(
                f"{name}: shared pool {pool.capacity} blocks/{pool.admission}"
                + (f" across {shards} shards" if shards > 1 else "")
                + f", whole-run hit ratio {pool.hit_ratio:.3f}, "
                f"{pool.rejections} admission rejection(s), "
                f"{pool.prefetch_used}/{pool.prefetch_issued} prefetches used"
            )
        if engine is not None:
            per_shard_reads = [
                (result.per_shard_block_accesses or {}).get(shard_id, 0)
                for shard_id in range(serving_spec.n_shards)
            ]
            notes.append(
                f"{name}: parallel serving — {engine.n_workers} worker "
                f"process(es) over {serving_spec.n_shards} shard(s) "
                f"({serving_spec.policy.describe()}); per-shard read accesses "
                f"(whole run) {per_shard_reads}"
            )
            if max_inflight is not None:
                from repro.serving import FrontDoor, ParallelShardEngine

                paced_engine = ParallelShardEngine(
                    serving_spec, n_workers=workers, mode=engine_mode
                )
                try:
                    door = FrontDoor(
                        paced_engine,
                        max_inflight=int(max_inflight),
                        tenant_rate=tenant_rate,
                    )
                    door_report = door.serve(raw_operations, paced=True)
                finally:
                    paced_engine.close()
                sojourn = door_report.sojourn
                notes.append(
                    f"{name}: paced front door (max_inflight {int(max_inflight)}) "
                    f"— served {door_report.n_served}, shed {door_report.n_shed}, "
                    f"mean batch {door_report.mean_batch_size:.1f}"
                    + (
                        f", measured sojourn p50/p99 = {sojourn.p50_ms:.3f}/"
                        f"{sojourn.p99_ms:.3f} ms"
                        if sojourn is not None
                        else ""
                    )
                )
            engine.close()
        elif shards > 1:
            final_shards = (
                rebalancer.index.n_shards if rebalancer is not None else shards
            )
            per_shard_reads = [
                (result.per_shard_block_accesses or {}).get(shard_id, 0)
                for shard_id in range(final_shards)
            ]
            notes.append(
                f"{name}: sharded {index.policy.describe()} — per-shard points "
                f"{index.per_shard_points()}, per-shard read accesses (whole run) "
                f"{per_shard_reads}"
            )
            if result.per_shard_service_s:
                busy = [
                    round(result.per_shard_service_s.get(shard_id, 0.0) * 1e3, 2)
                    for shard_id in range(final_shards)
                ]
                notes.append(f"{name}: per-shard service time (ms, whole run) {busy}")
        if rebalancer is not None:
            report = rebalancer.report
            notes.append(
                f"{name}: rebalancer — {report.n_splits} split(s), "
                f"{report.n_merges} merge(s), {report.n_aborted} aborted, "
                f"{report.rescued_writes} rescued write(s), "
                f"{report.budget_resizes} budget resize(s); final topology "
                f"{rebalancer.index.n_shards} shard(s): "
                f"{rebalancer.index.policy.describe()}"
            )
        if durable is not None:
            notes.append(
                f"{name}: durable (backend=disk, checkpoint every "
                f"{checkpoint_every} writes) — {durable.n_checkpoints} "
                f"checkpoint(s), {durable.wal_records_pending} WAL record(s) "
                f"pending at shutdown under {durable.directory}"
            )
            durable.close()

    mix = ", ".join(
        f"{kind}={p:.2f}"
        for kind, p in zip(
            ("point", "window", "knn", "insert", "delete"), spec.mix.probabilities()
        )
        if p > 0
    )
    notes.insert(
        0,
        f"scenario '{spec.name}': {spec.n_ops} ops, distribution={spec.distribution}, "
        f"arrival={spec.arrival}/{spec.arrival_model}"
        + (f" @ {spec.arrival_rate:.0f} ops/s" if spec.arrival_model == "open-loop" else "")
        + (f" across {tenants} tenants" if tenants > 1 else "")
        + f", mix: {mix}",
    )
    return ExperimentResult(
        experiment_id=f"scenario-{spec.name}",
        title=f"Scenario sweep '{spec.name}'",
        paper_reference="beyond the paper (ROADMAP: scenario workloads)",
        header=[
            "index",
            "ops_done",
            "ops_per_s",
            "block_accesses_per_op",
            "n_points",
            "window_recall",
            "knn_recall",
            "overflow_blocks",
            "max_chain_depth",
            "cache_hit",
            "p50_ms",
            "p95_ms",
            "p99_ms",
        ],
        rows=rows,
        notes=notes,
    )


def _cell(value):
    """Render optional snapshot fields as table cells."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return round(value, 3)
    return value


def _latency_cell(summary, field: str):
    """One percentile of an optional LatencySummary as a table cell."""
    if summary is None:
        return "-"
    return round(getattr(summary, field), 3)


def _register_presets() -> None:
    for name in SCENARIO_PRESETS:
        def runner(profile: ScaleProfile, _name: str = name) -> ExperimentResult:
            return run_scenario_sweep(profile, _name)

        register_experiment(
            f"scenario-{name}",
            f"Mixed-workload scenario '{name}' (throughput, recall, chain growth)",
            "beyond the paper",
        )(runner)


_register_presets()
