"""Figure 10 — window query cost and recall vs. data distribution.

All seven structures are compared (including RSMIa, the exact-answer variant
of RSMI).  Expected shape: RSMI fastest on non-uniform data (Grid slightly
ahead on uniform data), RSMIa exact with tree-like cost, RSMI recall above
roughly 0.9, ZM slightly more accurate but much slower.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points, make_suite, run_window_workload

HEADER = ["distribution", "index", "query_time_ms", "block_accesses", "recall"]


@register_experiment(
    "fig10",
    "Window query cost and recall vs. data distribution",
    "Figure 10",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    rows: list[list] = []
    for distribution in profile.distributions:
        points = make_points(profile, distribution=distribution)
        adapters, _ = make_suite(points, profile, distribution=distribution)
        metrics = run_window_workload(adapters, points, profile)
        for name in profile.index_names:
            rows.append(
                [
                    distribution,
                    name,
                    metrics[name].avg_time_ms,
                    metrics[name].avg_block_accesses,
                    metrics[name].recall,
                ]
            )

    return ExperimentResult(
        experiment_id="fig10",
        title="Window query cost and recall vs. data distribution",
        paper_reference="Figure 10",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, n={profile.n_points}, "
            f"window area fraction={profile.default_window_area}",
            "expected shape: RSMI fastest on non-uniform data with recall >~0.87; "
            "exact indices (Grid/HRR/KDB/RR*/RSMIa) have recall 1.0",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
