"""Figure 19 — kNN query cost and recall after insertions."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.update_sweeps import run_update_sweep

HEADER = ["inserted_fraction", "index", "query_time_ms", "block_accesses", "recall"]


@register_experiment(
    "fig19",
    "kNN queries after insertions",
    "Figure 19",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    steps = run_update_sweep(profile, query_kind="knn", include_rsmir=False)
    rows = [
        [
            step.fraction,
            step.index_name,
            step.query.avg_time_ms,
            step.query.avg_block_accesses,
            step.query.recall,
        ]
        for step in steps
    ]
    return ExperimentResult(
        experiment_id="fig19",
        title="kNN queries after insertions",
        paper_reference="Figure 19",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, n={profile.n_points}, k={profile.default_k}",
            "expected shape: kNN costs rise only mildly with insertions; RSMI stays fastest "
            "with recall above ~0.87",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
