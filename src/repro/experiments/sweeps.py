"""Shared building blocks for the experiment modules.

Each experiment regenerates one paper table/figure by sweeping a parameter
(distribution, data-set size, window size, ...) and measuring one or more
query workloads over a suite of indices.  The helpers here implement the
common plumbing: generating the data, building the suite, and measuring the
three workload types with the profile's query counts.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.datasets import dataset_by_name
from repro.evaluation.adapters import IndexAdapter
from repro.evaluation.runner import (
    BuildReport,
    QueryMetrics,
    SuiteConfig,
    build_suite_with_reports,
    measure_knn_queries,
    measure_point_queries,
    measure_window_queries,
)
from repro.experiments.profiles import ScaleProfile
from repro.queries import generate_knn_queries, generate_point_queries, generate_window_queries

__all__ = [
    "make_points",
    "suite_config",
    "make_suite",
    "execution_mode",
    "run_point_workload",
    "run_window_workload",
    "run_knn_workload",
]


def execution_mode(profile: ScaleProfile, execution: Optional[str] = None) -> str:
    """Workload execution mode: an explicit override, or the profile's choice.

    Profiles opt into batched execution through their ``extras`` dict
    (``profile.with_overrides(extras={"execution": "batched"})``), which the
    CLI's ``--execution`` flag sets; the default stays the paper's
    per-query sequential protocol.
    """
    if execution is not None:
        return execution
    return profile.extras.get("execution", "sequential")


def make_points(
    profile: ScaleProfile,
    distribution: Optional[str] = None,
    n_points: Optional[int] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Generate the data set for one sweep step."""
    distribution = distribution if distribution is not None else profile.default_distribution
    n_points = n_points if n_points is not None else profile.n_points
    seed = seed if seed is not None else profile.seed
    return dataset_by_name(distribution, n_points, seed=seed)


def suite_config(
    profile: ScaleProfile,
    distribution: Optional[str] = None,
    n_points: Optional[int] = None,
    partition_threshold: Optional[int] = None,
    index_names: Optional[Sequence[str]] = None,
) -> SuiteConfig:
    """Translate a profile (plus overrides) into a :class:`SuiteConfig`."""
    return SuiteConfig(
        n_points=n_points if n_points is not None else profile.n_points,
        distribution=distribution if distribution is not None else profile.default_distribution,
        block_capacity=profile.block_capacity,
        partition_threshold=(
            partition_threshold
            if partition_threshold is not None
            else profile.partition_threshold
        ),
        training_epochs=profile.training_epochs,
        n_point_queries=profile.n_point_queries,
        n_window_queries=profile.n_window_queries,
        n_knn_queries=profile.n_knn_queries,
        window_area_fraction=profile.default_window_area,
        window_aspect_ratio=1.0,
        k=profile.default_k,
        seed=profile.seed,
        index_names=tuple(index_names) if index_names is not None else profile.index_names,
    )


def make_suite(
    points: np.ndarray,
    profile: ScaleProfile,
    distribution: Optional[str] = None,
    partition_threshold: Optional[int] = None,
    index_names: Optional[Sequence[str]] = None,
) -> tuple[dict[str, IndexAdapter], dict[str, BuildReport]]:
    """Build the configured index suite over ``points``."""
    config = suite_config(
        profile,
        distribution=distribution,
        n_points=points.shape[0],
        partition_threshold=partition_threshold,
        index_names=index_names,
    )
    return build_suite_with_reports(points, config)


def run_point_workload(
    adapters: dict[str, IndexAdapter],
    points: np.ndarray,
    profile: ScaleProfile,
    execution: Optional[str] = None,
) -> dict[str, QueryMetrics]:
    """Point-query metrics for every index in the suite."""
    queries = generate_point_queries(points, profile.n_point_queries, seed=profile.seed + 11)
    mode = execution_mode(profile, execution)
    return {
        name: measure_point_queries(adapter, queries, execution=mode)
        for name, adapter in adapters.items()
    }


def run_window_workload(
    adapters: dict[str, IndexAdapter],
    points: np.ndarray,
    profile: ScaleProfile,
    area_fraction: Optional[float] = None,
    aspect_ratio: float = 1.0,
    execution: Optional[str] = None,
) -> dict[str, QueryMetrics]:
    """Window-query metrics (time, block accesses, recall) for every index."""
    area = area_fraction if area_fraction is not None else profile.default_window_area
    windows = generate_window_queries(
        points,
        profile.n_window_queries,
        area_fraction=area,
        aspect_ratio=aspect_ratio,
        seed=profile.seed + 23,
    )
    mode = execution_mode(profile, execution)
    return {
        name: measure_window_queries(adapter, windows, points, execution=mode)
        for name, adapter in adapters.items()
    }


def run_knn_workload(
    adapters: dict[str, IndexAdapter],
    points: np.ndarray,
    profile: ScaleProfile,
    k: Optional[int] = None,
    execution: Optional[str] = None,
) -> dict[str, QueryMetrics]:
    """kNN metrics (time, block accesses, recall) for every index."""
    k = k if k is not None else profile.default_k
    queries = generate_knn_queries(points, profile.n_knn_queries, seed=profile.seed + 37)
    mode = execution_mode(profile, execution)
    return {
        name: measure_knn_queries(adapter, queries, k, points, execution=mode)
        for name, adapter in adapters.items()
    }
