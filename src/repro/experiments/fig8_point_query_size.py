"""Figure 8 — point query cost vs. data set size (Skewed data).

Query time and block accesses grow (slowly) with the data-set size for every
index; RSMI stays lowest throughout, demonstrating scalability.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points, make_suite, run_point_workload

HEADER = ["n_points", "index", "query_time_us", "block_accesses"]

POINT_QUERY_INDICES = ("Grid", "HRR", "KDB", "RR*", "RSMI", "ZM")


@register_experiment(
    "fig8",
    "Point query cost vs. data set size",
    "Figure 8",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    index_names = tuple(n for n in profile.index_names if n in POINT_QUERY_INDICES)
    rows: list[list] = []
    for n_points in profile.size_sweep:
        points = make_points(profile, n_points=n_points)
        adapters, _ = make_suite(points, profile, index_names=index_names)
        metrics = run_point_workload(adapters, points, profile)
        for name in index_names:
            rows.append(
                [n_points, name, metrics[name].avg_time_us, metrics[name].avg_block_accesses]
            )

    return ExperimentResult(
        experiment_id="fig8",
        title="Point query cost vs. data set size",
        paper_reference="Figure 8",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, distribution={profile.default_distribution}, "
            f"B={profile.block_capacity}",
            "expected shape: costs grow with n; RSMI lowest across sizes",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
