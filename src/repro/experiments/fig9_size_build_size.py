"""Figure 9 — index size and construction time vs. data set size (Skewed data).

Both grow with the data-set size.  RSMI stays among the smallest structures
while its construction time grows roughly linearly (dominated by per-partition
model training), exactly the scalability argument of the paper.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.sweeps import make_points, make_suite

HEADER = ["n_points", "index", "index_size_mb", "construction_time_s"]

BUILD_INDICES = ("Grid", "HRR", "KDB", "RR*", "RSMI", "ZM")


@register_experiment(
    "fig9",
    "Index size and construction time vs. data set size",
    "Figure 9",
)
def run(profile: ScaleProfile) -> ExperimentResult:
    index_names = tuple(n for n in profile.index_names if n in BUILD_INDICES)
    rows: list[list] = []
    for n_points in profile.size_sweep:
        points = make_points(profile, n_points=n_points)
        _, reports = make_suite(points, profile, index_names=index_names)
        for name in index_names:
            rows.append([n_points, name, reports[name].size_mb, reports[name].build_time_s])

    return ExperimentResult(
        experiment_id="fig9",
        title="Index size and construction time vs. data set size",
        paper_reference="Figure 9",
        header=HEADER,
        rows=rows,
        notes=[
            f"profile={profile.name}, distribution={profile.default_distribution}",
            "expected shape: size and build time grow with n; learned indices smallest, "
            "slowest to construct together with RR*",
        ],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.profiles import profile_by_name

    print(run(profile_by_name("tiny")).to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
