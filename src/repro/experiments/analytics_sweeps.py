"""Analytic-surface sweeps: push-down aggregates and rebuild trigger policies.

Two experiments beyond the paper (ROADMAP: analytic query surface):

* ``analytics-sweep`` — every aggregate operator (count/sum/mean/quantile/
  top-k) is pushed down through the batched engine for each index kind and
  the block accesses are compared with the brute-force alternative (scan
  every block, aggregate client-side).  Every answer is verified against
  :func:`~repro.analytics.ops.exact_aggregate` while the sweep runs — exact
  agreement for exact index kinds, soundness for the approximate ones — so
  the table can never report speed for wrong answers.  ``--shards N``
  reruns the sweep through the sharded engine (partials merged at the
  router), ``--cache-blocks N`` attaches per-index caches, and
  ``--aggregate-ops`` restricts the operator set.
* ``rebuild-policy`` — replays the write phase of the ``bulk-churn`` drift
  scenario against the RSMI under three retrain trigger policies (``never``,
  ``periodic`` at 10% growth, ``chain-depth`` on overflow-chain depth) and
  reports the retrain cost against the window-recall trajectory, i.e. what
  each policy buys and what it costs.
"""

from __future__ import annotations

import math
import time
from typing import Optional, Sequence

import numpy as np

from repro.analytics.attributes import attribute_values
from repro.analytics.ops import (
    AGGREGATE_OPS,
    AggregateSpec,
    QueryRequest,
    exact_aggregate,
    quantile_rank_distance,
)
from repro.core import RSMI, RSMIConfig
from repro.engine import BatchQueryEngine
from repro.evaluation.adapters import build_index_suite
from repro.evaluation.runner import SuiteConfig
from repro.experiments.base import ExperimentResult, register_experiment
from repro.experiments.profiles import ScaleProfile
from repro.experiments.scenario_sweeps import build_sharded_index
from repro.experiments.sweeps import make_points
from repro.geometry import Rect
from repro.nn import TrainingConfig
from repro.sharding import ShardedBatchEngine
from repro.storage import PageCache
from repro.workloads import OracleIndex, generate_operations, scenario_by_name

__all__ = [
    "ANALYTICS_INDEX_NAMES",
    "REBUILD_POLICY_NAMES",
    "run_analytics_sweep",
    "run_rebuild_policy",
]

#: index kinds of the aggregate sweep (flat, tree, learned — both RSMI modes)
ANALYTICS_INDEX_NAMES = ("Grid", "KDB", "RSMI", "RSMIa", "ZM")

#: retrain trigger policies compared by ``rebuild-policy``
REBUILD_POLICY_NAMES = ("never", "periodic", "chain-depth")


def _innermost(index):
    seen = set()
    while id(index) not in seen:
        seen.add(id(index))
        inner = getattr(index, "wrapped", None) or getattr(index, "_index", None)
        if inner is None or inner is index:
            break
        index = inner
    return index


def _brute_force_reads(index, n_points: int, block_capacity: int) -> int:
    """Blocks a client-side aggregation would scan: the whole store."""
    store = getattr(_innermost(index), "store", None)
    if store is not None and hasattr(store, "n_blocks"):
        return int(store.n_blocks)
    return max(1, math.ceil(n_points / max(block_capacity, 1)))


def _aggregate_specs(
    points: np.ndarray,
    op: str,
    n: int,
    *,
    area_fraction: float,
    k: int,
    seed: int,
) -> list[AggregateSpec]:
    """Hotspot-style aggregate windows centred on stored points."""
    rng = np.random.default_rng(seed)
    extent = math.sqrt(max(area_fraction, 1e-9))
    specs = []
    for _ in range(n):
        cx, cy = points[int(rng.integers(points.shape[0]))]
        window = Rect.from_center(
            float(cx), float(cy), extent, extent
        ).clip_to(Rect.unit())
        specs.append(
            AggregateSpec(
                op=op,
                window=window,
                q=float(rng.choice((0.25, 0.5, 0.9))),
                k=k,
                attribute_seed=seed,
            )
        )
    return specs


def _verify_outcome(spec, outcome, points, exact: bool) -> None:
    """Raise when an aggregate answer disagrees with the brute-force truth."""
    truth = exact_aggregate(spec, points)
    inside = points[spec.window.contains_points(points)]
    column = np.sort(attribute_values(inside, seed=spec.attribute_seed))
    label = f"{spec.op} over {spec.window}"
    if exact:
        if outcome.count != truth.count:
            raise AssertionError(f"{label}: count {outcome.count} != {truth.count}")
        if spec.op in ("count", "sum", "mean") and outcome.value != truth.value:
            raise AssertionError(f"{label}: value {outcome.value} != {truth.value}")
        if spec.op == "top-k" and outcome.items != truth.items:
            raise AssertionError(f"{label}: top-k items diverged")
        if spec.op == "quantile" and truth.count:
            distance = quantile_rank_distance(outcome.value, column, spec.q)
            if distance > outcome.max_rank_error:
                raise AssertionError(
                    f"{label}: quantile rank distance {distance} exceeds the "
                    f"sketch's bound {outcome.max_rank_error}"
                )
        return
    if outcome.count > truth.count:
        raise AssertionError(f"{label}: count {outcome.count} > true {truth.count}")
    if spec.op in ("count", "sum") and outcome.value > truth.value + 1e-9:
        raise AssertionError(f"{label}: {spec.op} overshoots the truth")
    if spec.op == "quantile" and outcome.value is not None:
        if not np.any(column == outcome.value):
            raise AssertionError(f"{label}: quantile value is not a stored attribute")


@register_experiment(
    "analytics-sweep",
    "Push-down aggregates: block accesses vs brute-force, answers verified",
    "beyond the paper",
)
def run_analytics_sweep(
    profile: ScaleProfile,
    index_names: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """One row per (index, aggregate op): reads, reduction, verification."""
    points = make_points(profile)
    names = tuple(index_names) if index_names is not None else ANALYTICS_INDEX_NAMES
    ops = tuple(profile.extras.get("aggregate_ops") or AGGREGATE_OPS)
    unknown = [op for op in ops if op not in AGGREGATE_OPS]
    if unknown:
        raise ValueError(
            f"unknown aggregate op(s) {unknown}; available: {list(AGGREGATE_OPS)}"
        )
    n_shards = int(profile.extras.get("shards", 0))
    policy = profile.extras.get("sharding_policy") or "grid"
    cache_blocks = int(profile.extras.get("cache_blocks", 0))
    n_specs = max(10, profile.n_window_queries)
    # windows holding a few blocks' worth of points: large enough that the
    # partials aggregate something, small enough that push-down skips blocks
    area = min(
        0.05,
        max(profile.default_window_area,
            4 * profile.block_capacity / max(profile.n_points, 1)),
    )

    config = SuiteConfig(
        n_points=points.shape[0],
        distribution=profile.default_distribution,
        block_capacity=profile.block_capacity,
        partition_threshold=profile.partition_threshold,
        training_epochs=profile.training_epochs,
        seed=profile.seed,
    )

    rows: list[list] = []
    for name in names:
        if n_shards >= 2:
            index = build_sharded_index(points, name, n_shards, policy, config)
            if cache_blocks > 0:
                index.attach_caches(cache_blocks)
            engine = ShardedBatchEngine(index)
            exact = bool(index.supports_exact_results)
        else:
            suite = build_index_suite(
                points,
                [name],
                block_capacity=profile.block_capacity,
                partition_threshold=profile.partition_threshold,
                training=TrainingConfig(epochs=profile.training_epochs, seed=profile.seed),
                seed=profile.seed,
            )
            adapter = suite[name]
            if cache_blocks > 0:
                adapter.attach_cache(PageCache(cache_blocks))
            engine = BatchQueryEngine(adapter)
            exact = bool(adapter.supports_exact_results)
            index = adapter

        brute = _brute_force_reads(index, points.shape[0], profile.block_capacity)
        for op in ops:
            specs = _aggregate_specs(
                points, op, n_specs,
                area_fraction=area, k=profile.default_k, seed=profile.seed + 53,
            )
            result = engine.execute(QueryRequest.for_aggregates(specs))
            for spec, outcome in zip(specs, result.values):
                _verify_outcome(spec, outcome, points, exact)
            logical = result.access.logical_reads or 0
            brute_total = brute * len(specs)
            rows.append(
                [
                    name,
                    op,
                    len(specs),
                    logical,
                    brute_total,
                    round(brute_total / max(logical, 1), 1),
                    "exact" if exact else "sound",
                    "yes",
                ]
            )

    notes = [
        f"{points.shape[0]} points ({profile.default_distribution}), window area "
        f"fraction {area:.5f}; brute_force_reads = full block scan per aggregate",
        "every answer checked in-line against the brute-force reference "
        "(exact agreement for exact kinds, soundness for ZM/RSMI) — the sweep "
        "aborts on any disagreement",
    ]
    if n_shards >= 2:
        notes.append(
            f"served through {n_shards} '{policy}' shards; per-block partials "
            "merged per shard, then at the router"
        )
    if cache_blocks > 0:
        notes.append(
            f"{cache_blocks}-page cache attached (per shard when sharded); "
            "logical reads are cache-independent by construction"
        )
    return ExperimentResult(
        experiment_id="analytics-sweep",
        title="Push-down aggregate operators vs brute-force scans",
        paper_reference="beyond the paper (ROADMAP: analytic query surface)",
        header=[
            "index",
            "op",
            "n_aggregates",
            "logical_reads",
            "brute_force_reads",
            "read_reduction",
            "agreement",
            "verified",
        ],
        rows=rows,
        notes=notes,
    )


def _window_recall(index, oracle: OracleIndex, *, area: float, n_windows: int,
                   seed: int) -> tuple[float, float]:
    """Mean window recall of ``index`` against the oracle's live point set,
    plus the mean block accesses one probe window costs (the read price of
    deferred retraining: overflow chains are scanned, not lost)."""
    live = oracle.points()
    if live.shape[0] == 0:
        return 1.0, 0.0
    rng = np.random.default_rng(seed)
    extent = math.sqrt(max(area, 1e-9))
    recalls = []
    reads_before = index.stats.logical_reads
    for _ in range(n_windows):
        cx, cy = live[int(rng.integers(live.shape[0]))]
        window = Rect.from_center(
            float(cx), float(cy), extent, extent
        ).clip_to(Rect.unit())
        truth = oracle.window_query(window)
        got = index.window_query(window)
        got = np.asarray(got.points if hasattr(got, "points") else got,
                         dtype=float).reshape(-1, 2)
        if truth.shape[0] == 0:
            continue
        want = {(float(x), float(y)) for x, y in truth}
        have = {(float(x), float(y)) for x, y in got}
        recalls.append(len(want & have) / len(want))
    reads_per_window = (index.stats.logical_reads - reads_before) / max(n_windows, 1)
    return (float(np.mean(recalls)) if recalls else 1.0), reads_per_window


@register_experiment(
    "rebuild-policy",
    "RSMI retrain triggers under drift: rebuild cost vs recall trajectory",
    "beyond the paper",
)
def run_rebuild_policy(profile: ScaleProfile) -> ExperimentResult:
    """Replay ``bulk-churn`` writes under each retrain policy; one row per
    (policy, checkpoint)."""
    import dataclasses

    points = make_points(profile)
    n_ops = int(profile.extras.get("scenario_ops", 0)) or max(
        300, profile.n_points // 4
    )
    # keep bulk-churn's drifting key distribution but make the stream pure
    # writes: retrain policies only ever react to writes, and the read kinds
    # would just dilute the drift the policies are being judged on.  Arrival
    # is forced steady — bulk-churn's bursty runs (mean 32) leave a short
    # stream with only ~n_ops/32 kind draws, so the realized insert/delete
    # balance can invert the 3:1 mix and starve the triggers being compared
    base = scenario_by_name("bulk-churn")
    spec = base.with_overrides(
        n_ops=n_ops,
        seed=profile.seed + 97,
        arrival="steady",
        mix=dataclasses.replace(
            base.mix, point=0.0, window=0.0, knn=0.0, insert=0.75, delete=0.25
        ),
    )
    operations = [
        op for op in generate_operations(spec, points)
        if op.kind in ("insert", "delete")
    ]
    n_checkpoints = 4
    every = max(1, len(operations) // n_checkpoints)
    periodic_threshold = max(1, points.shape[0] // 10)
    depth_threshold = 3

    rows: list[list] = []
    for policy in REBUILD_POLICY_NAMES:
        index = RSMI(
            RSMIConfig(
                block_capacity=profile.block_capacity,
                partition_threshold=profile.partition_threshold,
                training=TrainingConfig(epochs=profile.training_epochs,
                                        seed=profile.seed),
                seed=profile.seed,
            )
        ).build(points)
        oracle = OracleIndex().build(points)
        inserts_since = 0
        n_rebuilds = 0
        retrain_s = 0.0

        def maybe_rebuild() -> None:
            nonlocal inserts_since, n_rebuilds, retrain_s
            if policy == "never":
                return
            if policy == "periodic":
                if inserts_since < periodic_threshold:
                    return
            elif policy == "chain-depth":
                depths = index.store.chain_depths()
                if not depths or max(depths) < depth_threshold:
                    return
            started = time.perf_counter()
            index.rebuild()
            retrain_s += time.perf_counter() - started
            inserts_since = 0
            n_rebuilds += 1

        for i, op in enumerate(operations, start=1):
            if op.kind == "insert":
                index.insert(op.x, op.y)
                oracle.insert(op.x, op.y)
                inserts_since += 1
            else:
                index.delete(op.x, op.y)
                oracle.delete(op.x, op.y)
            # chain depth is a store scan; probe it sparsely
            if policy != "chain-depth" or i % 25 == 0:
                maybe_rebuild()
            if i % every == 0 or i == len(operations):
                recall, reads_per_window = _window_recall(
                    index, oracle,
                    # block-sized probe windows: small enough to be local,
                    # populated enough that lost points actually show
                    area=max(profile.default_window_area * 4,
                             2 * profile.block_capacity
                             / max(oracle.n_points, 1)),
                    n_windows=max(10, profile.n_window_queries),
                    seed=profile.seed + i,
                )
                depths = index.store.chain_depths()
                rows.append(
                    [
                        policy,
                        i,
                        oracle.n_points,
                        n_rebuilds,
                        round(retrain_s, 2),
                        round(recall, 4),
                        round(reads_per_window, 1),
                        max(depths) if depths else 0,
                    ]
                )

    notes = [
        f"bulk-churn write stream, {len(operations)} insert/delete ops over "
        f"{points.shape[0]} initial points; recall from "
        f"{max(10, profile.n_window_queries)} windows per checkpoint against a "
        "live oracle",
        f"periodic: retrain after {periodic_threshold} inserts (the paper's "
        f"RSMIr trigger at 10%); chain-depth: retrain when any overflow chain "
        f"reaches depth {depth_threshold}",
        "retrain_s is cumulative wall-clock spent inside rebuilds — the cost "
        "axis the recall column is traded against",
    ]
    return ExperimentResult(
        experiment_id="rebuild-policy",
        title="Retrain trigger policies under bulk-churn drift",
        paper_reference="beyond the paper (ROADMAP: analytic query surface)",
        header=[
            "policy",
            "ops_replayed",
            "live_points",
            "rebuilds",
            "retrain_s",
            "window_recall",
            "reads_per_window",
            "max_chain_depth",
        ],
        rows=rows,
        notes=notes,
    )
