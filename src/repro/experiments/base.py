"""Experiment framework: result records, specifications and the registry.

Every table and figure of the paper's evaluation section has a corresponding
experiment module that registers an :class:`ExperimentSpec`.  Running a spec
produces an :class:`ExperimentResult` whose header/rows mirror the structure
of the original table or figure (one row per data series point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.evaluation.reporting import format_table
from repro.experiments.profiles import ScaleProfile, profile_by_name

__all__ = ["ExperimentResult", "ExperimentSpec", "register_experiment", "EXPERIMENT_REGISTRY"]


@dataclass
class ExperimentResult:
    """The regenerated rows of one paper table/figure."""

    experiment_id: str
    title: str
    paper_reference: str
    header: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)

    def to_text(self) -> str:
        """Render the result as an aligned text table (plus notes)."""
        table = format_table(self.header, self.rows, title=f"{self.experiment_id}: {self.title}")
        if not self.notes:
            return table
        notes = "\n".join(f"  note: {note}" for note in self.notes)
        return f"{table}\n{notes}"

    def column(self, name: str) -> list:
        """The values of one named column across all rows."""
        try:
            index = self.header.index(name)
        except ValueError as exc:
            raise KeyError(f"no column named {name!r}; available: {self.header}") from exc
        return [row[index] for row in self.rows]

    def rows_where(self, column: str, value) -> list[list]:
        """All rows whose ``column`` equals ``value``."""
        index = self.header.index(column)
        return [row for row in self.rows if row[index] == value]


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: metadata plus its runner function."""

    experiment_id: str
    title: str
    paper_reference: str
    runner: Callable[[ScaleProfile], ExperimentResult]

    def run(self, profile: ScaleProfile | str = "tiny") -> ExperimentResult:
        if isinstance(profile, str):
            profile = profile_by_name(profile)
        return self.runner(profile)


#: experiment id -> spec, populated by the @register_experiment decorator
EXPERIMENT_REGISTRY: dict[str, ExperimentSpec] = {}


def register_experiment(experiment_id: str, title: str, paper_reference: str):
    """Decorator registering a runner function as an experiment."""

    def decorator(runner: Callable[[ScaleProfile], ExperimentResult]):
        if experiment_id in EXPERIMENT_REGISTRY:
            raise ValueError(f"duplicate experiment id: {experiment_id}")
        EXPERIMENT_REGISTRY[experiment_id] = ExperimentSpec(
            experiment_id=experiment_id,
            title=title,
            paper_reference=paper_reference,
            runner=runner,
        )
        return runner

    return decorator


def iter_experiments() -> Iterable[ExperimentSpec]:
    """All registered experiments in id order."""
    return (EXPERIMENT_REGISTRY[key] for key in sorted(EXPERIMENT_REGISTRY))
