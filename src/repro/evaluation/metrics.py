"""Accuracy metrics: window recall and kNN recall.

The paper reports *recall* for the approximate learned-index answers: for
window queries the fraction of true result points returned (there are never
false positives), for kNN queries the fraction of true k nearest neighbours
returned (equal to precision since both sets have size k), see
Sections 6.2.3–6.2.4.
"""

from __future__ import annotations

import numpy as np

__all__ = ["window_recall", "knn_recall", "points_to_set"]


def points_to_set(points: np.ndarray, decimals: int = 12) -> set[tuple[float, float]]:
    """A hashable set of (rounded) coordinate pairs for set-based comparison."""
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    rounded = np.round(points, decimals)
    return {(float(x), float(y)) for x, y in rounded}


def window_recall(reported: np.ndarray, ground_truth: np.ndarray) -> float:
    """Fraction of the true window result that was reported.

    An empty ground truth yields recall 1.0 (there was nothing to find).
    """
    truth = points_to_set(ground_truth)
    if not truth:
        return 1.0
    found = points_to_set(reported)
    return len(found & truth) / len(truth)


def knn_recall(reported: np.ndarray, ground_truth: np.ndarray) -> float:
    """Fraction of the true k nearest neighbours that was reported.

    Ties at the k-th distance are treated generously: a reported point counts
    as correct if it appears in the ground-truth set.
    """
    truth = points_to_set(ground_truth)
    if not truth:
        return 1.0
    found = points_to_set(reported)
    return len(found & truth) / len(truth)
