"""Measurement primitives used by every experiment.

All measurements follow the paper's protocol: a query workload is executed
against a built index, and the *average* response time and number of block
accesses per query are reported; window and kNN measurements additionally
report recall against brute-force ground truth (Section 6.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.analytics.ops import QueryRequest
from repro.engine import BatchQueryEngine
from repro.evaluation.adapters import IndexAdapter, build_index_suite
from repro.evaluation.metrics import knn_recall, window_recall
from repro.geometry import Rect
from repro.nn import TrainingConfig
from repro.queries import brute_force_knn, brute_force_window

__all__ = [
    "SuiteConfig",
    "BuildReport",
    "QueryMetrics",
    "EXECUTION_MODES",
    "engine_for_execution",
    "build_suite_with_reports",
    "measure_point_queries",
    "measure_window_queries",
    "measure_knn_queries",
    "measure_insertions",
    "measure_deletions",
]

#: how a query workload is executed against an index
EXECUTION_MODES = ("sequential", "batched", "threaded")


def engine_for_execution(adapter: IndexAdapter, execution: str) -> BatchQueryEngine:
    """A :class:`BatchQueryEngine` implementing a non-sequential execution mode."""
    if execution == "batched":
        return BatchQueryEngine(adapter, mode="auto")
    if execution == "threaded":
        return BatchQueryEngine(adapter, mode="threaded")
    raise ValueError(f"unknown execution mode {execution!r}; available: {EXECUTION_MODES}")


@dataclass(frozen=True)
class SuiteConfig:
    """Scaled-down counterpart of the paper's experimental setup (Table 2).

    The paper uses ``B = 100``, ``N = 10 000`` and millions of points; the
    defaults here keep the same ratios at laptop scale while every field can
    be raised to the paper's values.
    """

    n_points: int = 20_000
    distribution: str = "skewed"
    block_capacity: int = 50
    partition_threshold: int = 2_000
    training_epochs: int = 60
    n_point_queries: int = 200
    n_window_queries: int = 30
    n_knn_queries: int = 30
    window_area_fraction: float = 0.0001
    window_aspect_ratio: float = 1.0
    k: int = 25
    seed: int = 0
    index_names: tuple[str, ...] = ("Grid", "HRR", "KDB", "RR*", "RSMI", "RSMIa", "ZM")

    def training_config(self) -> TrainingConfig:
        return TrainingConfig(epochs=self.training_epochs, seed=self.seed)


@dataclass
class BuildReport:
    """Construction-time metrics of one index (Figures 7 and 9)."""

    name: str
    build_time_s: float
    size_bytes: int
    extras: dict = field(default_factory=dict)

    @property
    def size_mb(self) -> float:
        return self.size_bytes / (1024 * 1024)


@dataclass
class QueryMetrics:
    """Average per-query metrics over one workload."""

    avg_time_ms: float
    avg_block_accesses: float
    recall: Optional[float] = None
    n_queries: int = 0

    @property
    def avg_time_us(self) -> float:
        return self.avg_time_ms * 1000.0


def build_suite_with_reports(
    points: np.ndarray, config: SuiteConfig
) -> tuple[dict[str, IndexAdapter], dict[str, BuildReport]]:
    """Build every configured index, timing construction and recording size.

    ``RSMIa`` shares the RSMI build; its build report reuses the RSMI numbers
    (the paper treats them as one structure with two query modes).
    """
    adapters: dict[str, IndexAdapter] = {}
    reports: dict[str, BuildReport] = {}
    training = config.training_config()

    for name in config.index_names:
        start = time.perf_counter()
        built = build_index_suite(
            points,
            index_names=[name],
            block_capacity=config.block_capacity,
            partition_threshold=config.partition_threshold,
            training=training,
            seed=config.seed,
        )
        elapsed = time.perf_counter() - start
        adapter = built[name]
        if name == "RSMIa" and "RSMI" in adapters:
            # reuse the already-built RSMI structure instead of re-training
            adapter = type(adapter)(adapters["RSMI"].wrapped)  # type: ignore[attr-defined]
            elapsed = reports["RSMI"].build_time_s
        adapters[name] = adapter
        reports[name] = BuildReport(
            name=name,
            build_time_s=elapsed,
            size_bytes=adapter.size_bytes(),
            extras=adapter.extra_metrics(),
        )
    return adapters, reports


def measure_point_queries(
    adapter: IndexAdapter, queries: np.ndarray, execution: str = "sequential"
) -> QueryMetrics:
    """Average response time and block accesses of exact-match point queries."""
    queries = np.asarray(queries, dtype=float).reshape(-1, 2)
    n = max(queries.shape[0], 1)
    if execution != "sequential":
        engine = engine_for_execution(adapter, execution)
        start = time.perf_counter()
        result = engine.execute(QueryRequest.for_points(queries))
        elapsed = time.perf_counter() - start
        return QueryMetrics(
            avg_time_ms=elapsed / n * 1000.0,
            avg_block_accesses=(result.access.logical_reads or 0) / n,
            n_queries=queries.shape[0],
        )
    adapter.stats.reset()
    start = time.perf_counter()
    for x, y in queries:
        adapter.point_query(float(x), float(y))
    elapsed = time.perf_counter() - start
    return QueryMetrics(
        avg_time_ms=elapsed / n * 1000.0,
        avg_block_accesses=adapter.stats.total_reads / n,
        n_queries=queries.shape[0],
    )


def measure_window_queries(
    adapter: IndexAdapter,
    windows: Sequence[Rect],
    data_points: np.ndarray,
    execution: str = "sequential",
) -> QueryMetrics:
    """Average time, block accesses and recall of window queries."""
    n = max(len(windows), 1)
    if execution != "sequential":
        engine = engine_for_execution(adapter, execution)
        start = time.perf_counter()
        result = engine.execute(QueryRequest.for_windows(windows))
        elapsed = time.perf_counter() - start
        recalls = [
            window_recall(reported, brute_force_window(data_points, window))
            for window, reported in zip(windows, result.values)
        ]
        return QueryMetrics(
            avg_time_ms=elapsed / n * 1000.0,
            avg_block_accesses=(result.access.logical_reads or 0) / n,
            recall=float(np.mean(recalls)) if recalls else None,
            n_queries=len(windows),
        )
    adapter.stats.reset()
    recalls = []
    elapsed = 0.0
    for window in windows:
        start = time.perf_counter()
        reported = adapter.window_query(window)
        elapsed += time.perf_counter() - start
        truth = brute_force_window(data_points, window)
        recalls.append(window_recall(reported, truth))
    return QueryMetrics(
        avg_time_ms=elapsed / n * 1000.0,
        avg_block_accesses=adapter.stats.total_reads / n,
        recall=float(np.mean(recalls)) if recalls else None,
        n_queries=len(windows),
    )


def measure_knn_queries(
    adapter: IndexAdapter,
    queries: np.ndarray,
    k: int,
    data_points: np.ndarray,
    execution: str = "sequential",
) -> QueryMetrics:
    """Average time, block accesses and recall of kNN queries."""
    queries = np.asarray(queries, dtype=float).reshape(-1, 2)
    if execution != "sequential":
        n = max(queries.shape[0], 1)
        engine = engine_for_execution(adapter, execution)
        start = time.perf_counter()
        result = engine.execute(QueryRequest.for_knn(queries, k))
        elapsed = time.perf_counter() - start
        recalls = [
            knn_recall(reported, brute_force_knn(data_points, float(x), float(y), k))
            for (x, y), reported in zip(queries, result.values)
        ]
        return QueryMetrics(
            avg_time_ms=elapsed / n * 1000.0,
            avg_block_accesses=(result.access.logical_reads or 0) / n,
            recall=float(np.mean(recalls)) if recalls else None,
            n_queries=queries.shape[0],
        )
    adapter.stats.reset()
    recalls: list[float] = []
    elapsed = 0.0
    for x, y in queries:
        start = time.perf_counter()
        reported = adapter.knn_query(float(x), float(y), k)
        elapsed += time.perf_counter() - start
        truth = brute_force_knn(data_points, float(x), float(y), k)
        recalls.append(knn_recall(reported, truth))
    n = max(queries.shape[0], 1)
    return QueryMetrics(
        avg_time_ms=elapsed / n * 1000.0,
        avg_block_accesses=adapter.stats.total_reads / n,
        recall=float(np.mean(recalls)) if recalls else None,
        n_queries=queries.shape[0],
    )


def measure_insertions(adapter: IndexAdapter, new_points: np.ndarray) -> QueryMetrics:
    """Average per-insertion time over ``new_points`` (Figure 17a)."""
    new_points = np.asarray(new_points, dtype=float).reshape(-1, 2)
    adapter.stats.reset()
    start = time.perf_counter()
    for x, y in new_points:
        adapter.insert(float(x), float(y))
    elapsed = time.perf_counter() - start
    n = max(new_points.shape[0], 1)
    return QueryMetrics(
        avg_time_ms=elapsed / n * 1000.0,
        avg_block_accesses=adapter.stats.total_reads / n,
        n_queries=new_points.shape[0],
    )


def measure_deletions(adapter: IndexAdapter, points: np.ndarray) -> QueryMetrics:
    """Average per-deletion time over ``points``."""
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    adapter.stats.reset()
    start = time.perf_counter()
    for x, y in points:
        adapter.delete(float(x), float(y))
    elapsed = time.perf_counter() - start
    n = max(points.shape[0], 1)
    return QueryMetrics(
        avg_time_ms=elapsed / n * 1000.0,
        avg_block_accesses=adapter.stats.total_reads / n,
        n_queries=points.shape[0],
    )
