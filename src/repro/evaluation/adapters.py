"""Uniform adapters over the heterogeneous index implementations.

The baselines return plain NumPy arrays while RSMI returns rich result
records; the adapters normalise both to the same small interface so the
experiment runner can sweep every index with identical code.  ``RSMI`` and
``RSMIa`` (the exact-query variant, Section 6.2.3 of the paper) are two
adapters over the *same* built index, exactly as in the paper.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.baselines import GridFile, HRRTree, KDBTree, RStarTree, ZMConfig, ZMIndex
from repro.baselines.interface import SpatialIndex
from repro.core import RSMI, RSMIConfig
from repro.geometry import Rect
from repro.nn import TrainingConfig
from repro.storage import AccessStats

__all__ = [
    "IndexAdapter",
    "BaselineAdapter",
    "RSMIAdapter",
    "RSMIExactAdapter",
    "build_index_suite",
    "INDEX_NAMES",
]

#: Index names in the order the paper's figures list them.
INDEX_NAMES = ("Grid", "HRR", "KDB", "RR*", "RSMI", "RSMIa", "ZM")


class IndexAdapter(abc.ABC):
    """Minimal interface the experiment runner drives."""

    name: str = "abstract"

    #: True when window/kNN queries go through the exact (MBR-traversal)
    #: algorithms; the batched query engine then keeps those on the
    #: per-query path instead of the vectorised approximate one.
    prefers_exact_queries: bool = False

    #: capability flag: window/kNN/aggregate answers agree exactly with a
    #: brute-force oracle (replaces string-matching index names against the
    #: deprecated ``EXACT_RESULT_INDICES`` set)
    supports_exact_results: bool = False

    #: capability flag: answers carry concrete stored points, so the derived
    #: attribute column (and the aggregate operators over it) is available
    supports_attributes: bool = True

    @abc.abstractmethod
    def point_query(self, x: float, y: float) -> bool:
        """True when the point is stored."""

    @abc.abstractmethod
    def window_query(self, window: Rect) -> np.ndarray:
        """Points reported inside ``window`` (possibly approximate for learned indices)."""

    @abc.abstractmethod
    def knn_query(self, x: float, y: float, k: int) -> np.ndarray:
        """Reported k nearest neighbours (possibly approximate)."""

    @abc.abstractmethod
    def insert(self, x: float, y: float) -> None:
        """Insert a point."""

    @abc.abstractmethod
    def delete(self, x: float, y: float) -> bool:
        """Delete a point."""

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Index size."""

    @property
    @abc.abstractmethod
    def stats(self) -> AccessStats:
        """Shared access counters (reset by the runner around measurements)."""

    def extra_metrics(self) -> dict:
        """Index-specific metadata (height, error bounds, model count, ...)."""
        return {}

    def attach_cache(self, cache) -> None:
        """Install a :class:`~repro.storage.PageCache` on the wrapped index."""
        self.wrapped.attach_cache(cache)

    @property
    def cache(self):
        """The wrapped index's page cache (None when uncached)."""
        return getattr(self.wrapped, "cache", None)


class BaselineAdapter(IndexAdapter):
    """Pass-through adapter for the baseline indices."""

    def __init__(self, index: SpatialIndex, name: Optional[str] = None):
        self._index = index
        self.name = name if name is not None else index.name

    def point_query(self, x: float, y: float) -> bool:
        return self._index.contains(x, y)

    def window_query(self, window: Rect) -> np.ndarray:
        return self._index.window_query(window)

    def knn_query(self, x: float, y: float, k: int) -> np.ndarray:
        return self._index.knn_query(x, y, k)

    def insert(self, x: float, y: float) -> None:
        self._index.insert(x, y)

    def delete(self, x: float, y: float) -> bool:
        return self._index.delete(x, y)

    def size_bytes(self) -> int:
        return self._index.size_bytes()

    @property
    def supports_exact_results(self) -> bool:
        return bool(getattr(self._index, "supports_exact_results", True))

    @property
    def stats(self) -> AccessStats:
        return self._index.stats

    def extra_metrics(self) -> dict:
        extras: dict = {}
        if hasattr(self._index, "height"):
            extras["height"] = self._index.height
        if hasattr(self._index, "error_bounds"):
            extras["error_bounds"] = self._index.error_bounds()
        if hasattr(self._index, "n_models"):
            extras["n_models"] = self._index.n_models
        return extras

    @property
    def wrapped(self) -> SpatialIndex:
        return self._index


class RSMIAdapter(IndexAdapter):
    """RSMI with the paper's approximate window/kNN algorithms (Algorithms 2–3)."""

    name = "RSMI"

    def __init__(self, index: RSMI):
        self._index = index

    def point_query(self, x: float, y: float) -> bool:
        return self._index.contains(x, y)

    def window_query(self, window: Rect) -> np.ndarray:
        return self._index.window_query(window).points

    def knn_query(self, x: float, y: float, k: int) -> np.ndarray:
        return self._index.knn_query(x, y, k).points

    def insert(self, x: float, y: float) -> None:
        self._index.insert(x, y)

    def delete(self, x: float, y: float) -> bool:
        return self._index.delete(x, y)

    def size_bytes(self) -> int:
        return self._index.size_bytes()

    @property
    def stats(self) -> AccessStats:
        return self._index.stats

    def extra_metrics(self) -> dict:
        return {
            "height": self._index.height,
            "n_models": self._index.n_models,
            "error_bounds": self._index.error_bounds(),
        }

    @property
    def wrapped(self) -> RSMI:
        return self._index


class RSMIExactAdapter(RSMIAdapter):
    """RSMIa: the same RSMI structure answering window/kNN queries exactly via MBRs."""

    name = "RSMIa"
    prefers_exact_queries = True
    supports_exact_results = True

    def window_query(self, window: Rect) -> np.ndarray:
        return self._index.window_query_exact(window).points

    def knn_query(self, x: float, y: float, k: int) -> np.ndarray:
        return self._index.knn_query_exact(x, y, k).points


def build_index_suite(
    points: np.ndarray,
    index_names: Sequence[str] = INDEX_NAMES,
    block_capacity: int = 100,
    partition_threshold: int = 10_000,
    training: Optional[TrainingConfig] = None,
    seed: int = 0,
) -> dict[str, IndexAdapter]:
    """Build the requested indices over ``points`` and return name -> adapter.

    ``RSMI`` and ``RSMIa`` share a single built RSMI instance (they differ only
    in the query algorithm), matching the paper's setup.
    """
    training = training if training is not None else TrainingConfig()
    adapters: dict[str, IndexAdapter] = {}
    rsmi_instance: Optional[RSMI] = None

    def get_rsmi() -> RSMI:
        nonlocal rsmi_instance
        if rsmi_instance is None:
            config = RSMIConfig(
                block_capacity=block_capacity,
                partition_threshold=partition_threshold,
                training=training,
                seed=seed,
            )
            rsmi_instance = RSMI(config).build(points)
        return rsmi_instance

    for name in index_names:
        if name == "RSMI":
            adapters[name] = RSMIAdapter(get_rsmi())
        elif name == "RSMIa":
            adapters[name] = RSMIExactAdapter(get_rsmi())
        elif name == "ZM":
            config = ZMConfig(block_capacity=block_capacity, training=training, seed=seed)
            adapters[name] = BaselineAdapter(ZMIndex(config).build(points))
        elif name == "Grid":
            adapters[name] = BaselineAdapter(GridFile(block_capacity=block_capacity).build(points))
        elif name == "KDB":
            adapters[name] = BaselineAdapter(KDBTree(block_capacity=block_capacity).build(points))
        elif name == "HRR":
            adapters[name] = BaselineAdapter(HRRTree(block_capacity=block_capacity).build(points))
        elif name == "RR*":
            adapters[name] = BaselineAdapter(RStarTree(block_capacity=block_capacity).build(points))
        else:
            raise ValueError(f"unknown index name: {name!r}; available: {INDEX_NAMES}")
    return adapters
