"""Exporting experiment results to CSV and JSON.

The benchmark harness prints aligned text tables; downstream analysis
(plotting the figures, diffing runs) is easier from machine-readable files.
These helpers write any :class:`~repro.experiments.base.ExperimentResult` (or
a plain header+rows pair) to CSV or JSON, and can dump a whole collection of
results into a directory in one call.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["write_csv", "write_json", "export_results"]


def write_csv(path: str | Path, header: Sequence[str], rows: Iterable[Sequence]) -> Path:
    """Write ``rows`` under ``header`` as a CSV file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(header))
        for row in rows:
            writer.writerow(list(row))
    return path


def write_json(path: str | Path, result) -> Path:
    """Write an ExperimentResult-like object as JSON (header, rows, notes, metadata)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "experiment_id": getattr(result, "experiment_id", None),
        "title": getattr(result, "title", None),
        "paper_reference": getattr(result, "paper_reference", None),
        "header": list(result.header),
        "rows": [list(row) for row in result.rows],
        "notes": list(getattr(result, "notes", [])),
    }
    path.write_text(json.dumps(document, indent=2, default=_jsonify), encoding="utf-8")
    return path


def export_results(results: Iterable, directory: str | Path, formats: Sequence[str] = ("csv", "json")) -> list[Path]:
    """Export several experiment results into ``directory``.

    One file per result and format is written, named after the experiment id.
    Returns the list of paths written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for result in results:
        experiment_id = getattr(result, "experiment_id", "experiment")
        if "csv" in formats:
            written.append(write_csv(directory / f"{experiment_id}.csv", result.header, result.rows))
        if "json" in formats:
            written.append(write_json(directory / f"{experiment_id}.json", result))
    return written


def _jsonify(value):
    """Fallback serialiser for NumPy scalars and other non-JSON-native values."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)
