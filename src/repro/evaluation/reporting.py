"""Plain-text rendering of experiment results.

Every experiment produces a header and a list of rows; :func:`format_table`
renders them as an aligned monospace table so the benchmark harness can print
the same rows/series the paper's tables and figures report.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value, precision: int = 3) -> str:
    """Human-readable cell formatting (floats trimmed, None blank)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    header: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render ``rows`` under ``header`` as an aligned text table."""
    rendered_rows = [[format_value(cell, precision) for cell in row] for row in rows]
    widths = [len(str(column)) for column in header]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [str(cell).ljust(widths[i]) for i, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|" + "|".join("-" * (width + 2) for width in widths) + "|"
    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(column) for column in header]))
    lines.append(separator)
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)
