"""Experiment harness: adapters, metrics, runner and table rendering.

The paper's evaluation sweeps six index structures over five data
distributions and several workload parameters, reporting per-query response
time, block accesses and (for the learned indices) recall.  This package
provides the machinery the :mod:`repro.experiments` modules use to regenerate
each table and figure:

* :mod:`repro.evaluation.adapters` — a uniform facade over RSMI, RSMIa and
  the baselines,
* :mod:`repro.evaluation.metrics` — recall and aggregate statistics,
* :mod:`repro.evaluation.runner` — builds index suites and measures query
  workloads,
* :mod:`repro.evaluation.reporting` — plain-text table rendering of results.
"""

from repro.evaluation.adapters import (
    IndexAdapter,
    BaselineAdapter,
    RSMIAdapter,
    RSMIExactAdapter,
    build_index_suite,
)
from repro.evaluation.metrics import knn_recall, window_recall
from repro.evaluation.runner import (
    BuildReport,
    QueryMetrics,
    SuiteConfig,
    measure_insertions,
    measure_knn_queries,
    measure_point_queries,
    measure_window_queries,
)
from repro.evaluation.reporting import format_table
from repro.evaluation.export import export_results, write_csv, write_json

__all__ = [
    "export_results",
    "write_csv",
    "write_json",
    "IndexAdapter",
    "BaselineAdapter",
    "RSMIAdapter",
    "RSMIExactAdapter",
    "build_index_suite",
    "knn_recall",
    "window_recall",
    "SuiteConfig",
    "BuildReport",
    "QueryMetrics",
    "measure_point_queries",
    "measure_window_queries",
    "measure_knn_queries",
    "measure_insertions",
    "format_table",
]
