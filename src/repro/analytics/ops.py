"""The unified query-operation protocol: ``QueryRequest`` → ``QueryResult``.

Point, window and kNN queries grew up as three parallel method families on
the engines, and the aggregate operators would have made it four.  Instead,
every operation now flows through one protocol:

* :class:`QueryRequest` — kind (``point``/``window``/``knn``/``aggregate``)
  plus its payload (query points, windows, ``k``, or
  :class:`AggregateSpec` list),
* ``engine.execute(request)`` — implemented by :class:`BatchQueryEngine`,
  :class:`ShardedBatchEngine` and :class:`ParallelShardEngine`,
* :class:`QueryResult` — per-op values in input order plus one
  :class:`~repro.storage.stats.AccessSummary` and the per-op latency
  attribution the engines already computed.

The legacy entry points (``point_queries``/``window_queries``/
``knn_queries``) survive as thin deprecated shims over the same internals.

:class:`AggregateSpec` also owns the push-down mechanics for its operator:
``new_partial()`` / ``fold(partial, points)`` / ``finalize(partial)``, so
blocks, shards and serving workers all aggregate through the exact same
code.  :func:`exact_aggregate` is the independent brute-force reference the
oracle and the differential tests check against.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.analytics.attributes import attribute_values
from repro.analytics.partials import (
    DEFAULT_QUANTILE_CAPACITY,
    make_partial,
)
from repro.geometry import Rect
from repro.storage.stats import AccessSummary

__all__ = [
    "AGGREGATE_OPS",
    "OPERATOR_KINDS",
    "AggregateSpec",
    "AggregateOutcome",
    "QueryRequest",
    "QueryResult",
    "exact_aggregate",
    "quantile_rank_distance",
]

#: the aggregate operators the engines push down to blocks
AGGREGATE_OPS = ("count", "sum", "mean", "quantile", "top-k")

#: every operation kind that flows through ``engine.execute``
OPERATOR_KINDS = ("point", "window", "knn", "aggregate")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate operation: an operator applied over a window."""

    op: str
    window: Rect
    #: quantile fraction in [0, 1] (``quantile`` only)
    q: float = 0.5
    #: result size (``top-k`` only)
    k: int = 1
    #: keys the derived attribute column (see :mod:`repro.analytics.attributes`)
    attribute_seed: int = 0
    #: retained-value budget of the quantile sketch
    quantile_capacity: int = DEFAULT_QUANTILE_CAPACITY

    def __post_init__(self) -> None:
        if self.op not in AGGREGATE_OPS:
            raise ValueError(
                f"unknown aggregate op {self.op!r}; expected one of {AGGREGATE_OPS}"
            )
        if not isinstance(self.window, Rect):
            raise TypeError("aggregate window must be a Rect")
        if not 0.0 <= self.q <= 1.0:
            raise ValueError("quantile fraction q must be in [0, 1]")
        if self.k < 1:
            raise ValueError("top-k needs k >= 1")

    # -- push-down mechanics --------------------------------------------
    def new_partial(self):
        """A fresh empty partial for this operator."""
        return make_partial(self.op, k=self.k, capacity=self.quantile_capacity)

    def fold(self, partial, points):
        """Fold the window-filtered ``points`` (n, 2) into ``partial``."""
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
        if pts.shape[0] == 0:
            return partial
        return partial.fold(pts, attribute_values(pts, self.attribute_seed))

    def finalize(self, partial) -> "AggregateOutcome":
        """Turn a fully merged partial into this operator's outcome."""
        if self.op == "count":
            return AggregateOutcome(self.op, partial.count, float(partial.count))
        if self.op == "sum":
            return AggregateOutcome(self.op, partial.count, partial.total)
        if self.op == "mean":
            value = partial.total / partial.count if partial.count else 0.0
            return AggregateOutcome(self.op, partial.count, value)
        if self.op == "quantile":
            return AggregateOutcome(
                self.op,
                partial.count,
                partial.quantile(self.q),
                max_rank_error=partial.max_rank_error,
            )
        items = tuple(tuple(row) for row in partial.top_items())
        return AggregateOutcome(self.op, partial.count, None, items=items)


@dataclass(frozen=True)
class AggregateOutcome:
    """The O(1)-sized answer of one aggregate operation."""

    op: str
    #: number of points the operator saw inside the window
    count: int
    #: scalar answer (count/sum/mean/quantile); None for top-k and for a
    #: quantile over an empty window
    value: float | None
    #: ``top-k`` rows ``(value, x, y)`` best-first; None for scalar ops
    items: tuple[tuple[float, float, float], ...] | None = None
    #: self-reported worst-case rank error (quantile only, 0 = exact)
    max_rank_error: int = 0


class QueryRequest:
    """One batched operation: a kind plus its payload.

    Build with the classmethods — they normalise payloads (point arrays to
    float64 ``(n, 2)``, window/spec sequences to tuples) so engines can
    consume them without re-validation.
    """

    __slots__ = ("kind", "points", "windows", "k", "aggregates")

    def __init__(self, kind, points=None, windows=None, k=1, aggregates=None):
        if kind not in OPERATOR_KINDS:
            raise ValueError(
                f"unknown operation kind {kind!r}; expected one of {OPERATOR_KINDS}"
            )
        self.kind = kind
        self.points = points
        self.windows = windows
        self.k = k
        self.aggregates = aggregates

    @classmethod
    def for_points(cls, points) -> "QueryRequest":
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
        return cls("point", points=pts)

    @classmethod
    def for_windows(cls, windows: Sequence[Rect]) -> "QueryRequest":
        return cls("window", windows=tuple(windows))

    @classmethod
    def for_knn(cls, points, k: int) -> "QueryRequest":
        if k < 1:
            raise ValueError("k must be >= 1")
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
        return cls("knn", points=pts, k=int(k))

    @classmethod
    def for_aggregates(cls, specs: Sequence[AggregateSpec]) -> "QueryRequest":
        specs = tuple(specs)
        for spec in specs:
            if not isinstance(spec, AggregateSpec):
                raise TypeError("aggregate payload must be AggregateSpec instances")
        return cls("aggregate", aggregates=specs)

    @property
    def n_ops(self) -> int:
        if self.kind in ("point", "knn"):
            return int(self.points.shape[0])
        if self.kind == "window":
            return len(self.windows)
        return len(self.aggregates)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"QueryRequest(kind={self.kind!r}, n_ops={self.n_ops})"


@dataclass
class QueryResult:
    """Per-op answers plus unified accounting for one executed request."""

    kind: str
    #: one entry per op, in request order (bool / point array / outcome)
    values: list = field(default_factory=list)
    #: unified read accounting (None when the index exposes no stats)
    access: AccessSummary | None = None
    #: per-op latency percentiles for the batch
    latency: object | None = None
    #: latency attributed per shard id (sharded engines, point/window only)
    per_shard_latency: dict | None = None

    @classmethod
    def from_batch(cls, kind: str, batch) -> "QueryResult":
        """Wrap a legacy :class:`~repro.core.batch.BatchResult`."""
        return cls(
            kind=kind,
            values=list(batch.results),
            access=batch.access,
            latency=batch.latency,
            per_shard_latency=batch.per_shard_latency,
        )

    @property
    def n_ops(self) -> int:
        return len(self.values)

    #: alias: point/window/knn requests call their ops "queries"
    n_queries = n_ops

    @property
    def avg_block_accesses(self) -> float | None:
        """Logical reads per op (None without stats or on an empty batch)."""
        if self.access is None or self.access.logical_reads is None or not self.values:
            return None
        return self.access.logical_reads / len(self.values)


def warn_deprecated_entry_point(old: str, new: str) -> None:
    """Emit the uniform DeprecationWarning of the legacy engine shims."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def exact_aggregate(spec: AggregateSpec, points) -> AggregateOutcome:
    """Brute-force reference answer of ``spec`` over the full point set.

    Scans every row of ``points``, filters by the spec's window and
    computes the operator directly (true nearest-rank quantile, full
    lexicographic top-k) — deliberately *not* through the partial-merge
    machinery, so differential tests compare two independent
    implementations.
    """
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
    if pts.shape[0]:
        pts = pts[spec.window.contains_points(pts)]
    values = attribute_values(pts, spec.attribute_seed)
    count = int(values.size)
    if spec.op == "count":
        return AggregateOutcome(spec.op, count, float(count))
    if spec.op == "sum":
        return AggregateOutcome(spec.op, count, float(values.sum()) if count else 0.0)
    if spec.op == "mean":
        mean = float(values.sum()) / count if count else 0.0
        return AggregateOutcome(spec.op, count, mean)
    if spec.op == "quantile":
        if count == 0:
            return AggregateOutcome(spec.op, 0, None)
        rank = int(round(spec.q * (count - 1)))
        value = float(np.sort(values)[rank])
        return AggregateOutcome(spec.op, count, value)
    order = np.lexsort((pts[:, 1], pts[:, 0], -values))[: spec.k]
    items = tuple(
        (float(values[i]), float(pts[i, 0]), float(pts[i, 1])) for i in order
    )
    return AggregateOutcome(spec.op, count, None, items=items)


def quantile_rank_distance(value: float, sorted_values: np.ndarray, q: float) -> int:
    """How many ranks ``value`` sits from the true ``q``-quantile position.

    ``sorted_values`` is the *true* sorted attribute column of the window.
    Returns 0 when the target rank falls inside ``value``'s run of equal
    values; the distance to the nearest end of that run otherwise.  Used by
    the differential tests to check a sketch answer against its
    self-reported ``max_rank_error``.
    """
    n = int(len(sorted_values))
    if n == 0:
        return 0
    target = int(round(q * (n - 1)))
    left = int(np.searchsorted(sorted_values, value, side="left"))
    right = int(np.searchsorted(sorted_values, value, side="right")) - 1
    if right < left:
        # value absent from the true column (only possible for unsound
        # inputs): distance from the insertion point
        return abs(left - target)
    if left <= target <= right:
        return 0
    return min(abs(left - target), abs(right - target))
