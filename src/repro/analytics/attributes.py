"""Deterministic per-point attributes for aggregate queries.

The paper's datasets carry coordinates only, but the aggregate operators
(``sum``/``mean``/``quantile``/``top-k``) need a measure to aggregate.  We
derive one *from the coordinates themselves* with a keyed integer mix of the
two float64 bit patterns, so

* every component — a block scanning its points, a shard merging block
  partials, the router merging shard partials, the brute-force oracle —
  computes the **same** value for the same point without shipping an extra
  column around, and
* the value is quantised to 20 fractional bits in ``[0, 1)``.  Every
  attribute is an exact multiple of 2^-20, so any sum of fewer than ~2^33
  of them is an integer multiple of 2^-20 below 2^53 — i.e. **exactly
  representable in float64 regardless of summation order**.  That is what
  lets the differential tests demand bit-exact ``sum``/``mean`` agreement
  between the oracle and any partial-merge tree (per block, per shard, per
  worker process).

``attribute_seed`` keys the mix so scenarios can draw independent attribute
"columns" from the same point set.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ATTRIBUTE_FRACTION_BITS", "attribute_value", "attribute_values"]

#: attribute values are exact multiples of 2**-ATTRIBUTE_FRACTION_BITS
ATTRIBUTE_FRACTION_BITS = 20

_SCALE = float(1 << ATTRIBUTE_FRACTION_BITS)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)


def _mix(z: np.ndarray) -> np.ndarray:
    """SplitMix64 finaliser, vectorised over a uint64 array."""
    z = (z ^ (z >> np.uint64(30))) * _MIX_1
    z = (z ^ (z >> np.uint64(27))) * _MIX_2
    return z ^ (z >> np.uint64(31))


def attribute_values(points, seed: int = 0) -> np.ndarray:
    """The attribute value of every ``(x, y)`` row of ``points``.

    Returns a float64 array of multiples of 2^-20 in ``[0, 1)``.  The value
    depends only on the exact float64 bit patterns of the coordinates and on
    ``seed`` — no global state, no RNG stream to keep in sync.
    """
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
    if pts.shape[0] == 0:
        return np.empty(0, dtype=np.float64)
    bits_x = np.ascontiguousarray(pts[:, 0]).view(np.uint64)
    bits_y = np.ascontiguousarray(pts[:, 1]).view(np.uint64)
    with np.errstate(over="ignore"):
        key = np.uint64(np.uint64(seed & 0xFFFFFFFFFFFFFFFF) * _GOLDEN)
        mixed = _mix(_mix(bits_x ^ key) ^ bits_y)
    return (mixed >> np.uint64(64 - ATTRIBUTE_FRACTION_BITS)).astype(np.float64) / _SCALE


def attribute_value(x: float, y: float, seed: int = 0) -> float:
    """Scalar convenience wrapper around :func:`attribute_values`."""
    return float(attribute_values(np.array([[x, y]], dtype=np.float64), seed)[0])
