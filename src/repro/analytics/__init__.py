"""Analytic query surface: push-down aggregates behind the operator API.

Production spatial services answer aggregate questions — how many points in
this region, the sum/mean of a measure, an in-region quantile, the top-k
items by attribute — far more often than they enumerate raw points.  This
package adds those operators to every engine tier without materialising
window results across any boundary:

* :mod:`repro.analytics.attributes` — a deterministic keyed attribute
  column derived from the coordinates (exact multiples of 2^-20, so sums
  are order-independent and bit-exact),
* :mod:`repro.analytics.partials` — the mergeable partial-aggregate state
  (count/sum pairs, a deterministic mergeable quantile summary with a
  self-tracked rank-error bound, bounded top-k lists), all picklable so
  the parallel serving tier ships partials instead of point sets,
* :mod:`repro.analytics.ops` — the unified ``QueryRequest`` /
  ``QueryResult`` operation protocol all four operation kinds flow
  through, plus :func:`~repro.analytics.ops.exact_aggregate`, the
  independent brute-force reference used by the oracle shadows.
"""

from repro.analytics.attributes import (
    ATTRIBUTE_FRACTION_BITS,
    attribute_value,
    attribute_values,
)
from repro.analytics.ops import (
    AGGREGATE_OPS,
    OPERATOR_KINDS,
    AggregateOutcome,
    AggregateSpec,
    QueryRequest,
    QueryResult,
    exact_aggregate,
    quantile_rank_distance,
)
from repro.analytics.partials import (
    DEFAULT_QUANTILE_CAPACITY,
    CountSumPartial,
    QuantileSummary,
    TopKPartial,
    make_partial,
)

__all__ = [
    "AGGREGATE_OPS",
    "OPERATOR_KINDS",
    "ATTRIBUTE_FRACTION_BITS",
    "AggregateOutcome",
    "AggregateSpec",
    "QueryRequest",
    "QueryResult",
    "exact_aggregate",
    "quantile_rank_distance",
    "attribute_value",
    "attribute_values",
    "DEFAULT_QUANTILE_CAPACITY",
    "CountSumPartial",
    "QuantileSummary",
    "TopKPartial",
    "make_partial",
]
