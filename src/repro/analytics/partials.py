"""Mergeable partial-aggregate state.

Push-down aggregation never ships point sets upward: each block (or each
shard's window scan, or each serving worker) folds the points it touched
into a small **partial**, and partials merge pairwise on the way up —
block → shard → router → process boundary.  Three shapes cover the five
operators:

* :class:`CountSumPartial` — ``count``/``sum``/``mean``.  Attributes are
  exact multiples of 2^-20 (:mod:`repro.analytics.attributes`), so sums are
  exact in float64 and **merge order cannot change the answer** — the
  differential tests demand bit-exact agreement with the brute-force
  oracle across every merge topology.
* :class:`QuantileSummary` — a deterministic mergeable quantile sketch:
  sorted values with one power-of-two weight, halved (keep every other
  element, alternating parity) whenever the summary outgrows its capacity.
  Unlike :class:`repro.workloads.latency.PercentileSketch` (reservoir
  sampling, not mergeable) it merges associatively and **tracks its own
  worst-case rank error** (``max_rank_error``): every compaction of a
  weight-``w`` summary perturbs any rank by at most ``w``, and the bound
  accumulates additively across merges.  Below capacity it is exact.
* :class:`TopKPartial` — a bounded heap of the ``k`` largest attribute
  values, with the deterministic tie-break ``(-value, x, y)`` so every
  merge order and the oracle produce the identical item list.

All three are plain picklable objects — :class:`ParallelShardEngine` ships
them across the process boundary instead of result point sets.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DEFAULT_QUANTILE_CAPACITY",
    "CountSumPartial",
    "QuantileSummary",
    "TopKPartial",
    "make_partial",
]

#: retained-value budget of a QuantileSummary (exact below this many points)
DEFAULT_QUANTILE_CAPACITY = 512


class CountSumPartial:
    """Count and exact attribute sum of the points folded so far."""

    __slots__ = ("count", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    def fold(self, points, values) -> "CountSumPartial":
        values = np.asarray(values, dtype=np.float64).ravel()
        self.count += int(values.size)
        if values.size:
            # attributes are multiples of 2^-20, so this sum is exact in
            # float64 for any realistic count — order independent by design
            self.total += float(values.sum())
        return self

    def merge(self, other: "CountSumPartial") -> "CountSumPartial":
        self.count += other.count
        self.total += other.total
        return self

    def __getstate__(self):
        return (self.count, self.total)

    def __setstate__(self, state):
        self.count, self.total = state


class QuantileSummary:
    """Deterministic mergeable quantile sketch with a tracked rank bound."""

    __slots__ = ("capacity", "values", "weight", "count", "error_bound", "_parity")

    def __init__(self, capacity: int = DEFAULT_QUANTILE_CAPACITY) -> None:
        if capacity < 8:
            raise ValueError("quantile summary capacity must be >= 8")
        self.capacity = int(capacity)
        self.values = np.empty(0, dtype=np.float64)
        #: every retained value stands for ``weight`` stream values
        self.weight = 1
        #: exact number of stream values folded in (never approximated)
        self.count = 0
        #: cumulative worst-case rank error from compactions
        self.error_bound = 0
        self._parity = 0

    # -- construction ----------------------------------------------------
    def fold(self, points, values) -> "QuantileSummary":
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return self
        fresh = QuantileSummary(self.capacity)
        fresh.values = np.sort(values)
        fresh.count = int(values.size)
        while fresh.values.size > fresh.capacity:
            fresh._compact()
        return self.merge(fresh)

    def _compact(self) -> None:
        """Halve the summary: keep every other value, double the weight.

        Dropping alternate elements of a sorted run of weight-``w`` values
        shifts any estimated rank by at most ``w`` — that is the increment
        added to :attr:`error_bound`.  The surviving parity alternates so
        repeated compactions do not systematically bias one tail.
        """
        self.error_bound += self.weight
        if self.values.size > 1:
            self.values = self.values[self._parity :: 2]
            self._parity ^= 1
        self.weight *= 2

    def merge(self, other: "QuantileSummary") -> "QuantileSummary":
        if other.count == 0:
            return self
        if self.count == 0:
            self.values = other.values.copy()
            self.weight = other.weight
            self.count = other.count
            self.error_bound = other.error_bound
            self._parity = other._parity
            return self
        while self.weight < other.weight:
            self._compact()
        # align the (logically copied) other summary up to our weight
        values, weight, error, parity = (
            other.values,
            other.weight,
            other.error_bound,
            other._parity,
        )
        while weight < self.weight:
            error += weight
            if values.size > 1:
                values = values[parity::2]
                parity ^= 1
            weight *= 2
        self.values = np.sort(np.concatenate([self.values, values]))
        self.count += other.count
        self.error_bound += error
        while self.values.size > self.capacity:
            self._compact()
        return self

    # -- answers ---------------------------------------------------------
    @property
    def max_rank_error(self) -> int:
        """Worst-case |true rank − target rank| of :meth:`quantile`'s answer.

        ``error_bound`` covers every compaction; ``weight - 1`` covers the
        final index rounding (each retained value spans ``weight``
        consecutive stream ranks, so an uncompacted weight-1 summary is
        exact and reports 0).
        """
        return self.error_bound + self.weight - 1

    def quantile(self, q: float) -> float | None:
        """The value whose rank is closest to ``q * (count - 1)``."""
        if self.count == 0 or self.values.size == 0:
            return None
        target = float(q) * (self.count - 1)
        index = int(round((target - (self.weight - 1) / 2.0) / self.weight))
        index = min(max(index, 0), self.values.size - 1)
        return float(self.values[index])

    def __getstate__(self):
        return (
            self.capacity,
            self.values,
            self.weight,
            self.count,
            self.error_bound,
            self._parity,
        )

    def __setstate__(self, state):
        (
            self.capacity,
            self.values,
            self.weight,
            self.count,
            self.error_bound,
            self._parity,
        ) = state


class TopKPartial:
    """The ``k`` largest attribute values seen so far, with their points.

    Items order (and survive truncation) by ``(-value, x, y)`` — a total
    order over distinct points — so any merge schedule yields the same
    list the brute-force oracle computes.
    """

    __slots__ = ("k", "items", "count")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("top-k needs k >= 1")
        self.k = int(k)
        self.items: list[tuple[float, float, float]] = []
        #: exact number of folded stream values (not just the retained k)
        self.count = 0

    def fold(self, points, values) -> "TopKPartial":
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return self
        self.count += int(values.size)
        self.items.extend(
            (-float(v), float(x), float(y)) for v, (x, y) in zip(values, pts)
        )
        self.items.sort()
        del self.items[self.k :]
        return self

    def merge(self, other: "TopKPartial") -> "TopKPartial":
        self.count += other.count
        self.items.extend(other.items)
        self.items.sort()
        del self.items[self.k :]
        return self

    def top_items(self) -> np.ndarray:
        """``(m, 3)`` array of ``[value, x, y]`` rows, best first (m <= k)."""
        if not self.items:
            return np.empty((0, 3), dtype=np.float64)
        return np.array([(-nv, x, y) for nv, x, y in self.items], dtype=np.float64)

    def __getstate__(self):
        return (self.k, self.items, self.count)

    def __setstate__(self, state):
        self.k, self.items, self.count = state


def make_partial(op: str, *, k: int = 1, capacity: int = DEFAULT_QUANTILE_CAPACITY):
    """A fresh, empty partial for aggregate operator ``op``."""
    if op in ("count", "sum", "mean"):
        return CountSumPartial()
    if op == "quantile":
        return QuantileSummary(capacity)
    if op == "top-k":
        return TopKPartial(k)
    raise ValueError(f"unknown aggregate operator: {op!r}")
