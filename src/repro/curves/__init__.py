"""Space-filling curves (SFCs).

The paper orders points by mapping their (rank-space) grid coordinates to
one-dimensional curve values with an SFC (Section 3.1).  Two curves are
supported, matching the paper:

* :class:`~repro.curves.zcurve.ZCurve` — the Z-curve (Morton order) obtained
  by interleaving the bits of the two coordinates,
* :class:`~repro.curves.hilbert.HilbertCurve` — the Hilbert curve, which the
  paper reports as giving better query performance for RSMI.

Both expose the same interface: ``encode(x, y) -> value`` and
``decode(value) -> (x, y)`` over a ``2**order x 2**order`` grid, plus
vectorised ``encode_many`` over NumPy arrays.
"""

from repro.curves.base import SpaceFillingCurve, curve_by_name
from repro.curves.zcurve import ZCurve
from repro.curves.hilbert import HilbertCurve

__all__ = ["SpaceFillingCurve", "ZCurve", "HilbertCurve", "curve_by_name"]
