"""Common interface for two-dimensional space-filling curves."""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["SpaceFillingCurve", "curve_by_name"]


class SpaceFillingCurve(abc.ABC):
    """A bijection between a ``2**order x 2**order`` grid and ``[0, 4**order)``.

    Subclasses implement :meth:`encode` (cell coordinates to curve value) and
    :meth:`decode` (curve value back to cell coordinates).  The vectorised
    :meth:`encode_many` has a generic NumPy implementation that subclasses may
    override for speed.
    """

    #: short name used in configuration ("hilbert" / "z")
    name: str = "abstract"

    def __init__(self, order: int):
        if order < 1:
            raise ValueError(f"curve order must be >= 1, got {order}")
        if order > 31:
            raise ValueError(f"curve order too large for 64-bit curve values: {order}")
        self.order = int(order)
        #: number of cells along each axis
        self.side = 1 << self.order
        #: total number of cells (and distinct curve values)
        self.n_cells = self.side * self.side

    # -- abstract API ------------------------------------------------------

    @abc.abstractmethod
    def encode(self, x: int, y: int) -> int:
        """Curve value of grid cell ``(x, y)``, both in ``[0, side)``."""

    @abc.abstractmethod
    def decode(self, value: int) -> tuple[int, int]:
        """Grid cell ``(x, y)`` of curve value ``value`` in ``[0, n_cells)``."""

    # -- vectorised helpers -------------------------------------------------

    def encode_many(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Curve values for parallel arrays of cell coordinates."""
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        if xs.shape != ys.shape:
            raise ValueError("xs and ys must have the same shape")
        self._check_bounds(xs, ys)
        out = np.empty(xs.shape, dtype=np.int64)
        flat_x = xs.ravel()
        flat_y = ys.ravel()
        flat_out = out.ravel()
        for i in range(flat_x.size):
            flat_out[i] = self.encode(int(flat_x[i]), int(flat_y[i]))
        return out

    def decode_many(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Cell coordinates for an array of curve values."""
        values = np.asarray(values, dtype=np.int64)
        xs = np.empty(values.shape, dtype=np.int64)
        ys = np.empty(values.shape, dtype=np.int64)
        flat_v = values.ravel()
        flat_x = xs.ravel()
        flat_y = ys.ravel()
        for i in range(flat_v.size):
            x, y = self.decode(int(flat_v[i]))
            flat_x[i] = x
            flat_y[i] = y
        return xs, ys

    # -- validation ---------------------------------------------------------

    def _check_cell(self, x: int, y: int) -> None:
        if not (0 <= x < self.side and 0 <= y < self.side):
            raise ValueError(
                f"cell ({x}, {y}) outside the {self.side}x{self.side} grid of order {self.order}"
            )

    def _check_value(self, value: int) -> None:
        if not 0 <= value < self.n_cells:
            raise ValueError(f"curve value {value} outside [0, {self.n_cells})")

    def _check_bounds(self, xs: np.ndarray, ys: np.ndarray) -> None:
        if xs.size == 0:
            return
        if xs.min() < 0 or ys.min() < 0 or xs.max() >= self.side or ys.max() >= self.side:
            raise ValueError(
                f"cell coordinates outside the {self.side}x{self.side} grid of order {self.order}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(order={self.order})"


def curve_by_name(name: str, order: int) -> SpaceFillingCurve:
    """Instantiate a curve from its configuration name (``"hilbert"`` or ``"z"``)."""
    from repro.curves.hilbert import HilbertCurve
    from repro.curves.zcurve import ZCurve

    normalized = name.strip().lower()
    if normalized in ("hilbert", "h"):
        return HilbertCurve(order)
    if normalized in ("z", "zcurve", "z-curve", "morton"):
        return ZCurve(order)
    raise ValueError(f"unknown space-filling curve: {name!r}")
