"""Hilbert curve.

The Hilbert curve preserves spatial locality better than the Z-curve and is
the default ordering of RSMI ("RSMI uses Hilbert-curves for ordering as these
yield better query performance than Z-curves", paper Section 6.1).

The implementation follows the classic iterative conversion between
distance-along-curve ``d`` and cell coordinates ``(x, y)`` with quadrant
rotations, plus a vectorised variant used when ordering large point sets.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve

__all__ = ["HilbertCurve"]


def _rotate(side: int, x: int, y: int, rx: int, ry: int) -> tuple[int, int]:
    """Rotate/flip a quadrant appropriately (scalar version)."""
    if ry == 0:
        if rx == 1:
            x = side - 1 - x
            y = side - 1 - y
        x, y = y, x
    return x, y


class HilbertCurve(SpaceFillingCurve):
    """Hilbert curve over a ``2**order x 2**order`` grid."""

    name = "hilbert"

    def encode(self, x: int, y: int) -> int:
        self._check_cell(x, y)
        rx = ry = 0
        d = 0
        s = self.side // 2
        while s > 0:
            rx = 1 if (x & s) > 0 else 0
            ry = 1 if (y & s) > 0 else 0
            d += s * s * ((3 * rx) ^ ry)
            x, y = _rotate(s, x, y, rx, ry)
            s //= 2
        return d

    def decode(self, value: int) -> tuple[int, int]:
        self._check_value(value)
        t = value
        x = y = 0
        s = 1
        while s < self.side:
            rx = 1 & (t // 2)
            ry = 1 & (t ^ rx)
            x, y = _rotate(s, x, y, rx, ry)
            x += s * rx
            y += s * ry
            t //= 4
            s *= 2
        return x, y

    def encode_many(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised Hilbert encoding of parallel coordinate arrays."""
        xs = np.asarray(xs, dtype=np.int64).copy()
        ys = np.asarray(ys, dtype=np.int64).copy()
        if xs.shape != ys.shape:
            raise ValueError("xs and ys must have the same shape")
        self._check_bounds(xs, ys)
        d = np.zeros(xs.shape, dtype=np.int64)
        s = self.side // 2
        while s > 0:
            rx = ((xs & s) > 0).astype(np.int64)
            ry = ((ys & s) > 0).astype(np.int64)
            d += s * s * ((3 * rx) ^ ry)
            # rotate: only where ry == 0
            rot = ry == 0
            flip = rot & (rx == 1)
            xs_f = xs.copy()
            ys_f = ys.copy()
            xs_f[flip] = s - 1 - xs[flip]
            ys_f[flip] = s - 1 - ys[flip]
            new_x = np.where(rot, ys_f, xs_f)
            new_y = np.where(rot, xs_f, ys_f)
            xs, ys = new_x, new_y
            s //= 2
        return d
