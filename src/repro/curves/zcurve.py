"""Z-curve (Morton order).

The Z-value of a cell is obtained by interleaving the bits of its x and y
coordinates (x bits occupy the even positions, y bits the odd positions).
This is the ordering used by the ZM baseline [46] and one of the two
orderings supported inside RSMI.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve

__all__ = ["ZCurve", "interleave_bits", "deinterleave_bits"]


def _part1by1(value: np.ndarray | int) -> np.ndarray | int:
    """Spread the lower 32 bits of ``value`` so that a zero sits between each bit."""
    v = np.array(value, dtype=np.uint64, copy=True)
    v &= np.uint64(0x00000000FFFFFFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return v


def _compact1by1(value: np.ndarray | int) -> np.ndarray | int:
    """Inverse of :func:`_part1by1`: collect the even-position bits."""
    v = np.array(value, dtype=np.uint64, copy=True)
    v &= np.uint64(0x5555555555555555)
    v = (v | (v >> np.uint64(1))) & np.uint64(0x3333333333333333)
    v = (v | (v >> np.uint64(2))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v >> np.uint64(4))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v >> np.uint64(8))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v >> np.uint64(16))) & np.uint64(0x00000000FFFFFFFF)
    return v


def interleave_bits(x: int, y: int) -> int:
    """Morton code of ``(x, y)``: x bits in even positions, y bits in odd positions."""
    return int(_part1by1(x)) | (int(_part1by1(y)) << 1)


def deinterleave_bits(code: int) -> tuple[int, int]:
    """Invert :func:`interleave_bits`."""
    x = int(_compact1by1(np.uint64(code)))
    y = int(_compact1by1(np.uint64(code) >> np.uint64(1)))
    return x, y


class ZCurve(SpaceFillingCurve):
    """Z-curve over a ``2**order x 2**order`` grid."""

    name = "z"

    def encode(self, x: int, y: int) -> int:
        self._check_cell(x, y)
        return interleave_bits(x, y)

    def decode(self, value: int) -> tuple[int, int]:
        self._check_value(value)
        return deinterleave_bits(value)

    def encode_many(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        if xs.shape != ys.shape:
            raise ValueError("xs and ys must have the same shape")
        self._check_bounds(xs, ys)
        codes = _part1by1(xs.astype(np.uint64)) | (_part1by1(ys.astype(np.uint64)) << np.uint64(1))
        return codes.astype(np.int64)

    def decode_many(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        values = np.asarray(values, dtype=np.uint64)
        xs = _compact1by1(values)
        ys = _compact1by1(values >> np.uint64(1))
        return xs.astype(np.int64), ys.astype(np.int64)
