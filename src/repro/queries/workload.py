"""Query workload generators (point, window, kNN)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import Rect

__all__ = [
    "generate_point_queries",
    "generate_window_queries",
    "generate_knn_queries",
    "QueryWorkload",
]


def generate_point_queries(points: np.ndarray, n_queries: int, seed: int = 0) -> np.ndarray:
    """Sample ``n_queries`` query points from the data set itself.

    The paper uses every data point as a point query; sampling from the data
    keeps the same "query the stored keys" semantics at configurable cost.
    """
    points = np.asarray(points, dtype=float)
    if points.shape[0] == 0:
        raise ValueError("cannot sample queries from an empty data set")
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, points.shape[0], size=n_queries)
    return points[idx].copy()


def generate_window_queries(
    points: np.ndarray,
    n_queries: int,
    area_fraction: float = 0.0001,
    aspect_ratio: float = 1.0,
    seed: int = 0,
    data_space: Rect | None = None,
) -> list[Rect]:
    """Window queries of a given area fraction and aspect ratio.

    Query centres are sampled from the data points so the workload follows
    the data distribution (paper Section 6.1).  ``area_fraction`` matches the
    paper's "query window size (%)" expressed as a fraction (e.g. 0.01 % ->
    0.0001).  Windows are clipped to the data space.
    """
    points = np.asarray(points, dtype=float)
    if points.shape[0] == 0:
        raise ValueError("cannot sample queries from an empty data set")
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    if area_fraction <= 0 or area_fraction > 1:
        raise ValueError("area_fraction must lie in (0, 1]")
    if aspect_ratio <= 0:
        raise ValueError("aspect_ratio must be positive")
    space = data_space if data_space is not None else Rect.unit()

    area = area_fraction * space.area
    # aspect ratio = width / height
    height = math.sqrt(area / aspect_ratio)
    width = area / height

    rng = np.random.default_rng(seed)
    centers = points[rng.integers(0, points.shape[0], size=n_queries)]
    windows: list[Rect] = []
    for cx, cy in centers:
        window = Rect.from_center(float(cx), float(cy), width, height)
        windows.append(window.clip_to(space))
    return windows


def generate_knn_queries(
    points: np.ndarray,
    n_queries: int,
    seed: int = 0,
    jitter: float = 0.0,
    data_space: Rect | None = None,
) -> np.ndarray:
    """kNN query points sampled from the data distribution.

    ``jitter`` adds small uniform noise so query points need not coincide
    with stored points; jittered queries are clipped to ``data_space``
    (default: the unit square) so they never leave the space the index
    covers.
    """
    queries = generate_point_queries(points, n_queries, seed=seed)
    if jitter > 0:
        space = data_space if data_space is not None else Rect.unit()
        rng = np.random.default_rng(seed + 1)
        queries = queries + rng.uniform(-jitter, jitter, size=queries.shape)
        queries[:, 0] = np.clip(queries[:, 0], space.xlo, space.xhi)
        queries[:, 1] = np.clip(queries[:, 1], space.ylo, space.yhi)
    return queries


@dataclass
class QueryWorkload:
    """A bundle of point, window and kNN queries over one data set."""

    point_queries: np.ndarray = field(default_factory=lambda: np.empty((0, 2)))
    window_queries: list[Rect] = field(default_factory=list)
    knn_queries: np.ndarray = field(default_factory=lambda: np.empty((0, 2)))
    k: int = 25

    @classmethod
    def for_dataset(
        cls,
        points: np.ndarray,
        n_point: int = 200,
        n_window: int = 50,
        n_knn: int = 50,
        area_fraction: float = 0.0001,
        aspect_ratio: float = 1.0,
        k: int = 25,
        seed: int = 0,
    ) -> "QueryWorkload":
        """Build the default mixed workload used by the experiment harness."""
        return cls(
            point_queries=generate_point_queries(points, n_point, seed=seed),
            window_queries=generate_window_queries(
                points, n_window, area_fraction=area_fraction, aspect_ratio=aspect_ratio, seed=seed + 1
            ),
            knn_queries=generate_knn_queries(points, n_knn, seed=seed + 2),
            k=k,
        )
