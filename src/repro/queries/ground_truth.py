"""Brute-force ground truth for recall measurements."""

from __future__ import annotations

import numpy as np

from repro.geometry import Rect, euclidean_many

__all__ = ["brute_force_window", "brute_force_knn"]


def brute_force_window(points: np.ndarray, window: Rect) -> np.ndarray:
    """All points inside ``window`` (exact answer), shape ``(m, 2)``."""
    points = np.asarray(points, dtype=float)
    if points.shape[0] == 0:
        return np.empty((0, 2), dtype=float)
    mask = window.contains_points(points)
    return points[mask]


def brute_force_knn(points: np.ndarray, x: float, y: float, k: int) -> np.ndarray:
    """The exact ``k`` nearest neighbours of ``(x, y)``, ordered by distance."""
    points = np.asarray(points, dtype=float)
    if k < 1:
        raise ValueError("k must be >= 1")
    if points.shape[0] == 0:
        return np.empty((0, 2), dtype=float)
    distances = euclidean_many((x, y), points)
    k = min(k, points.shape[0])
    idx = np.argpartition(distances, k - 1)[:k]
    idx = idx[np.argsort(distances[idx], kind="stable")]
    return points[idx]
