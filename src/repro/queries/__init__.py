"""Query workload generation and brute-force ground truth.

The paper generates 1 000 window / kNN queries per setting, positioned so
that they follow the data distribution, and reports average cost and recall
per query (Section 6.1).  This package provides the matching generators plus
exact brute-force evaluators used to measure recall.
"""

from repro.queries.workload import (
    QueryWorkload,
    generate_knn_queries,
    generate_point_queries,
    generate_window_queries,
)
from repro.queries.ground_truth import brute_force_knn, brute_force_window

__all__ = [
    "QueryWorkload",
    "generate_point_queries",
    "generate_window_queries",
    "generate_knn_queries",
    "brute_force_window",
    "brute_force_knn",
]
