"""Sharding policies: how the data space is partitioned across shards.

A :class:`ShardingPolicy` is a *total* function from coordinates to shard
ids — every point of the plane maps to exactly one shard, including points
exactly on partition boundaries (cells are half-open except at the data
space's far edges) and points outside the configured data space (they clamp
to the nearest boundary cell).  Totality is what makes shard routing
deterministic under churn: an insert and the later point query / delete for
the same key always land on the same shard.

Four policies ship:

* :class:`RegularGridPolicy` — an ``nx × ny`` grid of equal-sized cells;
  the simplest layout, best for uniform data.
* :class:`ZOrderRangePolicy` — cells of a fine ``2^order × 2^order`` grid
  are linearised along the Z-curve (:mod:`repro.curves.zcurve`) and split
  into ``n_shards`` contiguous Z-ranges, mirroring how distributed spatial
  stores range-partition Morton keys.  Shard regions are unions of cells,
  not rectangles.
* :class:`HilbertRangePolicy` — the same contiguous-range construction
  over the Hilbert curve (:mod:`repro.curves.hilbert`).  The Hilbert
  curve's better clustering (no Z-curve "jumps" across the space) keeps
  each shard's cells contiguous in the plane, so a spanning window
  intersects fewer shards than under Z-order ranges — the fan-out win the
  cache benchmarks gate.
* :class:`SampleBalancedPolicy` — recursive median splits (k-d style) over
  a sample of the data, producing rectangular regions with near-equal point
  counts; best for skewed data where a regular grid would leave most shards
  empty.

Every policy also answers the two routing questions the
:class:`~repro.sharding.router.ShardRouter` needs for query planning:
*which shards can contain an answer for this window* (data skipping — a
shard whose extent cannot intersect the window is never touched) and *how
close can this shard's region possibly be to a query point* (a MINDIST
lower bound used for best-first kNN shard expansion).
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

from repro.curves.hilbert import HilbertCurve
from repro.curves.zcurve import interleave_bits
from repro.geometry import Rect, mindist_point_rect

__all__ = [
    "ShardingPolicy",
    "RegularGridPolicy",
    "CurveRangePolicy",
    "ZOrderRangePolicy",
    "HilbertRangePolicy",
    "SampleBalancedPolicy",
    "SHARDING_POLICY_NAMES",
    "make_policy",
]

#: names accepted by :func:`make_policy` (and the CLI's ``--sharding-policy``)
SHARDING_POLICY_NAMES = ("grid", "zorder", "hilbert", "balanced")


class ShardingPolicy(abc.ABC):
    """Partition of the data space into ``n_shards`` disjoint regions."""

    #: short name used in reports ("grid", "zorder", "balanced")
    name: str = "abstract"

    def __init__(self, n_shards: int, data_space: Optional[Rect] = None):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.data_space = data_space if data_space is not None else Rect.unit()

    # -- routing primitives -------------------------------------------------

    @abc.abstractmethod
    def shard_of(self, x: float, y: float) -> int:
        """The shard id owning ``(x, y)``; total over the whole plane."""

    def shard_of_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`shard_of` over an ``(n, 2)`` array."""
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        return np.fromiter(
            (self.shard_of(float(x), float(y)) for x, y in points),
            dtype=np.int64,
            count=points.shape[0],
        )

    @abc.abstractmethod
    def shards_for_window(self, window: Rect) -> list[int]:
        """Ids of every shard whose region intersects ``window``.

        Must be complete (no shard holding an in-window point may be
        missing) and should be minimal (shards whose region cannot
        intersect are skipped — the data-skipping property).
        """

    @abc.abstractmethod
    def mindist(self, x: float, y: float, shard_id: int) -> float:
        """Lower bound on the distance from ``(x, y)`` to any point stored
        in ``shard_id``'s region (0 when the point lies inside it)."""

    @abc.abstractmethod
    def shard_extent(self, shard_id: int) -> Rect:
        """The MBR of the shard's region (for reports and diagnostics)."""

    def describe(self) -> str:
        return f"{self.name}({self.n_shards})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n_shards={self.n_shards})"


class RegularGridPolicy(ShardingPolicy):
    """An ``nx × ny`` grid of equal-sized rectangular shard regions.

    ``nx * ny == n_shards``; when the factors are not given, the most
    square-ish factorisation of ``n_shards`` is chosen.  Cells are half-open
    in both axes except along the data space's top/right edges, so boundary
    points route to exactly one shard.
    """

    name = "grid"

    def __init__(
        self,
        n_shards: int,
        data_space: Optional[Rect] = None,
        nx: Optional[int] = None,
        ny: Optional[int] = None,
    ):
        super().__init__(n_shards, data_space)
        if nx is None or ny is None:
            nx, ny = _squarish_factors(n_shards)
        if nx * ny != n_shards:
            raise ValueError(f"nx * ny must equal n_shards ({nx}*{ny} != {n_shards})")
        self.nx = nx
        self.ny = ny

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        space = self.data_space
        ix = int((x - space.xlo) / space.width * self.nx) if space.width > 0 else 0
        iy = int((y - space.ylo) / space.height * self.ny) if space.height > 0 else 0
        return min(max(ix, 0), self.nx - 1), min(max(iy, 0), self.ny - 1)

    def shard_of(self, x: float, y: float) -> int:
        ix, iy = self._cell_of(float(x), float(y))
        return iy * self.nx + ix

    def shard_of_many(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        space = self.data_space
        ix = np.floor((points[:, 0] - space.xlo) / space.width * self.nx).astype(np.int64)
        iy = np.floor((points[:, 1] - space.ylo) / space.height * self.ny).astype(np.int64)
        np.clip(ix, 0, self.nx - 1, out=ix)
        np.clip(iy, 0, self.ny - 1, out=iy)
        return iy * self.nx + ix

    def shards_for_window(self, window: Rect) -> list[int]:
        ix0, iy0 = self._cell_of(window.xlo, window.ylo)
        ix1, iy1 = self._cell_of(window.xhi, window.yhi)
        return [
            iy * self.nx + ix
            for iy in range(iy0, iy1 + 1)
            for ix in range(ix0, ix1 + 1)
        ]

    def mindist(self, x: float, y: float, shard_id: int) -> float:
        return mindist_point_rect(float(x), float(y), self.shard_extent(shard_id))

    def shard_extent(self, shard_id: int) -> Rect:
        ix, iy = shard_id % self.nx, shard_id // self.nx
        space = self.data_space
        cell_w = space.width / self.nx
        cell_h = space.height / self.ny
        return Rect(
            space.xlo + ix * cell_w,
            space.ylo + iy * cell_h,
            space.xlo + (ix + 1) * cell_w,
            space.ylo + (iy + 1) * cell_h,
        )

    def describe(self) -> str:
        return f"grid({self.nx}x{self.ny})"


class CurveRangePolicy(ShardingPolicy):
    """Contiguous space-filling-curve ranges over a fine cell grid.

    The data space is diced into ``2^order × 2^order`` cells; each cell's
    curve code linearises it, and the code range ``[0, 4^order)`` is split
    into ``n_shards`` contiguous ranges holding a near-equal number of
    cells.  A shard's region is the union of its cells, so window routing
    and kNN MINDIST work cell-wise (tight, not via the shard MBR, which can
    overlap heavily between ranges).  Subclasses supply the cell -> code
    mapping (:meth:`_cell_code` / :meth:`_cell_codes`).
    """

    def __init__(self, n_shards: int, data_space: Optional[Rect] = None, order: int = 4):
        super().__init__(n_shards, data_space)
        if order < 1:
            raise ValueError("order must be >= 1")
        side = 1 << order
        if n_shards > side * side:
            raise ValueError(
                f"n_shards={n_shards} exceeds the {side}x{side} cell grid; raise `order`"
            )
        self.order = order
        self.side = side
        n_cells = side * side
        #: shard s owns curve codes in [boundaries[s], boundaries[s + 1])
        self.boundaries = np.array(
            [round(s * n_cells / n_shards) for s in range(n_shards + 1)], dtype=np.int64
        )
        # per-cell shard id, indexed by curve code (4^order entries)
        self._shard_by_code = (
            np.searchsorted(self.boundaries, np.arange(n_cells), side="right") - 1
        ).astype(np.int64)
        # per-shard cell rectangles for tight window routing / MINDIST
        self._cells_lo: list[np.ndarray] = []
        self._cells_hi: list[np.ndarray] = []
        space = self.data_space
        cell_w = space.width / side
        cell_h = space.height / side
        by_shard: list[list[tuple[int, int]]] = [[] for _ in range(n_shards)]
        for cx in range(side):
            for cy in range(side):
                by_shard[int(self._shard_by_code[self._cell_code(cx, cy)])].append((cx, cy))
        for cells in by_shard:
            lo = np.array(
                [(space.xlo + cx * cell_w, space.ylo + cy * cell_h) for cx, cy in cells],
                dtype=float,
            ).reshape(-1, 2)
            self._cells_lo.append(lo)
            self._cells_hi.append(lo + np.array([cell_w, cell_h]))

    # -- the cell -> curve-code mapping --------------------------------------

    @abc.abstractmethod
    def _cell_code(self, cx: int, cy: int) -> int:
        """Curve code of grid cell ``(cx, cy)``."""

    @abc.abstractmethod
    def _cell_codes(self, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_cell_code` over int64 coordinate arrays."""

    # -- routing -------------------------------------------------------------

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        space = self.data_space
        cx = int((x - space.xlo) / space.width * self.side) if space.width > 0 else 0
        cy = int((y - space.ylo) / space.height * self.side) if space.height > 0 else 0
        return min(max(cx, 0), self.side - 1), min(max(cy, 0), self.side - 1)

    def shard_of(self, x: float, y: float) -> int:
        cx, cy = self._cell_of(float(x), float(y))
        return int(self._shard_by_code[self._cell_code(cx, cy)])

    def shard_of_many(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        space = self.data_space
        cx = np.floor((points[:, 0] - space.xlo) / space.width * self.side).astype(np.int64)
        cy = np.floor((points[:, 1] - space.ylo) / space.height * self.side).astype(np.int64)
        np.clip(cx, 0, self.side - 1, out=cx)
        np.clip(cy, 0, self.side - 1, out=cy)
        return self._shard_by_code[self._cell_codes(cx, cy)]

    def shards_for_window(self, window: Rect) -> list[int]:
        cx0, cy0 = self._cell_of(window.xlo, window.ylo)
        cx1, cy1 = self._cell_of(window.xhi, window.yhi)
        cxs, cys = np.meshgrid(
            np.arange(cx0, cx1 + 1, dtype=np.int64),
            np.arange(cy0, cy1 + 1, dtype=np.int64),
        )
        codes = self._cell_codes(cxs.ravel(), cys.ravel())
        return sorted(int(s) for s in np.unique(self._shard_by_code[codes]))

    def mindist(self, x: float, y: float, shard_id: int) -> float:
        lo = self._cells_lo[shard_id]
        hi = self._cells_hi[shard_id]
        dx = np.maximum(np.maximum(lo[:, 0] - x, x - hi[:, 0]), 0.0)
        dy = np.maximum(np.maximum(lo[:, 1] - y, y - hi[:, 1]), 0.0)
        return float(np.min(np.hypot(dx, dy)))

    def shard_extent(self, shard_id: int) -> Rect:
        lo = self._cells_lo[shard_id]
        hi = self._cells_hi[shard_id]
        return Rect(
            float(lo[:, 0].min()),
            float(lo[:, 1].min()),
            float(hi[:, 0].max()),
            float(hi[:, 1].max()),
        )

    def describe(self) -> str:
        return f"{self.name}(order={self.order})"


class ZOrderRangePolicy(CurveRangePolicy):
    """Contiguous Z-order (Morton) ranges over a fine cell grid, mirroring
    how distributed spatial stores range-partition Morton keys."""

    name = "zorder"

    def _cell_code(self, cx: int, cy: int) -> int:
        return interleave_bits(cx, cy)

    def _cell_codes(self, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        codes = _interleave_many(cx.astype(np.uint64)) | (
            _interleave_many(cy.astype(np.uint64)) << np.uint64(1)
        )
        return codes.astype(np.int64)


class HilbertRangePolicy(CurveRangePolicy):
    """Contiguous Hilbert ranges over a fine cell grid.

    Because consecutive Hilbert codes are always plane-adjacent cells, each
    shard's region is one connected blob (Z-ranges can straddle the curve's
    quadrant jumps), which is what cuts spanning-window shard fan-out.
    """

    name = "hilbert"

    def __init__(self, n_shards: int, data_space: Optional[Rect] = None, order: int = 4):
        self._curve = HilbertCurve(max(order, 1))
        super().__init__(n_shards, data_space, order)

    def _cell_code(self, cx: int, cy: int) -> int:
        return self._curve.encode(cx, cy)

    def _cell_codes(self, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        return self._curve.encode_many(cx, cy)


class SampleBalancedPolicy(ShardingPolicy):
    """Recursive median splits over a data sample (k-d style regions).

    The region holding the most sample points is split at the sample median
    along its wider axis until ``n_shards`` regions exist, yielding
    rectangular shard regions with near-equal point populations even under
    heavy skew.  Splits send points with a coordinate strictly below the
    threshold left, so the regions tile the space half-open and boundary
    points route deterministically to the region starting at the threshold.
    """

    name = "balanced"

    def __init__(
        self,
        n_shards: int,
        data_space: Optional[Rect] = None,
        sample: Optional[np.ndarray] = None,
    ):
        super().__init__(n_shards, data_space)
        if sample is None:
            raise ValueError("SampleBalancedPolicy requires a data sample")
        sample = np.asarray(sample, dtype=float).reshape(-1, 2)
        if sample.shape[0] == 0:
            raise ValueError("SampleBalancedPolicy requires a non-empty sample")
        # leaves: (rect, sample subset); split the most populated leaf until
        # n_shards regions exist
        leaves: list[tuple[Rect, np.ndarray]] = [(self.data_space, sample)]
        # split tree nodes: (axis, threshold, left, right); leaves are shard ids
        while len(leaves) < n_shards:
            victim = max(range(len(leaves)), key=lambda i: leaves[i][1].shape[0])
            rect, pts = leaves.pop(victim)
            axis = 0 if rect.width >= rect.height else 1
            threshold = _split_threshold(rect, pts, axis)
            if axis == 0:
                left_rect = Rect(rect.xlo, rect.ylo, threshold, rect.yhi)
                right_rect = Rect(threshold, rect.ylo, rect.xhi, rect.yhi)
            else:
                left_rect = Rect(rect.xlo, rect.ylo, rect.xhi, threshold)
                right_rect = Rect(rect.xlo, threshold, rect.xhi, rect.yhi)
            mask = pts[:, axis] < threshold
            leaves.insert(victim, (right_rect, pts[~mask]))
            leaves.insert(victim, (left_rect, pts[mask]))
        self._rects = [rect for rect, _ in leaves]

    def shard_of(self, x: float, y: float) -> int:
        x, y = float(x), float(y)
        # regions tile the space half-open, so the first (and only) matching
        # region owns the point
        for shard_id, rect in enumerate(self._rects):
            if (rect.xlo <= x < rect.xhi or (x == rect.xhi == self.data_space.xhi)) and (
                rect.ylo <= y < rect.yhi or (y == rect.yhi == self.data_space.yhi)
            ):
                return shard_id
        # clamped fallback for points outside every region (outside the data
        # space): nearest region by MINDIST
        return min(
            range(len(self._rects)),
            key=lambda shard_id: mindist_point_rect(x, y, self._rects[shard_id]),
        )

    def shard_of_many(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        owners = np.full(points.shape[0], -1, dtype=np.int64)
        xs, ys = points[:, 0], points[:, 1]
        space = self.data_space
        for shard_id, rect in enumerate(self._rects):
            in_x = (xs >= rect.xlo) & (
                (xs < rect.xhi) | ((xs == rect.xhi) & (rect.xhi == space.xhi))
            )
            in_y = (ys >= rect.ylo) & (
                (ys < rect.yhi) | ((ys == rect.yhi) & (rect.yhi == space.yhi))
            )
            owners[(owners == -1) & in_x & in_y] = shard_id
        # points outside every region (outside the data space) take the
        # scalar nearest-region fallback; normally none exist
        for position in np.nonzero(owners == -1)[0]:
            owners[position] = self.shard_of(float(xs[position]), float(ys[position]))
        return owners

    def shards_for_window(self, window: Rect) -> list[int]:
        return [
            shard_id
            for shard_id, rect in enumerate(self._rects)
            if rect.intersects(window)
        ]

    def mindist(self, x: float, y: float, shard_id: int) -> float:
        return mindist_point_rect(float(x), float(y), self._rects[shard_id])

    def shard_extent(self, shard_id: int) -> Rect:
        return self._rects[shard_id]

    def describe(self) -> str:
        return f"balanced({self.n_shards})"


def _squarish_factors(n: int) -> tuple[int, int]:
    """The factor pair ``(nx, ny)`` of ``n`` closest to a square."""
    nx = int(math.isqrt(n))
    while nx > 1 and n % nx != 0:
        nx -= 1
    return max(nx, 1), n // max(nx, 1)


def _split_threshold(rect: Rect, pts: np.ndarray, axis: int) -> float:
    """A median-ish split coordinate strictly inside ``rect`` along ``axis``."""
    lo = rect.xlo if axis == 0 else rect.ylo
    hi = rect.xhi if axis == 0 else rect.yhi
    if pts.shape[0] > 0:
        threshold = float(np.median(pts[:, axis]))
    else:
        threshold = (lo + hi) / 2.0
    if not lo < threshold < hi:
        threshold = (lo + hi) / 2.0
    return threshold


def _interleave_many(values: np.ndarray) -> np.ndarray:
    """Vectorised bit-spreading (even positions) over a uint64 array."""
    v = values.astype(np.uint64)
    v &= np.uint64(0x00000000FFFFFFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return v


def make_policy(
    name: str,
    n_shards: int,
    data_space: Optional[Rect] = None,
    sample: Optional[np.ndarray] = None,
    **kwargs,
) -> ShardingPolicy:
    """Build a sharding policy by name (``grid``, ``zorder``, ``hilbert``
    or ``balanced``).

    ``sample`` is required by (and only used for) the ``balanced`` policy;
    pass the build points or a subsample of them.
    """
    normalized = name.strip().lower()
    if normalized == "grid":
        return RegularGridPolicy(n_shards, data_space, **kwargs)
    if normalized == "zorder":
        return ZOrderRangePolicy(n_shards, data_space, **kwargs)
    if normalized == "hilbert":
        return HilbertRangePolicy(n_shards, data_space, **kwargs)
    if normalized == "balanced":
        return SampleBalancedPolicy(n_shards, data_space, sample=sample, **kwargs)
    raise ValueError(
        f"unknown sharding policy {name!r}; available: {SHARDING_POLICY_NAMES}"
    )
