"""Shard routing: map every operation to the minimal shard set.

:class:`ShardRouter` wraps a :class:`~repro.sharding.policy.ShardingPolicy`
with the bookkeeping the sharded index needs at serving time:

* point operations (lookup / insert / delete) route to the **single** shard
  owning the key,
* window queries route to every shard whose region intersects the window
  and to no other shard (the spatial data-skipping property the benchmarks
  assert via per-shard :class:`~repro.storage.AccessStats`),
* kNN queries get a **best-first shard order**: shards sorted by the
  MINDIST lower bound between the query point and the shard's region, so
  the caller can stop expanding as soon as the k-th candidate distance is
  below the next shard's bound.

The router also tracks a per-shard *overflow extent*: should a point ever
be inserted outside the data space the policy was built for, it is clamped
to the nearest shard and the shard's effective extent is widened so window
routing and kNN pruning stay complete (the bounds merely become less
tight).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.geometry import Rect, mindist_point_rect
from repro.sharding.policy import ShardingPolicy

__all__ = ["ShardRouter"]


class ShardRouter:
    """Route points, windows and kNN queries to shard ids."""

    def __init__(self, policy: ShardingPolicy):
        self.policy = policy
        #: MBR of points inserted *outside* their shard's region (normally
        #: empty: only out-of-data-space inserts land here)
        self._overflow: dict[int, Rect] = {}

    @property
    def n_shards(self) -> int:
        return self.policy.n_shards

    # -- point routing --------------------------------------------------------

    def shard_for_point(self, x: float, y: float) -> int:
        """The single shard owning key ``(x, y)``."""
        return self.policy.shard_of(x, y)

    def shards_for_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorised owner lookup over an ``(n, 2)`` array."""
        return self.policy.shard_of_many(points)

    def record_insert(self, x: float, y: float) -> int:
        """Route an insert; widens the shard's overflow extent when the key
        falls outside the shard's nominal region."""
        shard_id = self.policy.shard_of(x, y)
        if not self.policy.shard_extent(shard_id).contains_point(x, y):
            self._note_overflow(shard_id, x, y)
        return shard_id

    def record_assignments(self, points: np.ndarray, owners: np.ndarray) -> None:
        """Record a bulk build's point-to-shard assignment.

        Points assigned outside their shard's nominal region (only possible
        for build points outside the policy's data space, which clamp to a
        boundary shard) widen that shard's overflow extent, exactly as the
        per-insert path does — without this, such points would be invisible
        to window routing and could break the kNN MINDIST lower bound.
        """
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        for shard_id in np.unique(owners).tolist():
            mine = points[owners == shard_id]
            outside = mine[~self.policy.shard_extent(shard_id).contains_points(mine)]
            for x, y in outside:
                self._note_overflow(shard_id, float(x), float(y))

    def _note_overflow(self, shard_id: int, x: float, y: float) -> None:
        previous = self._overflow.get(shard_id)
        self._overflow[shard_id] = (
            previous.expand_to_point(x, y) if previous is not None else Rect(x, y, x, y)
        )

    # -- rebalancing ------------------------------------------------------------

    def note_split(self, parent_id: int, right_id: int) -> None:
        """Remap overflow bookkeeping after ``parent_id`` split in two.

        The parent's overflow MBR (out-of-region inserts) is conservatively
        copied to **both** children: the points it stands for were rescued
        into one child or the other, and keeping the whole rect on each
        keeps window routing complete and the kNN bound valid — the bounds
        are merely looser until the overflow ages out.
        """
        overflow = self._overflow.get(parent_id)
        if overflow is not None:
            self._overflow[right_id] = overflow

    def note_merge(
        self, keep: int, drop: int, moved: Optional[tuple[int, int]]
    ) -> None:
        """Remap overflow bookkeeping after ``drop`` merged into ``keep``.

        The siblings' overflow rects union onto the merged shard, and the
        shard relocated into the id hole (``moved`` as ``(old_id, new_id)``)
        carries its overflow rect along to its new id.
        """
        kept = self._overflow.pop(keep, None)
        dropped = self._overflow.pop(drop, None)
        if kept is not None or dropped is not None:
            if kept is None:
                merged = dropped
            elif dropped is None:
                merged = kept
            else:
                merged = kept.union(dropped)
            self._overflow[keep] = merged
        if moved is not None:
            relocated = self._overflow.pop(moved[0], None)
            if relocated is not None:
                self._overflow[moved[1]] = relocated

    # -- window routing ---------------------------------------------------------

    def shards_for_window(self, window: Rect) -> list[int]:
        """Every shard that may hold a point inside ``window``, no others."""
        shard_ids = set(self.policy.shards_for_window(window))
        for shard_id, extent in self._overflow.items():
            if extent.intersects(window):
                shard_ids.add(shard_id)
        return sorted(shard_ids)

    # -- kNN routing --------------------------------------------------------------

    def mindist(self, x: float, y: float, shard_id: int) -> float:
        """Lower bound on the distance from ``(x, y)`` to shard ``shard_id``."""
        bound = self.policy.mindist(x, y, shard_id)
        overflow = self._overflow.get(shard_id)
        if overflow is not None:
            bound = min(bound, mindist_point_rect(x, y, overflow))
        return bound

    def knn_shard_order(self, x: float, y: float) -> Iterator[tuple[float, int]]:
        """Shards as ``(mindist, shard_id)`` in ascending MINDIST order.

        The best-first kNN expansion walks this order and stops at the
        first shard whose bound exceeds the current k-th candidate
        distance: no skipped shard can improve the answer.
        """
        order = sorted(
            (self.mindist(x, y, shard_id), shard_id)
            for shard_id in range(self.policy.n_shards)
        )
        return iter(order)

    # -- diagnostics ------------------------------------------------------------

    def shard_extent(self, shard_id: int) -> Rect:
        """The shard's effective extent (region MBR plus any overflow)."""
        extent = self.policy.shard_extent(shard_id)
        overflow = self._overflow.get(shard_id)
        return extent.union(overflow) if overflow is not None else extent

    def describe(self) -> str:
        return self.policy.describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardRouter({self.policy.describe()})"
