"""Online shard rebalancing: heat-driven splits, merges and budget moves.

Static partitioning has a failure mode the learned index cannot fix on its
own: when the workload drifts, one shard ends up serving almost all of the
traffic and tail latency degrades to whatever that hot shard can do.  The
measurement side has existed since the latency-serving PR — per-shard
:class:`~repro.storage.AccessStats` and per-shard latency sketches — but
nothing acted on it.  This module closes the loop:

* :class:`AdaptiveShardingPolicy` wraps any base
  :class:`~repro.sharding.policy.ShardingPolicy` and lets shard regions be
  **split along an axis-aligned threshold** (and sibling splits be merged
  back) while preserving every routing invariant the router relies on —
  totality, window completeness and the kNN MINDIST lower bound.
* :class:`SplitMigration` / :class:`MergeMigration` move a shard's points
  into its replacement(s) **online**: the children are built in the
  background from a snapshot of the live shard while the old shard keeps
  serving reads, writes landing in a migrating shard are captured in a
  *rescue buffer* and replayed into the children, and the final swap —
  policy, shard list, router bookkeeping, caches, disk mirrors — happens
  atomically inside one :meth:`step` call.
* :class:`RebalanceController` is the policy loop: it decays per-shard
  access counters, keeps a per-shard p99 sketch, starts a split when one
  shard's share of recent accesses crosses ``split_threshold`` (optionally
  also requiring its p99 to exceed the fleet median), merges sibling shards
  whose combined share has gone cold, and resizes per-shard
  :class:`~repro.storage.PageCache` / pool-client budgets proportionally to
  observed heat.

Correctness story: a migration never makes the index disagree with a
non-sharded oracle.  Reads served mid-migration hit the still-authoritative
parent; the rescue buffer replays writes in arrival order before the swap;
and the swap itself is a single synchronous mutation.  The ``rebalance``
fuzz harness (:mod:`repro.workloads.rebalance`) replays drifting and
bulk-churn streams with an oracle attached and asserts byte-identical
answers *while* migrations are in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.geometry import Rect, mindist_point_rect
from repro.sharding.policy import ShardingPolicy, _split_threshold

__all__ = [
    "AdaptiveShardingPolicy",
    "SplitMigration",
    "MergeMigration",
    "RebalanceConfig",
    "RebalanceController",
    "RebalanceError",
]


class RebalanceError(RuntimeError):
    """An online split/merge could not be applied consistently."""


# ---------------------------------------------------------------------------
# adaptive policy: split/merge leaves layered over any base policy
# ---------------------------------------------------------------------------

#: one refinement step: (axis, threshold, side); side 0 owns coord < threshold,
#: side 1 owns coord >= threshold (half-open, so siblings partition exactly)
_Step = tuple[int, float, int]


@dataclass(frozen=True)
class _Leaf:
    """A shard region: one base-policy region refined by half-plane steps."""

    base_id: int
    lineage: tuple[_Step, ...] = ()


class AdaptiveShardingPolicy(ShardingPolicy):
    """A base policy whose regions can be split and re-merged online.

    Every shard is a *leaf*: a base-policy region intersected with a chain
    of half-plane refinements (``coord < t`` / ``coord >= t``).  Splitting
    leaf ``s`` at ``(axis, t)`` replaces it in place with the ``< t`` child
    (keeping id ``s``, so most routing state stays valid) and appends the
    ``>= t`` child with the next free id; merging two siblings restores the
    parent at ``min(a, b)`` and fills the id hole by moving the last leaf
    down (the caller is told about the move so it can remap per-shard
    state).

    Routing invariants are preserved by construction:

    * **totality** — the base policy is total, and for a fixed base region
      the half-open lineage predicates partition it, so every point still
      maps to exactly one leaf;
    * **window completeness** — a leaf's true region is a subset of its
      *clip rectangle* (base extent ∩ lineage half-planes), so reporting
      every leaf whose clip rect intersects the window misses nothing;
    * **kNN lower bound** — the true region is a subset of both the base
      region and the clip rect, so ``max(base mindist, clip-rect mindist)``
      is still a valid lower bound (and strictly tighter after splits).
    """

    name = "adaptive"

    def __init__(self, base: ShardingPolicy):
        if isinstance(base, AdaptiveShardingPolicy):
            raise ValueError("adaptive policies do not nest; wrap the base policy once")
        super().__init__(base.n_shards, base.data_space)
        self.base = base
        self._leaves: list[_Leaf] = [_Leaf(i) for i in range(base.n_shards)]
        self._reindex()

    def _reindex(self) -> None:
        by_base: dict[int, list[int]] = {}
        for shard_id, leaf in enumerate(self._leaves):
            by_base.setdefault(leaf.base_id, []).append(shard_id)
        self._by_base = by_base
        self.n_shards = len(self._leaves)

    # -- mutation (called only through the sharded index's swap methods) ------

    def split(self, shard_id: int, axis: int, threshold: float) -> int:
        """Split leaf ``shard_id`` at ``threshold`` along ``axis`` (0=x, 1=y).

        The ``< threshold`` child keeps ``shard_id``; the ``>= threshold``
        child gets the next free id, which is returned.  ``threshold`` must
        be strictly inside the leaf's clip rectangle, so neither child's
        region is empty by construction.
        """
        if axis not in (0, 1):
            raise ValueError("axis must be 0 (x) or 1 (y)")
        clip = self._clip_rect(shard_id)
        lo, hi = (clip.xlo, clip.xhi) if axis == 0 else (clip.ylo, clip.yhi)
        threshold = float(threshold)
        if not lo < threshold < hi:
            raise RebalanceError(
                f"split threshold {threshold} not strictly inside "
                f"[{lo}, {hi}] of shard {shard_id} on axis {axis}"
            )
        leaf = self._leaves[shard_id]
        self._leaves[shard_id] = _Leaf(leaf.base_id, leaf.lineage + ((axis, threshold, 0),))
        self._leaves.append(_Leaf(leaf.base_id, leaf.lineage + ((axis, threshold, 1),)))
        self._reindex()
        return len(self._leaves) - 1

    def are_siblings(self, a: int, b: int) -> bool:
        """True when leaves ``a`` and ``b`` are the two children of one split
        (and can therefore be merged back into their parent)."""
        if a == b or not (0 <= a < self.n_shards and 0 <= b < self.n_shards):
            return False
        la, lb = self._leaves[a], self._leaves[b]
        return bool(
            la.lineage
            and lb.lineage
            and la.base_id == lb.base_id
            and la.lineage[:-1] == lb.lineage[:-1]
            and la.lineage[-1][:2] == lb.lineage[-1][:2]
            and la.lineage[-1][2] != lb.lineage[-1][2]
        )

    def sibling_pairs(self) -> list[tuple[int, int]]:
        """All currently mergeable ``(a, b)`` leaf pairs, ``a < b``."""
        pairs = []
        for a in range(self.n_shards):
            for b in range(a + 1, self.n_shards):
                if self.are_siblings(a, b):
                    pairs.append((a, b))
        return pairs

    def merge(self, a: int, b: int) -> tuple[int, Optional[tuple[int, int]]]:
        """Merge sibling leaves back into their parent.

        The parent takes id ``min(a, b)``; the hole at ``max(a, b)`` is
        filled by moving the last leaf down.  Returns ``(parent_id, moved)``
        where ``moved`` is ``(old_id, new_id)`` for the relocated leaf, or
        None when the hole was already last.
        """
        if not self.are_siblings(a, b):
            raise RebalanceError(f"shards {a} and {b} are not split siblings")
        keep, drop = min(a, b), max(a, b)
        parent = self._leaves[keep]
        self._leaves[keep] = _Leaf(parent.base_id, parent.lineage[:-1])
        last = len(self._leaves) - 1
        moved: Optional[tuple[int, int]] = None
        if drop != last:
            self._leaves[drop] = self._leaves[last]
            moved = (last, drop)
        self._leaves.pop()
        self._reindex()
        return keep, moved

    # -- geometry --------------------------------------------------------------

    def _clip_rect(self, shard_id: int) -> Rect:
        """Base extent intersected with the leaf's lineage half-planes (a
        superset of the leaf's true region, tight for rectangular bases)."""
        leaf = self._leaves[shard_id]
        extent = self.base.shard_extent(leaf.base_id)
        xlo, ylo, xhi, yhi = extent.xlo, extent.ylo, extent.xhi, extent.yhi
        for axis, threshold, side in leaf.lineage:
            if axis == 0:
                if side == 0:
                    xhi = min(xhi, threshold)
                else:
                    xlo = max(xlo, threshold)
            elif side == 0:
                yhi = min(yhi, threshold)
            else:
                ylo = max(ylo, threshold)
        return Rect(xlo, ylo, max(xlo, xhi), max(ylo, yhi))

    @staticmethod
    def _on_side(lineage: Sequence[_Step], x: float, y: float) -> bool:
        for axis, threshold, side in lineage:
            coord = x if axis == 0 else y
            if (coord < threshold) != (side == 0):
                return False
        return True

    # -- ShardingPolicy interface ----------------------------------------------

    def shard_of(self, x: float, y: float) -> int:
        x, y = float(x), float(y)
        candidates = self._by_base[self.base.shard_of(x, y)]
        if len(candidates) == 1:
            return candidates[0]
        for shard_id in candidates:
            if self._on_side(self._leaves[shard_id].lineage, x, y):
                return shard_id
        raise AssertionError("lineage leaves must partition the base region")

    def shard_of_many(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        base_owners = self.base.shard_of_many(points)
        out = np.empty(points.shape[0], dtype=np.int64)
        for base_id in np.unique(base_owners).tolist():
            candidates = self._by_base[int(base_id)]
            rows = np.nonzero(base_owners == base_id)[0]
            if len(candidates) == 1:
                out[rows] = candidates[0]
                continue
            sub = points[rows]
            unclaimed = np.ones(rows.shape[0], dtype=bool)
            for shard_id in candidates:
                mask = unclaimed.copy()
                for axis, threshold, side in self._leaves[shard_id].lineage:
                    below = sub[:, axis] < threshold
                    mask &= below if side == 0 else ~below
                out[rows[mask]] = shard_id
                unclaimed &= ~mask
        return out

    def shards_for_window(self, window: Rect) -> list[int]:
        out = []
        for base_id in self.base.shards_for_window(window):
            for shard_id in self._by_base[base_id]:
                leaf = self._leaves[shard_id]
                if not leaf.lineage or self._clip_rect(shard_id).intersects(window):
                    out.append(shard_id)
        return sorted(out)

    def mindist(self, x: float, y: float, shard_id: int) -> float:
        leaf = self._leaves[shard_id]
        bound = self.base.mindist(x, y, leaf.base_id)
        if leaf.lineage:
            bound = max(
                bound, mindist_point_rect(float(x), float(y), self._clip_rect(shard_id))
            )
        return bound

    def shard_extent(self, shard_id: int) -> Rect:
        return self._clip_rect(shard_id)

    def depth(self, shard_id: int) -> int:
        """How many splits refined this leaf below its base region."""
        return len(self._leaves[shard_id].lineage)

    def leaf_key(self, shard_id: int) -> tuple:
        """A stable identity for ``shard_id``'s *region*.

        ``(base_id, lineage)`` names the region independently of the shard
        id, so it survives the id relocation a merge performs — which is
        what lets the controller keep per-region cooldown state across
        topology changes.
        """
        leaf = self._leaves[shard_id]
        return (leaf.base_id, leaf.lineage)

    def describe(self) -> str:
        splits = sum(len(leaf.lineage) > 0 for leaf in self._leaves)
        return f"adaptive[{self.base.describe()}, leaves={self.n_shards}, refined={splits}]"


# ---------------------------------------------------------------------------
# migrations: stepped background split/merge with rescue-buffer write capture
# ---------------------------------------------------------------------------


class _Migration:
    """A background shard migration advanced one stage per :meth:`step` call.

    Stages run between operations of the serving loop, so reads and writes
    interleave with a migration in flight: reads keep hitting the old
    (still-authoritative) shard(s), writes are applied there *and* recorded
    in the rescue buffer registered on the index.  The final stage replays
    the rescue buffer into the freshly built replacement(s) and swaps them
    in atomically — policy, shard list, router and budgets together.
    """

    kind = "migration"

    def __init__(self, index) -> None:
        self.index = index
        self.done = False
        self.aborted = False
        self.rescued_writes = 0
        self._stage = 0

    @property
    def in_flight(self) -> bool:
        return not self.done

    def step(self) -> bool:
        """Advance one stage; returns True once the migration has finished
        (successfully or via abort)."""
        if not self.done:
            self._advance()
        return self.done

    def _advance(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _finish(self, aborted: bool = False) -> None:
        self.aborted = aborted
        self.done = True


class SplitMigration(_Migration):
    """Split one hot shard into two children, online.

    Stages: **snapshot** the live shard's points and pick the split plane
    (wider clip axis, median threshold); **build left**; **build right**;
    **swap** — replay rescued writes into the children, then atomically
    install children + refined policy and move the parent's cache/disk
    configuration onto them.
    """

    kind = "split"

    def __init__(self, index, shard_id: int, axis: Optional[int] = None,
                 threshold: Optional[float] = None):
        super().__init__(index)
        self.shard_id = shard_id
        self.axis = axis
        self.threshold = threshold
        self.right_id: Optional[int] = None
        self._snapshot: Optional[np.ndarray] = None
        self._rescue: Optional[list] = None
        self._left = None
        self._right = None

    def _advance(self) -> None:
        index = self.index
        if self._stage == 0:
            # registering the rescue buffer and snapshotting in the same
            # stage means no write can fall between them (single-threaded
            # control loop): every later write is in the buffer exactly once
            self._rescue = index.register_rescue((self.shard_id,))
            self._snapshot = index.live_shard_points(self.shard_id)
            if self.axis is None or self.threshold is None:
                clip = index.policy.shard_extent(self.shard_id)
                self.axis = 0 if clip.width >= clip.height else 1
                self.threshold = _split_threshold(clip, self._snapshot, self.axis)
                lo = clip.xlo if self.axis == 0 else clip.ylo
                hi = clip.xhi if self.axis == 0 else clip.yhi
                if not lo < self.threshold < hi:
                    index.release_rescue((self.shard_id,))
                    self._finish(aborted=True)  # degenerate region: nothing to split
                    return
            self.right_id = index.n_shards  # id the right child will take
            self._stage = 1
            return
        if self._stage == 1:
            below = self._snapshot[:, self.axis] < self.threshold
            self._left = index.build_replacement_shard(
                self.shard_id, self._snapshot[below]
            )
            self._stage = 2
            return
        if self._stage == 2:
            below = self._snapshot[:, self.axis] < self.threshold
            self._right = index.build_replacement_shard(
                self.right_id, self._snapshot[~below]
            )
            self._stage = 3
            return
        # final stage: rescue replay + atomic swap
        self.rescued_writes = len(self._rescue)
        for op, x, y in self._rescue:
            child = self._left if (x if self.axis == 0 else y) < self.threshold else self._right
            if op == "insert":
                child.insert(x, y, index.factory)
            else:
                child.delete(x, y)
        index.release_rescue((self.shard_id,))
        index.swap_in_split(self.shard_id, self.axis, self.threshold,
                            self._left, self._right)
        self._finish()


class MergeMigration(_Migration):
    """Merge two cold sibling shards back into their parent, online.

    Stages: **snapshot** both siblings; **build** the merged shard; **swap**
    — replay rescued writes (both siblings share one rescue buffer, so
    arrival order is preserved), then atomically restore the parent leaf.
    """

    kind = "merge"

    def __init__(self, index, a: int, b: int):
        super().__init__(index)
        if not index.policy.are_siblings(a, b):
            raise RebalanceError(f"shards {a} and {b} are not split siblings")
        self.a, self.b = min(a, b), max(a, b)
        self._snapshot: Optional[np.ndarray] = None
        self._rescue: Optional[list] = None
        self._merged = None

    def _advance(self) -> None:
        index = self.index
        if self._stage == 0:
            self._rescue = index.register_rescue((self.a, self.b))
            self._snapshot = np.vstack([
                index.live_shard_points(self.a),
                index.live_shard_points(self.b),
            ])
            self._stage = 1
            return
        if self._stage == 1:
            self._merged = index.build_replacement_shard(self.a, self._snapshot)
            self._stage = 2
            return
        self.rescued_writes = len(self._rescue)
        for op, x, y in self._rescue:
            if op == "insert":
                self._merged.insert(x, y, index.factory)
            else:
                self._merged.delete(x, y)
        index.release_rescue((self.a, self.b))
        index.swap_in_merge(self.a, self.b, self._merged)
        self._finish()


# ---------------------------------------------------------------------------
# the controller
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RebalanceConfig:
    """Tuning knobs for :class:`RebalanceController`.

    The split trigger is deliberately driven by *access shares* (decayed
    per-shard read counters), which are deterministic given the stream;
    the per-shard p99 sketches gate the trigger only when
    ``latency_gate`` is on, since wall-clock latencies vary by machine.
    """

    #: split the hottest shard when its share of recent accesses reaches this
    split_threshold: float = 0.45
    #: never split a shard holding fewer live points than this
    min_split_points: int = 128
    #: merge split siblings whose *combined* recent access share is below this
    merge_threshold: float = 0.02
    #: hard cap on the shard count
    max_shards: int = 32
    #: ticks to wait after a migration finishes before starting another
    cooldown_ticks: int = 2
    #: per-**region** hysteresis: a region touched by a finished split/merge
    #: (the split's children, the merge's restored parent) cannot be split
    #: or merged again for this many ticks.  The global ``cooldown_ticks``
    #: only spaces migrations out; without this knob an aggressive config on
    #: a drifting stream splits a region and re-merges it a few hundred ops
    #: later, over and over (the thrash documented in the roadmap).  0 (the
    #: default) disables the hysteresis.
    min_ticks_between_ops: int = 0
    #: don't decide anything until this many accesses have been observed
    min_observations: int = 256
    #: heat units credited per write routed to a shard (a write costs about
    #: one point lookup plus a block write, so churn-heavy hotspots split too)
    write_heat: float = 4.0
    #: per-tick multiplicative decay of the heat counters (recency window)
    decay: float = 0.85
    #: also require the hot shard's p99 to exceed ``p99_factor`` × fleet median
    latency_gate: bool = False
    p99_factor: float = 1.2
    #: move PageCache / pool-client budgets toward hot shards every tick
    resize_budgets: bool = True
    min_budget_blocks: int = 2


@dataclass
class RebalanceReport:
    """What the controller did over a run (for reports and fuzz assertions)."""

    n_splits: int = 0
    n_merges: int = 0
    n_aborted: int = 0
    rescued_writes: int = 0
    mid_migration_ticks: int = 0
    mid_migration_batches: int = 0
    budget_resizes: int = 0
    actions: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "n_splits": self.n_splits,
            "n_merges": self.n_merges,
            "n_aborted": self.n_aborted,
            "rescued_writes": self.rescued_writes,
            "mid_migration_ticks": self.mid_migration_ticks,
            "mid_migration_batches": self.mid_migration_batches,
            "budget_resizes": self.budget_resizes,
            "actions": list(self.actions),
        }


class RebalanceController:
    """The closed loop: observe per-shard heat/latency, act via migrations.

    Wire-up: construct over a built :class:`ShardedSpatialIndex` (its policy
    is wrapped in an :class:`AdaptiveShardingPolicy` if it isn't already),
    feed it per-batch per-shard read counts and latency summaries through
    :meth:`observe` (the scenario runner does this from its accounting
    hook), and call :meth:`tick` between operations.  Each tick advances an
    in-flight migration by one stage or — when idle, warmed up and out of
    cooldown — starts a split of the hottest shard or a merge of the
    coldest sibling pair, then rebalances cache budgets.
    """

    def __init__(self, index, config: Optional[RebalanceConfig] = None):
        index.enable_rebalancing()
        self.index = index
        self.config = config if config is not None else RebalanceConfig()
        self.report = RebalanceReport()
        self._heat: dict[int, float] = {}
        self._sketches: dict[int, object] = {}
        self._migration: Optional[_Migration] = None
        self._cooldown = 0
        self._initial_shards = index.n_shards
        #: tick counter + per-region last-structural-op tick (hysteresis)
        self._tick_index = 0
        self._last_op_tick: dict[tuple, int] = {}

    # -- observation (called by the serving loop's accounting) ----------------

    @property
    def migration_in_flight(self) -> bool:
        return self._migration is not None

    def observe(self, per_shard_reads: Optional[dict] = None,
                per_shard_latency: Optional[dict] = None) -> None:
        """Fold one batch's per-shard read counts and latency summaries in."""
        if self._migration is not None:
            self.report.mid_migration_batches += 1
        for shard_id, reads in (per_shard_reads or {}).items():
            if reads:
                self._heat[shard_id] = self._heat.get(shard_id, 0.0) + float(reads)
        if per_shard_latency:
            # deferred import: repro.workloads imports repro.sharding at
            # package-init time, so the reverse import must wait until runtime
            from repro.workloads.latency import PercentileSketch

            for shard_id, summary in per_shard_latency.items():
                p99 = getattr(summary, "p99_ms", None)
                if p99 is None and isinstance(summary, dict):
                    p99 = summary.get("p99_ms")
                if p99 is None:
                    continue
                sketch = self._sketches.get(shard_id)
                if sketch is None:
                    sketch = self._sketches[shard_id] = PercentileSketch()
                sketch.add(float(p99))

    def observe_write(self, x: float, y: float) -> None:
        """Credit one write's heat to the shard owning ``(x, y)``."""
        shard_id = self.index.router.shard_for_point(float(x), float(y))
        self._heat[shard_id] = self._heat.get(shard_id, 0.0) + self.config.write_heat

    def shard_p99(self, shard_id: int) -> Optional[float]:
        """The shard's p99-of-batch-p99s estimate (None before any sample)."""
        sketch = self._sketches.get(shard_id)
        if sketch is None or getattr(sketch, "count", 0) == 0:
            return None
        return float(sketch.quantile(0.99))

    # -- the control loop ------------------------------------------------------

    def tick(self) -> Optional[str]:
        """One control step; returns a short action string when one fired."""
        self._tick_index += 1
        if self._migration is not None:
            self.report.mid_migration_ticks += 1
            migration = self._migration
            if migration.step():
                self._migration = None
                self._cooldown = self.config.cooldown_ticks
                self._record_finished(migration)
                self._resize_budgets()
                return f"{migration.kind}-finished"
            return f"{migration.kind}-step"
        self._decay()
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        action = self._maybe_start_migration()
        if action is None:
            self._resize_budgets()
        return action

    def drain(self, max_steps: int = 16) -> None:
        """Run any in-flight migration to completion (end-of-run cleanup)."""
        steps = 0
        while self._migration is not None and steps < max_steps:
            self.tick()
            steps += 1

    def _record_finished(self, migration: _Migration) -> None:
        if migration.aborted:
            self.report.n_aborted += 1
            self.report.actions.append(f"{migration.kind}:aborted")
            return
        self.report.rescued_writes += migration.rescued_writes
        if migration.kind == "split":
            self.report.n_splits += 1
            self.report.actions.append(
                f"split:{migration.shard_id}->+{migration.right_id}"
                f"(rescued={migration.rescued_writes})"
            )
            # the children inherit a clean slate; the parent's heat is gone
            self._forget(migration.shard_id)
            # hysteresis: freshly created children may not merge back (or
            # split further) until min_ticks_between_ops have passed
            self._mark_region(migration.shard_id)
            self._mark_region(migration.right_id)
        else:
            self.report.n_merges += 1
            self.report.actions.append(
                f"merge:{migration.a}+{migration.b}(rescued={migration.rescued_writes})"
            )
            self._forget(migration.a)
            self._forget(migration.b)
            # hysteresis: the restored parent may not re-split immediately
            self._mark_region(migration.a)

    # -- per-region hysteresis --------------------------------------------------

    def _mark_region(self, shard_id: int) -> None:
        if self.config.min_ticks_between_ops <= 0:
            return
        if 0 <= shard_id < self.index.n_shards:
            self._last_op_tick[self.index.policy.leaf_key(shard_id)] = self._tick_index

    def _region_clear(self, shard_id: int) -> bool:
        """True when ``shard_id``'s region is outside its hysteresis window."""
        window = self.config.min_ticks_between_ops
        if window <= 0:
            return True
        last = self._last_op_tick.get(self.index.policy.leaf_key(shard_id))
        return last is None or self._tick_index - last >= window

    def _forget(self, shard_id: int) -> None:
        self._heat.pop(shard_id, None)
        self._sketches.pop(shard_id, None)

    def _decay(self) -> None:
        decay = self.config.decay
        for shard_id in list(self._heat):
            self._heat[shard_id] *= decay
            if self._heat[shard_id] < 1e-9:
                del self._heat[shard_id]

    def _maybe_start_migration(self) -> Optional[str]:
        config = self.config
        total = sum(self._heat.values())
        if total < config.min_observations:
            return None
        index = self.index
        # hottest shard first: split when it dominates the traffic
        hot_id, hot_heat = max(self._heat.items(), key=lambda item: (item[1], -item[0]))
        share = hot_heat / total
        if (
            share >= config.split_threshold
            and index.n_shards < config.max_shards
            and hot_id < index.n_shards
            and index.shards[hot_id].n_points >= config.min_split_points
            and self._region_clear(hot_id)
            and self._latency_gate_passes(hot_id)
        ):
            self._migration = SplitMigration(index, hot_id)
            return "split-started"
        # otherwise reclaim shards whose split has gone cold
        if index.n_shards > max(1, self._initial_shards):
            for a, b in index.policy.sibling_pairs():
                combined = (self._heat.get(a, 0.0) + self._heat.get(b, 0.0)) / total
                if (
                    combined <= config.merge_threshold
                    and self._region_clear(a)
                    and self._region_clear(b)
                ):
                    self._migration = MergeMigration(index, a, b)
                    return "merge-started"
        return None

    def _latency_gate_passes(self, hot_id: int) -> bool:
        if not self.config.latency_gate:
            return True
        hot_p99 = self.shard_p99(hot_id)
        if hot_p99 is None:
            return False
        others = [
            p99
            for shard_id in range(self.index.n_shards)
            if shard_id != hot_id and (p99 := self.shard_p99(shard_id)) is not None
        ]
        if not others:
            return True
        return hot_p99 >= self.config.p99_factor * float(np.median(others))

    # -- budget resizing -------------------------------------------------------

    def _resize_budgets(self) -> None:
        """Move cache budget toward hot shards, proportionally to heat."""
        if not self.config.resize_budgets:
            return
        index = self.index
        total = sum(self._heat.values())
        if total <= 0 or index.n_shards < 2:
            return
        resized = index.resize_shard_budgets(
            {
                shard_id: self._heat.get(shard_id, 0.0) / total
                for shard_id in range(index.n_shards)
            },
            min_blocks=self.config.min_budget_blocks,
        )
        if resized:
            self.report.budget_resizes += 1

    # -- reporting -------------------------------------------------------------

    def extra_metrics(self) -> dict:
        metrics = self.report.as_dict()
        metrics.pop("actions")
        metrics["final_shards"] = self.index.n_shards
        metrics["policy"] = self.index.policy.describe()
        return metrics

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self._migration.kind if self._migration is not None else "idle"
        return (
            f"RebalanceController(shards={self.index.n_shards}, state={state}, "
            f"splits={self.report.n_splits}, merges={self.report.n_merges})"
        )
