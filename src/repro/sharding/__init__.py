"""Sharded serving: partition the data space across N independent shards.

The paper evaluates one index serving one query at a time; a
production-scale deployment partitions the space across shards and serves
whole batches in parallel.  This package provides the three layers of that
serving stack:

* **Policies** (:mod:`repro.sharding.policy`) decide *where data lives*: a
  regular grid, contiguous Z-order or Hilbert curve ranges, or
  sample-balanced k-d style regions
  (:func:`~repro.sharding.policy.make_policy`).
* **Routing** (:mod:`repro.sharding.router`) maps every operation to the
  minimal shard set — one shard for point ops, only intersecting shards
  for windows (spatial data skipping), and a best-first MINDIST order for
  kNN expansion.
* **Serving** (:mod:`repro.sharding.index`, :mod:`repro.sharding.engine`):
  :class:`~repro.sharding.index.ShardedSpatialIndex` wraps any existing
  index type per shard behind the common query/update interface, and
  :class:`~repro.sharding.engine.ShardedBatchEngine` groups query batches
  per shard and dispatches them through per-shard
  :class:`~repro.engine.BatchQueryEngine` instances, optionally on a
  thread pool, merging results and aggregating per-shard
  :class:`~repro.storage.AccessStats`.
* **Rebalancing** (:mod:`repro.sharding.rebalance`): the
  :class:`~repro.sharding.rebalance.RebalanceController` watches per-shard
  access counts and p99 sketches, splits hot shards online (children built
  in the background, in-flight writes rescued, atomic swap), merges cold
  siblings, and moves cache budgets toward the heat.

The sharded index answers every query exactly like an equivalent
single-index deployment (asserted by ``tests/test_sharding_differential.py``
and the scenario fuzz harness); sharding only changes *which* blocks are
touched and how much of the work can run concurrently.
"""

from repro.sharding.engine import ShardedBatchEngine
from repro.sharding.index import (
    EXACT_KINDS,
    SHARDABLE_KINDS,
    CompositeAccessStats,
    ShardedSpatialIndex,
    shard_index_factory,
)
from repro.sharding.policy import (
    SHARDING_POLICY_NAMES,
    CurveRangePolicy,
    HilbertRangePolicy,
    RegularGridPolicy,
    SampleBalancedPolicy,
    ShardingPolicy,
    ZOrderRangePolicy,
    make_policy,
)
from repro.sharding.rebalance import (
    AdaptiveShardingPolicy,
    MergeMigration,
    RebalanceConfig,
    RebalanceController,
    RebalanceError,
    SplitMigration,
)
from repro.sharding.router import ShardRouter

__all__ = [
    "AdaptiveShardingPolicy",
    "MergeMigration",
    "RebalanceConfig",
    "RebalanceController",
    "RebalanceError",
    "SplitMigration",
    "ShardingPolicy",
    "RegularGridPolicy",
    "CurveRangePolicy",
    "ZOrderRangePolicy",
    "HilbertRangePolicy",
    "SampleBalancedPolicy",
    "SHARDING_POLICY_NAMES",
    "make_policy",
    "ShardRouter",
    "ShardedSpatialIndex",
    "ShardedBatchEngine",
    "CompositeAccessStats",
    "shard_index_factory",
    "SHARDABLE_KINDS",
    "EXACT_KINDS",
]
