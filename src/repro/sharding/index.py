"""The sharded serving index: N shards, each wrapping one ordinary index.

:class:`ShardedSpatialIndex` partitions the data space across ``n_shards``
shards according to a :class:`~repro.sharding.policy.ShardingPolicy`; each
shard wraps an independent index instance (an RSMI or any baseline) built
over exactly the points falling in its region.  All single-operation query
and update methods route through the :class:`~repro.sharding.router
.ShardRouter` to the minimal shard set:

* point lookups / inserts / deletes touch exactly one shard,
* window queries fan out only to shards whose region intersects the window,
* kNN queries expand shards best-first by region MINDIST and stop as soon
  as the k-th candidate is closer than every unvisited shard — usually
  after a single shard.

Shards are **lazily built**: a shard whose region holds no points at build
time stays index-less (queries over it short-circuit to empty) until the
first insert lands there, and a shard whose wrapped index was drained by
deletes short-circuits the same way.  This is what lets the sharded index
survive bulk-churn streams that empty whole regions.

Per-shard :class:`~repro.storage.AccessStats` are created eagerly and
shared with the wrapped index, so block-access accounting both aggregates
across the whole index (:class:`CompositeAccessStats`, which is what the
batched engines and the scenario runner see) and stays attributable per
shard (:meth:`ShardedSpatialIndex.per_shard_stats` — how the benchmarks
assert that window queries skip non-intersecting shards).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.geometry import Rect
from repro.sharding.policy import ShardingPolicy, make_policy
from repro.sharding.rebalance import AdaptiveShardingPolicy, RebalanceError
from repro.sharding.router import ShardRouter
from repro.storage import AccessStats, PageCache, SharedBufferPool, make_page_cache
from repro.storage.block_file import BlockFile

__all__ = [
    "CompositeAccessStats",
    "ShardedSpatialIndex",
    "shard_index_factory",
    "SHARDABLE_KINDS",
    "EXACT_KINDS",
]

_EMPTY = np.empty((0, 2), dtype=float)

#: wrapped index kinds :func:`shard_index_factory` can build; ``RSMIa`` is
#: the exact-query RSMI variant (window/kNN via MBR traversal)
SHARDABLE_KINDS = ("RSMI", "RSMIa", "Grid", "KDB", "HRR", "RR*", "ZM")

#: kinds whose window/kNN answers are exact (drives differential assertions)
EXACT_KINDS = frozenset({"Grid", "KDB", "HRR", "RR*", "RSMIa"})


class _ShardIndexFactory:
    """Picklable ``factory(points, shard_id, stats) -> index`` for one kind.

    A plain class (not a closure) so a built :class:`ShardedSpatialIndex`
    — which keeps its factory for lazily rebuilding emptied shards — can be
    checkpointed through :func:`~repro.core.persistence.save_index`.
    """

    def __init__(self, kind, block_capacity, partition_threshold, training, seed):
        self.kind = kind
        self.block_capacity = block_capacity
        self.partition_threshold = partition_threshold
        self.training = training
        self.seed = seed

    def __call__(
        self, points: np.ndarray, shard_id: int, stats: Optional[AccessStats] = None
    ) -> object:
        from repro.baselines import GridFile, HRRTree, KDBTree, RStarTree, ZMConfig, ZMIndex
        from repro.core import RSMI, RSMIConfig

        shard_seed = self.seed + 7919 * shard_id
        stats = stats if stats is not None else AccessStats()
        if self.kind in ("RSMI", "RSMIa"):
            config = RSMIConfig(
                block_capacity=self.block_capacity,
                partition_threshold=self.partition_threshold,
                training=self.training,
                seed=shard_seed,
            )
            return RSMI(config, stats=stats).build(points)
        if self.kind == "ZM":
            config = ZMConfig(
                block_capacity=self.block_capacity, training=self.training, seed=shard_seed
            )
            return ZMIndex(config, stats=stats).build(points)
        if self.kind == "Grid":
            return GridFile(block_capacity=self.block_capacity, stats=stats).build(points)
        if self.kind == "KDB":
            return KDBTree(block_capacity=self.block_capacity, stats=stats).build(points)
        if self.kind == "HRR":
            return HRRTree(block_capacity=self.block_capacity, stats=stats).build(points)
        return RStarTree(block_capacity=self.block_capacity, stats=stats).build(points)


def shard_index_factory(
    kind: str,
    block_capacity: int = 50,
    partition_threshold: int = 1_000,
    training=None,
    seed: int = 0,
) -> Callable[..., object]:
    """A builder for per-shard indices of one ``kind``.

    Returns ``factory(points, shard_id, stats) -> index``; every shard gets
    an independent instance (with a shard-decorrelated seed for the learned
    kinds) recording its block accesses into the shard's ``stats`` counter.
    ``partition_threshold`` applies per shard, so it should be sized for the
    expected per-shard population, not the global one.  The factory is
    picklable, so sharded indices can be checkpointed by the durable tier.
    """
    from repro.nn import TrainingConfig

    normalized = kind.strip()
    if normalized not in SHARDABLE_KINDS:
        raise ValueError(f"unknown index kind {kind!r}; available: {SHARDABLE_KINDS}")
    training = training if training is not None else TrainingConfig()
    return _ShardIndexFactory(
        normalized, block_capacity, partition_threshold, training, seed
    )


class CompositeAccessStats:
    """Aggregate view over the per-shard :class:`AccessStats` counters.

    Implements the same read/reset/snapshot/delta surface as
    :class:`AccessStats` — including the logical/physical read split — so
    the batched engines and the scenario runner can treat a sharded index
    exactly like a single-index one (per-query deltas included); the
    underlying per-shard counters stay addressable for locality assertions.
    """

    def __init__(self, parts: Sequence[AccessStats]):
        self._parts = list(parts)

    @property
    def block_reads(self) -> int:
        return sum(part.block_reads for part in self._parts)

    @property
    def block_writes(self) -> int:
        return sum(part.block_writes for part in self._parts)

    @property
    def node_reads(self) -> int:
        return sum(part.node_reads for part in self._parts)

    @property
    def total_reads(self) -> int:
        return sum(part.total_reads for part in self._parts)

    @property
    def logical_reads(self) -> int:
        return self.total_reads

    @property
    def physical_block_reads(self) -> int:
        return sum(part.physical_block_reads for part in self._parts)

    @property
    def physical_node_reads(self) -> int:
        return sum(part.physical_node_reads for part in self._parts)

    @property
    def physical_reads(self) -> int:
        return sum(part.physical_reads for part in self._parts)

    @property
    def prefetch_block_reads(self) -> int:
        return sum(part.prefetch_block_reads for part in self._parts)

    @property
    def cache_hits(self) -> int:
        return sum(part.cache_hits for part in self._parts)

    @property
    def hit_ratio(self) -> float:
        logical = self.logical_reads
        return self.cache_hits / logical if logical > 0 else 0.0

    def reset(self) -> None:
        for part in self._parts:
            part.reset()

    def snapshot(self) -> AccessStats:
        """The aggregated counters frozen into a plain :class:`AccessStats`."""
        return AccessStats(
            self.block_reads,
            self.block_writes,
            self.node_reads,
            self.physical_block_reads,
            self.physical_node_reads,
            self.prefetch_block_reads,
        )

    def delta_since(self, earlier: AccessStats) -> AccessStats:
        """Counters accumulated since ``earlier`` (an :class:`AccessStats`
        snapshot, e.g. from :meth:`snapshot`) — same contract as
        :meth:`AccessStats.delta_since`, so sharded runs report per-query
        deltas exactly like single-index runs."""
        return self.snapshot().delta_since(earlier)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompositeAccessStats(shards={len(self._parts)}, total={self.total_reads})"


class _Shard:
    """One shard: a region's stats, cache, live-point count and lazily built index."""

    __slots__ = ("shard_id", "stats", "index", "exact", "cache", "disk_path")

    def __init__(self, shard_id: int, exact: bool, cache: Optional[PageCache] = None):
        self.shard_id = shard_id
        self.stats = AccessStats()
        self.index: Optional[object] = None
        self.exact = exact
        #: shard-local page cache; writes to this shard invalidate only here
        self.cache = cache
        #: where this shard's block-file mirror lives, when the durable tier
        #: asked for one (the open handle lives on the index's block store
        #: and is never pickled; the path survives so lazy builds re-attach)
        self.disk_path: Optional[Path] = None

    @property
    def n_points(self) -> int:
        return int(self.index.n_points) if self.index is not None else 0

    @property
    def is_empty(self) -> bool:
        return self.n_points == 0

    # -- queries (guarded so empty/unbuilt shards short-circuit) ---------------

    def contains(self, x: float, y: float) -> bool:
        if self.is_empty:
            return False
        return bool(self.index.contains(x, y))

    def window_query(self, window: Rect) -> np.ndarray:
        if self.is_empty:
            return _EMPTY.copy()
        if self.exact and hasattr(self.index, "window_query_exact"):
            answer = self.index.window_query_exact(window)
        else:
            answer = self.index.window_query(window)
        return answer.points if hasattr(answer, "points") else answer

    def knn_query(self, x: float, y: float, k: int) -> np.ndarray:
        if self.is_empty:
            return _EMPTY.copy()
        k = min(k, self.n_points)
        if self.exact and hasattr(self.index, "knn_query_exact"):
            answer = self.index.knn_query_exact(x, y, k)
        else:
            answer = self.index.knn_query(x, y, k)
        return answer.points if hasattr(answer, "points") else answer

    def prefetch_windows(self, windows: Sequence[Rect]) -> int:
        """Warm the cache for an upcoming window sub-batch, when the wrapped
        kind can plan its scan range without touching the store (currently
        the ZM family); returns the number of blocks admitted."""
        if self.is_empty:
            return 0
        prefetch = getattr(self.index, "prefetch_window", None)
        if prefetch is None:
            return 0
        return sum(prefetch(window) for window in windows)

    # -- updates ---------------------------------------------------------------

    def insert(self, x: float, y: float, factory, points: Optional[np.ndarray] = None) -> None:
        if self.index is None:
            seedling = (
                points
                if points is not None
                else np.asarray([[x, y]], dtype=float)
            )
            self.index = factory(seedling, self.shard_id, self.stats)
            if self.cache is not None:
                self.attach_cache(self.cache)
            if self.disk_path is not None:
                self.attach_disk(self.disk_path)
            return
        self.index.insert(x, y)

    def attach_cache(self, cache: Optional[PageCache]) -> None:
        """Install this shard's page cache on its (possibly lazy) index."""
        self.cache = cache
        if self.index is not None:
            self.index.attach_cache(cache)

    def attach_disk(self, path: Optional[Path]) -> None:
        """Install (or remove, with None) this shard's block-file mirror.

        Only block-store-backed shard kinds mirror to disk; tree baselines
        (NodePager nodes) record the path but attach nothing.  A lazily
        built shard attaches its mirror the moment its index first exists.
        """
        self.disk_path = path
        store = getattr(self.index, "store", None) if self.index is not None else None
        if store is None or not hasattr(store, "attach_disk"):
            return
        if path is None:
            disk = store.disk
            store.attach_disk(None)
            if disk is not None:
                disk.close()
            return
        if path.exists():
            path.unlink()  # stale mirror from an earlier attach
        store.attach_disk(BlockFile(path, store.capacity))

    def delete(self, x: float, y: float) -> bool:
        if self.is_empty:
            return False
        return bool(self.index.delete(x, y))

    def size_bytes(self) -> int:
        return int(self.index.size_bytes()) if self.index is not None else 0


class ShardedSpatialIndex:
    """N shards behind one spatial-index interface.

    Parameters
    ----------
    factory:
        ``factory(points, shard_id, stats) -> index`` building one shard's
        wrapped index over the shard's ``stats`` counter; use
        :func:`shard_index_factory` for the standard kinds.
    n_shards:
        Number of shards (ignored when ``policy`` is an instance).
    policy:
        A policy name (``"grid"``, ``"zorder"``, ``"balanced"``) resolved at
        :meth:`build` time against the build points, or a ready
        :class:`ShardingPolicy` instance.
    data_space:
        The space the policy partitions (default: the unit square).
    exact_queries:
        True when the wrapped kind answers window/kNN exactly (or, for
        RSMI, to use the exact ``*_exact`` query variants — the RSMIa
        configuration).  Merged sharded answers are then exact too.
    cache_blocks / cache_policy:
        When ``cache_blocks`` is positive, every shard gets its **own**
        :class:`~repro.storage.PageCache` of that capacity (policy
        ``"lru"`` or ``"clock"``).  Caches are shard-local by construction:
        a write routed to one shard invalidates pages in that shard's cache
        only, so hot shards keep their working sets warm regardless of
        churn elsewhere.
    """

    def __init__(
        self,
        factory: Callable[..., object],
        n_shards: int = 4,
        policy: Union[str, ShardingPolicy] = "grid",
        data_space: Optional[Rect] = None,
        exact_queries: Optional[bool] = None,
        name: Optional[str] = None,
        cache_blocks: Optional[int] = None,
        cache_policy: str = "lru",
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.factory = factory
        self.cache_blocks = cache_blocks
        self.cache_policy = cache_policy
        kind = getattr(factory, "kind", None)
        if exact_queries is None:
            exact_queries = kind in EXACT_KINDS
        self.exact_queries = bool(exact_queries)
        self.prefers_exact_queries = self.exact_queries
        #: capability flag: exact per-shard queries make the sharded answers
        #: agree exactly with a brute-force oracle
        self.supports_exact_results = self.exact_queries
        self.supports_attributes = True
        self.data_space = data_space if data_space is not None else Rect.unit()
        if isinstance(policy, ShardingPolicy):
            self._policy_spec: Optional[str] = None
            self.policy: Optional[ShardingPolicy] = policy
            self.n_shards = policy.n_shards
        else:
            self._policy_spec = policy
            self.policy = None
            self.n_shards = n_shards
        self.router: Optional[ShardRouter] = None
        #: the shared buffer pool, when :meth:`attach_shared_pool` installed one
        self.shared_pool: Optional[SharedBufferPool] = None
        self._pool_namespace = "shard"
        self._pool_budget: Optional[int] = None
        self._disk_directory: Optional[Path] = None
        #: rescue buffers for in-flight migrations: writes routed to a
        #: migrating shard are recorded here (as well as applied normally)
        #: so the migration can replay them into the replacement shards
        self._rescue: dict[int, list] = {}
        self.shards: list[_Shard] = []
        self.stats = CompositeAccessStats([])
        self.name = name or f"Sharded[{kind or 'index'}x{self.n_shards}:" + (
            policy.name if isinstance(policy, ShardingPolicy) else str(policy)
        ) + "]"

    # -- lifecycle ------------------------------------------------------------

    def build(self, points: np.ndarray) -> "ShardedSpatialIndex":
        """Partition ``points`` across the shards and build each wrapped index."""
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        if points.shape[0] == 0:
            raise ValueError("cannot build an index over an empty point set")
        if self.policy is None:
            self.policy = make_policy(
                self._policy_spec, self.n_shards, self.data_space, sample=points
            )
        self.router = ShardRouter(self.policy)
        self.shards = [
            _Shard(i, self.exact_queries, make_page_cache(self.cache_blocks, self.cache_policy))
            for i in range(self.n_shards)
        ]
        self.stats = CompositeAccessStats([shard.stats for shard in self.shards])
        owners = self.router.shards_for_points(points)
        self.router.record_assignments(points, owners)
        for shard in self.shards:
            mine = points[owners == shard.shard_id]
            if mine.shape[0] > 0:
                shard.insert(float(mine[0, 0]), float(mine[0, 1]), self.factory, points=mine)
        return self

    def build_assigned(self, shard_points: dict) -> "ShardedSpatialIndex":
        """Build from an explicit ``shard_id -> points`` assignment.

        Requires a resolved :class:`ShardingPolicy` instance (the assignment
        must come from the same policy, or from a snapshot of a built index).
        Shards absent from the map — or mapped to an empty array — stay
        lazily empty, which is how the process-pool serving workers build
        only the shards they own.  Each shard's wrapped index is constructed
        over the given array *in the given order*, so two builds from the
        same assignment produce byte-identical per-shard structures (and
        therefore byte-identical query answers, enumeration order included).
        """
        if self.policy is None:
            raise ValueError("build_assigned requires a ShardingPolicy instance")
        self.router = ShardRouter(self.policy)
        self.shards = [
            _Shard(i, self.exact_queries, make_page_cache(self.cache_blocks, self.cache_policy))
            for i in range(self.n_shards)
        ]
        self.stats = CompositeAccessStats([shard.stats for shard in self.shards])
        for shard_id in sorted(shard_points):
            mine = np.asarray(shard_points[shard_id], dtype=float).reshape(-1, 2)
            if mine.shape[0] == 0:
                continue
            owners = np.full(mine.shape[0], shard_id, dtype=np.int64)
            self.router.record_assignments(mine, owners)
            self.shards[shard_id].insert(
                float(mine[0, 0]), float(mine[0, 1]), self.factory, points=mine
            )
        return self

    def attach_caches(self, cache_blocks: Optional[int], cache_policy: str = "lru") -> None:
        """(Re)install one fresh shard-local page cache per shard.

        ``cache_blocks`` is the per-shard capacity; ``None``/``0`` detaches
        all caches.  Usable after :meth:`build` — e.g. by a serving engine
        that decides cache sizing at deployment time.
        """
        self._require_built()
        self.cache_blocks = cache_blocks
        self.cache_policy = cache_policy
        self.shared_pool = None
        for shard in self.shards:
            shard.attach_cache(make_page_cache(cache_blocks, cache_policy))

    def attach_shared_pool(
        self,
        pool: "SharedBufferPool",
        budget_per_shard: Optional[int] = None,
        namespace: str = "shard",
    ) -> "SharedBufferPool":
        """Serve every shard from one shared buffer pool instead of
        shard-local caches.

        Each shard reads through its own
        :class:`~repro.storage.buffer_pool.PoolClient`
        (``"<namespace>-<shard_id>"``), so writes still invalidate only the
        owning shard's pages, while the pool's whole capacity follows the
        traffic — a drifting hotspot re-uses the full budget instead of
        thrashing one statically sized shard cache.  ``budget_per_shard``
        optionally caps any one shard's occupancy; ``namespace`` keeps
        client names disjoint when several indices share one pool.
        """
        self._require_built()
        self.cache_blocks = None
        self.cache_policy = pool.admission
        self.shared_pool = pool
        self._pool_namespace = namespace
        self._pool_budget = budget_per_shard
        for shard in self.shards:
            shard.attach_cache(pool.client(f"{namespace}-{shard.shard_id}", budget_per_shard))
        return pool

    def attach_disk(self, directory: Union[str, Path]) -> None:
        """Give every shard its own block-file mirror under ``directory``.

        Shard ``i`` writes through to ``shard-<i>.blocks``; shards whose
        wrapped kind has no block store (the tree baselines) are skipped.
        The durability layer calls this for ``--storage-backend disk`` runs,
        and again after recovery — the mirrors are rebuilt from the
        recovered in-memory state, which is authoritative.
        """
        self._require_built()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self._disk_directory = directory
        for shard in self.shards:
            shard.attach_disk(directory / f"shard-{shard.shard_id}.blocks")

    def detach_disk(self) -> None:
        """Close and remove every shard's block-file mirror."""
        self._disk_directory = None
        for shard in self.shards:
            shard.attach_disk(None)

    def _require_built(self) -> None:
        if self.router is None:
            raise RuntimeError("index is not built yet; call build(points) first")

    # -- queries --------------------------------------------------------------

    def contains(self, x: float, y: float) -> bool:
        """True when a point with exactly these coordinates is stored."""
        self._require_built()
        return self.shards[self.router.shard_for_point(float(x), float(y))].contains(
            float(x), float(y)
        )

    def point_query(self, x: float, y: float) -> bool:
        """Adapter-style alias of :meth:`contains`."""
        return self.contains(x, y)

    def window_query(self, window: Rect) -> np.ndarray:
        """All stored points inside ``window``; only intersecting shards are
        touched."""
        self._require_built()
        chunks = [
            self.shards[shard_id].window_query(window)
            for shard_id in self.router.shards_for_window(window)
        ]
        chunks = [chunk for chunk in chunks if chunk.shape[0] > 0]
        return np.vstack(chunks) if chunks else _EMPTY.copy()

    def knn_query(self, x: float, y: float, k: int) -> np.ndarray:
        """The k nearest stored points via best-first shard expansion.

        Shards are visited in ascending region-MINDIST order; expansion
        stops once k candidates are closer than the next shard's bound, so
        far-away shards are never touched.  Exact when the wrapped indices
        answer kNN exactly (shards partition the data, so merging per-shard
        answers loses nothing).
        """
        self._require_built()
        if k < 1:
            raise ValueError("k must be >= 1")
        x, y = float(x), float(y)
        best: list[tuple[float, float, float]] = []  # (distance, px, py), sorted
        for bound, shard_id in self.router.knn_shard_order(x, y):
            if len(best) >= k and bound > best[k - 1][0]:
                break
            shard = self.shards[shard_id]
            if shard.is_empty:
                continue
            for px, py in shard.knn_query(x, y, k):
                distance = float(np.hypot(px - x, py - y))
                best.append((distance, float(px), float(py)))
            best.sort()
            del best[k:]
        return np.asarray([(px, py) for _, px, py in best], dtype=float).reshape(-1, 2)

    # -- updates --------------------------------------------------------------

    def insert(self, x: float, y: float) -> None:
        """Insert a point into the single shard owning it (building the
        shard's index on first use)."""
        self._require_built()
        x, y = float(x), float(y)
        shard_id = self.router.record_insert(x, y)
        self.shards[shard_id].insert(x, y, self.factory)
        rescue = self._rescue.get(shard_id)
        if rescue is not None:
            rescue.append(("insert", x, y))

    def delete(self, x: float, y: float) -> bool:
        """Delete a stored point from the shard owning it."""
        self._require_built()
        x, y = float(x), float(y)
        shard_id = self.router.shard_for_point(x, y)
        deleted = self.shards[shard_id].delete(x, y)
        rescue = self._rescue.get(shard_id)
        if rescue is not None and deleted:
            rescue.append(("delete", x, y))
        return deleted

    # -- online rebalancing hooks ----------------------------------------------
    #
    # The split/merge *decision and staging* live in
    # :mod:`repro.sharding.rebalance`; the methods below are the index-side
    # primitives a migration composes: capture writes into rescue buffers,
    # snapshot a shard's live points, build replacement shards off to the
    # side, and atomically swap them in (policy + shard list + router +
    # caches + disk mirrors all mutate inside one call, so a reader between
    # any two operations sees either the old topology or the new one —
    # never half of each).

    def enable_rebalancing(self) -> AdaptiveShardingPolicy:
        """Wrap the policy so shard regions can be split/merged online.

        Idempotent; routing answers are unchanged until the first split.
        """
        self._require_built()
        if not isinstance(self.policy, AdaptiveShardingPolicy):
            self.policy = AdaptiveShardingPolicy(self.policy)
            self.router.policy = self.policy
        return self.policy

    def register_rescue(self, shard_ids: Sequence[int]) -> list:
        """Start capturing writes routed to ``shard_ids`` (one shared,
        arrival-ordered buffer, so merge migrations replay in order)."""
        buffer: list = []
        for shard_id in shard_ids:
            if shard_id in self._rescue:
                raise RebalanceError(f"shard {shard_id} is already migrating")
            self._rescue[shard_id] = buffer
        return buffer

    def release_rescue(self, shard_ids: Sequence[int]) -> None:
        """Stop capturing writes for ``shard_ids``."""
        for shard_id in shard_ids:
            self._rescue.pop(shard_id, None)

    def live_shard_points(self, shard_id: int) -> np.ndarray:
        """Snapshot every live point of one shard (the migration source).

        Block-store-backed kinds enumerate their store directly; tree kinds
        run an exact window query over the shard's effective extent.  Either
        way the snapshot must account for every live point — a mismatch
        aborts the migration rather than silently dropping data.
        """
        self._require_built()
        shard = self.shards[shard_id]
        if shard.is_empty:
            return _EMPTY.copy()
        store = getattr(shard.index, "store", None)
        if store is not None and hasattr(store, "all_points"):
            points = np.asarray(store.all_points(), dtype=float).reshape(-1, 2)
        else:
            extent = self.router.shard_extent(shard_id)
            pad = 1e-9 * max(1.0, abs(extent.xhi), abs(extent.yhi))
            window = Rect(
                extent.xlo - pad, extent.ylo - pad, extent.xhi + pad, extent.yhi + pad
            )
            points = shard.window_query(window)
        if points.shape[0] != shard.n_points:
            raise RebalanceError(
                f"shard {shard_id} snapshot found {points.shape[0]} points, "
                f"index holds {shard.n_points}"
            )
        return points

    def build_replacement_shard(self, shard_id: int, points: np.ndarray) -> _Shard:
        """Build a detached shard over ``points`` (no cache/disk attached —
        the swap equips it once its id is final)."""
        shard = _Shard(shard_id, self.exact_queries)
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        if points.shape[0] > 0:
            shard.insert(
                float(points[0, 0]), float(points[0, 1]), self.factory, points=points
            )
        return shard

    def _equip_shard(self, shard: _Shard) -> None:
        """Attach the index-level cache/pool/disk configuration to a shard
        whose id is final (new children, relocated shards)."""
        if self.shared_pool is not None:
            client = self.shared_pool.client(
                f"{self._pool_namespace}-{shard.shard_id}", self._pool_budget
            )
            client.clear()  # the name may be reused from a merged-away shard
            shard.attach_cache(client)
        elif self.cache_blocks:
            shard.attach_cache(make_page_cache(self.cache_blocks, self.cache_policy))
        if self._disk_directory is not None:
            shard.attach_disk(self._disk_directory / f"shard-{shard.shard_id}.blocks")

    def swap_in_split(
        self, shard_id: int, axis: int, threshold: float, left: _Shard, right: _Shard
    ) -> int:
        """Atomically replace shard ``shard_id`` with its two children.

        The ``< threshold`` child keeps ``shard_id`` (so per-shard state
        keyed by id stays mostly valid); the other child gets the next free
        id.  Policy, shard list, router overflow bookkeeping, aggregate
        stats and storage attachments all change inside this one call.
        """
        self._require_built()
        if not isinstance(self.policy, AdaptiveShardingPolicy):
            raise RebalanceError("call enable_rebalancing() before splitting")
        if shard_id in self._rescue:
            raise RebalanceError("release the rescue buffer before swapping")
        right_id = self.policy.split(shard_id, axis, threshold)
        old = self.shards[shard_id]
        left.shard_id = shard_id
        right.shard_id = right_id
        self.shards[shard_id] = left
        self.shards.append(right)
        self.n_shards = self.policy.n_shards
        self.router.note_split(shard_id, right_id)
        old.attach_disk(None)  # close the parent's mirror before the child reuses its path
        self._equip_shard(left)
        self._equip_shard(right)
        self.stats = CompositeAccessStats([shard.stats for shard in self.shards])
        return right_id

    def swap_in_merge(self, a: int, b: int, merged: _Shard) -> int:
        """Atomically replace sibling shards ``a`` and ``b`` with ``merged``.

        The merged shard takes ``min(a, b)``; the id hole at ``max(a, b)``
        is filled by relocating the last shard (mirroring the policy's leaf
        move), whose disk mirror — if any — is re-homed to its new name.
        Returns the merged shard's id.
        """
        self._require_built()
        if not isinstance(self.policy, AdaptiveShardingPolicy):
            raise RebalanceError("call enable_rebalancing() before merging")
        if a in self._rescue or b in self._rescue:
            raise RebalanceError("release the rescue buffer before swapping")
        keep, moved = self.policy.merge(a, b)
        drop = b if keep == a else a
        old_keep, old_drop = self.shards[keep], self.shards[drop]
        old_keep.attach_disk(None)
        old_drop.attach_disk(None)
        merged.shard_id = keep
        self.shards[keep] = merged
        last = len(self.shards) - 1
        if moved is not None:
            relocated = self.shards[last]
            had_disk = relocated.disk_path is not None
            if had_disk:
                relocated.attach_disk(None)
            relocated.shard_id = moved[1]
            self.shards[moved[1]] = relocated
            if had_disk and self._disk_directory is not None:
                # attach_disk re-dumps the store, so the mirror follows the id
                relocated.attach_disk(
                    self._disk_directory / f"shard-{relocated.shard_id}.blocks"
                )
        self.shards.pop()
        self.n_shards = self.policy.n_shards
        self.router.note_merge(keep, drop, moved)
        self._equip_shard(merged)
        if self._disk_directory is not None:
            stale = self._disk_directory / f"shard-{last}.blocks"
            if stale.exists():
                stale.unlink()
        self.stats = CompositeAccessStats([shard.stats for shard in self.shards])
        return keep

    def resize_shard_budgets(
        self, shares: dict, min_blocks: int = 1
    ) -> bool:
        """Redistribute the fixed cache budget across shards by ``shares``.

        ``shares`` maps shard id to its fraction of recent heat.  With a
        shared pool attached, per-client budget caps are re-cut from the
        pool's capacity; with shard-local page caches, the total private
        budget (``cache_blocks × n_shards``) is re-cut via
        :meth:`PageCache.resize`.  Returns True when any budget changed.
        """
        self._require_built()
        min_blocks = max(1, int(min_blocks))
        if self.shared_pool is not None:
            total = self.shared_pool.capacity
        elif self.cache_blocks:
            total = int(self.cache_blocks) * len(self.shards)
        else:
            return False
        changed = False
        for shard in self.shards:
            cache = shard.cache
            if cache is None:
                continue
            share = float(shares.get(shard.shard_id, 0.0))
            budget = min(total, max(min_blocks, int(round(total * share))))
            if self.shared_pool is not None:
                if cache.budget != budget:
                    self.shared_pool.client(cache.name, budget)
                    changed = True
            elif cache.capacity != budget:
                cache.resize(budget)
                changed = True
        return changed

    # -- persistence -----------------------------------------------------------

    def __getstate__(self) -> dict:
        """Checkpoint state: rescue buffers are dropped, so a checkpoint
        taken while a migration is in flight persists the pre-swap topology
        (the old shards stay authoritative until the swap — recovery then
        either rolls the whole migration back or, if a later checkpoint
        captured the completed swap, keeps it; never half of each)."""
        state = dict(self.__dict__)
        state["_rescue"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_rescue", {})
        self.__dict__.setdefault("_pool_namespace", "shard")
        self.__dict__.setdefault("_pool_budget", None)
        self.__dict__.setdefault("_disk_directory", None)

    # -- accounting -----------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Live points across all shards."""
        return sum(shard.n_points for shard in self.shards)

    def size_bytes(self) -> int:
        """Total size of all shard indices."""
        return sum(shard.size_bytes() for shard in self.shards)

    def per_shard_points(self) -> list[int]:
        """Live point count per shard (in shard-id order)."""
        return [shard.n_points for shard in self.shards]

    def per_shard_stats(self) -> list[AccessStats]:
        """Each shard's own :class:`AccessStats` (shared with its index)."""
        return [shard.stats for shard in self.shards]

    def per_shard_caches(self) -> list[Optional[PageCache]]:
        """Each shard's page cache (None entries when uncached)."""
        return [shard.cache for shard in self.shards]

    def cache_hit_ratio(self) -> Optional[float]:
        """Aggregate hit ratio across all shard caches (None when uncached)."""
        caches = [cache for cache in self.per_shard_caches() if cache is not None]
        if not caches:
            return None
        accesses = sum(cache.accesses for cache in caches)
        hits = sum(cache.hits for cache in caches)
        return hits / accesses if accesses > 0 else 0.0

    def shard_extents(self) -> list[Rect]:
        """Effective extent of every shard (region plus overflow)."""
        self._require_built()
        return [self.router.shard_extent(i) for i in range(self.n_shards)]

    def extra_metrics(self) -> dict:
        """Shard-level metadata for evaluation reports."""
        per_shard = self.per_shard_points()
        metrics = {
            "n_shards": self.n_shards,
            "policy": self.policy.describe() if self.policy is not None else self._policy_spec,
            "per_shard_points": per_shard,
            "empty_shards": sum(1 for n in per_shard if n == 0),
        }
        hit_ratio = self.cache_hit_ratio()
        if hit_ratio is not None:
            metrics["cache_blocks_per_shard"] = self.cache_blocks
            metrics["cache_policy"] = self.cache_policy
            metrics["cache_hit_ratio"] = round(hit_ratio, 4)
        if self.shared_pool is not None:
            metrics["shared_pool"] = {
                "capacity": self.shared_pool.capacity,
                "admission": self.shared_pool.admission,
                "hit_ratio": round(self.shared_pool.hit_ratio, 4),
                "rejections": self.shared_pool.rejections,
                "prefetch_issued": self.shared_pool.prefetch_issued,
                "prefetch_used": self.shared_pool.prefetch_used,
            }
        return metrics

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedSpatialIndex(name={self.name!r}, shards={self.n_shards}, "
            f"points={self.n_points})"
        )
