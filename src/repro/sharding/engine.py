"""Parallel batch dispatch over a sharded index.

:class:`ShardedBatchEngine` is the sharded sibling of
:class:`~repro.engine.BatchQueryEngine`: it accepts the same whole-batch
query calls, but first **groups the batch per shard** through the
:class:`~repro.sharding.router.ShardRouter` and then dispatches each
shard's sub-batch through that shard's own ``BatchQueryEngine`` (so
RSMI-backed shards keep the vectorised level-synchronous paths).  Per-shard
sub-batches are independent, which is what makes the dispatch loop
embarrassingly parallel: in ``"threaded"`` mode the sub-batches run on a
thread pool.

Results are scattered back into input order and the per-shard
:class:`~repro.storage.AccessStats` totals are aggregated onto the returned
:class:`~repro.core.batch.BatchResult` — both as a batch total and as a
``per_shard_block_accesses`` map, so shard-locality claims ("this window
batch only touched two shards") stay checkable.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analytics.ops import (
    QueryRequest,
    QueryResult,
    warn_deprecated_entry_point,
)
from repro.core.batch import BatchResult, latency_from_durations, latency_uniform
from repro.engine import BatchQueryEngine, ENGINE_MODES, run_threaded
from repro.sharding.index import ShardedSpatialIndex

__all__ = ["ShardedBatchEngine"]

_EMPTY = np.empty((0, 2), dtype=float)


class ShardedBatchEngine:
    """Execute query batches against a :class:`ShardedSpatialIndex`.

    Parameters
    ----------
    index:
        A built sharded index.
    mode:
        ``"auto"`` (default) runs one sub-batch per touched shard through a
        per-shard :class:`BatchQueryEngine` in its ``"auto"`` mode;
        ``"sequential"`` forces the per-query path inside every shard;
        ``"threaded"`` keeps the per-shard engines in ``"auto"`` mode but
        dispatches the independent shard sub-batches on a thread pool
        (block-access counters stay exact for point/window batches — each
        thread touches one shard's counters — and results are always
        identical to sequential dispatch);
        ``"vectorized"`` requires every touched shard to wrap an RSMI.
    n_workers:
        Thread-pool width for ``"threaded"`` dispatch.
    cache_blocks / cache_policy:
        When ``cache_blocks`` is positive, installs one fresh shard-local
        :class:`~repro.storage.PageCache` of that capacity per shard (see
        :meth:`ShardedSpatialIndex.attach_caches`); answers are unchanged,
        only the physical-read accounting drops on warm working sets.
    shared_pool / shard_budget:
        Serve every shard from one
        :class:`~repro.storage.SharedBufferPool` instead of shard-local
        caches (mutually exclusive with ``cache_blocks``; see
        :meth:`ShardedSpatialIndex.attach_shared_pool`).  ``shard_budget``
        optionally caps any one shard's pool occupancy.
    reorder:
        Forwarded to every per-shard :class:`BatchQueryEngine`: fallback
        sub-batches execute in Hilbert-key order and scatter back, so one
        shard's hot blocks fault once per sub-batch.
    """

    def __init__(
        self,
        index: ShardedSpatialIndex,
        mode: str = "auto",
        n_workers=None,
        cache_blocks=None,
        cache_policy: str = "lru",
        shared_pool=None,
        shard_budget=None,
        reorder: bool = False,
    ):
        if mode not in ENGINE_MODES:
            raise ValueError(f"unknown engine mode {mode!r}; available: {ENGINE_MODES}")
        if not isinstance(index, ShardedSpatialIndex):
            raise TypeError(
                f"ShardedBatchEngine requires a ShardedSpatialIndex, got {type(index).__name__}"
            )
        index._require_built()
        self.index = index
        self.mode = mode
        self.n_workers = n_workers
        self.reorder = bool(reorder)
        if cache_blocks is not None and shared_pool is not None:
            raise ValueError("pass either cache_blocks or shared_pool, not both")
        if cache_blocks is not None:
            index.attach_caches(cache_blocks, cache_policy)
        if shared_pool is not None:
            index.attach_shared_pool(shared_pool, budget_per_shard=shard_budget)
        self._parallel = mode == "threaded"
        self._shard_mode = "auto" if mode == "threaded" else mode
        #: shard_id -> (wrapped index identity, engine); rebuilt when a shard's
        #: lazily built index appears or is replaced
        self._engines: dict[int, tuple[int, BatchQueryEngine]] = {}

    # ------------------------------------------------------------------ queries --

    def execute(self, request: QueryRequest) -> QueryResult:
        """Execute one :class:`~repro.analytics.ops.QueryRequest`.

        The canonical entry point (same protocol as
        :class:`BatchQueryEngine`): the batch is grouped per shard, each
        shard answers through its own engine, and per-op values scatter
        back to request order.  Aggregate requests merge per-shard
        *partials* in shard-id order at this router — point sets never
        cross the shard boundary.
        """
        if request.kind == "point":
            return QueryResult.from_batch("point", self._run_points(request.points))
        if request.kind == "window":
            return QueryResult.from_batch("window", self._run_windows(request.windows))
        if request.kind == "knn":
            return QueryResult.from_batch("knn", self._run_knn(request.points, request.k))
        return QueryResult.from_batch(
            "aggregate", self._run_aggregates(request.aggregates)
        )

    def point_queries(self, points: np.ndarray) -> BatchResult:
        """Deprecated shim over :meth:`execute`; use
        ``execute(QueryRequest.for_points(...))`` in new code."""
        warn_deprecated_entry_point(
            "ShardedBatchEngine.point_queries", "execute(QueryRequest.for_points(...))"
        )
        return self._run_points(points)

    def window_queries(self, windows) -> BatchResult:
        """Deprecated shim over :meth:`execute`; use
        ``execute(QueryRequest.for_windows(...))`` in new code."""
        warn_deprecated_entry_point(
            "ShardedBatchEngine.window_queries",
            "execute(QueryRequest.for_windows(...))",
        )
        return self._run_windows(windows)

    def knn_queries(self, queries: np.ndarray, k: int) -> BatchResult:
        """Deprecated shim over :meth:`execute`; use
        ``execute(QueryRequest.for_knn(...))`` in new code."""
        warn_deprecated_entry_point(
            "ShardedBatchEngine.knn_queries", "execute(QueryRequest.for_knn(...))"
        )
        return self._run_knn(queries, k)

    def _run_points(self, points: np.ndarray) -> BatchResult:
        """Membership of every row of ``points``; booleans in input order."""
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        self.index.stats.reset()
        results: list = [False] * points.shape[0]
        if points.shape[0] == 0:
            return BatchResult(results=results, total_block_accesses=0,
                               per_shard_block_accesses={},
                               total_physical_accesses=0)
        owners = self.index.router.shards_for_points(points)
        shard_positions = {
            int(shard_id): np.nonzero(owners == shard_id)[0].tolist()
            for shard_id in np.unique(owners)
        }

        def one_shard(shard_id: int) -> None:
            positions = shard_positions[shard_id]
            shard = self.index.shards[shard_id]
            if shard.is_empty:
                return
            batch = self._engine_for(shard_id)._run_points(points[positions])
            for position, found in zip(positions, batch.results):
                results[position] = bool(found)

        timings = self._dispatch(one_shard, sorted(shard_positions))
        return self._finalize(results, timings=timings, shard_positions=shard_positions)

    def _run_windows(self, windows) -> BatchResult:
        """Window queries; each result is an ``(m, 2)`` array in input order.

        Each window fans out only to the shards its extent intersects;
        per-window results merge the per-shard answers in shard-id order.
        """
        windows = list(windows)
        self.index.stats.reset()
        if not windows:
            return BatchResult(results=[], total_block_accesses=0,
                               per_shard_block_accesses={},
                               total_physical_accesses=0)
        by_shard: dict[int, list[int]] = {}
        for window_index, window in enumerate(windows):
            for shard_id in self.index.router.shards_for_window(window):
                by_shard.setdefault(shard_id, []).append(window_index)
        parts: list[list[np.ndarray]] = [[] for _ in windows]

        def one_shard(shard_id: int) -> None:
            shard = self.index.shards[shard_id]
            if shard.is_empty:
                return
            window_indices = by_shard[shard_id]
            shard_windows = [windows[i] for i in window_indices]
            # warm the shard's cache for the whole sub-batch up front: the
            # per-scan look-ahead inside the store never covers the first
            # position of each prefetch stride, this does (PR-7 follow-up)
            admitted = shard.prefetch_windows(shard_windows)
            batch = self._engine_for(shard_id)._run_windows(shard_windows)
            if admitted:
                # the per-shard engine resets the shard's counters at batch
                # entry; the speculative I/O belongs to this batch interval
                shard.stats.record_block_prefetch(admitted)
            for window_index, chunk in zip(window_indices, batch.results):
                parts[window_index].append((shard_id, chunk))

        timings = self._dispatch(one_shard, sorted(by_shard))
        results = []
        for chunks in parts:
            chunks = [chunk for _, chunk in sorted(chunks, key=lambda c: c[0])]
            chunks = [chunk for chunk in chunks if chunk.shape[0] > 0]
            results.append(np.vstack(chunks) if chunks else _EMPTY.copy())
        return self._finalize(results, timings=timings, shard_positions=by_shard)

    def _run_knn(self, queries: np.ndarray, k: int) -> BatchResult:
        """kNN queries via the index's best-first shard expansion per query."""
        if k < 1:
            raise ValueError("k must be >= 1")
        queries = np.asarray(queries, dtype=float).reshape(-1, 2)
        self.index.stats.reset()

        durations: list[float] = []

        def one(row) -> np.ndarray:
            started = time.perf_counter()
            answer = self.index.knn_query(float(row[0]), float(row[1]), k)
            durations.append(time.perf_counter() - started)
            return answer

        if self._parallel and queries.shape[0] > 1:
            # concurrent queries may share shards: results stay exact, the
            # per-shard access counters become approximate (same caveat as
            # BatchQueryEngine's threaded mode)
            results = run_threaded(one, list(queries), self.n_workers)
        else:
            results = [one(row) for row in queries]
        # a kNN query's best-first expansion crosses shards, so latency is
        # attributed per query only, never per shard
        return self._finalize(results, durations=durations)

    def _run_aggregates(self, specs) -> BatchResult:
        """Aggregates with per-shard partial push-down.

        Each spec fans out to the shards its window intersects; every shard
        folds its blocks into one partial per spec
        (:meth:`BatchQueryEngine.aggregate_partials`), and this router
        merges the partials in shard-id order before finalising — the merge
        order is deterministic, so answers are identical however the shard
        sub-batches interleave in threaded dispatch.
        """
        specs = list(specs)
        self.index.stats.reset()
        if not specs:
            return BatchResult(results=[], total_block_accesses=0,
                               per_shard_block_accesses={},
                               total_physical_accesses=0)
        by_shard: dict[int, list[int]] = {}
        for spec_index, spec in enumerate(specs):
            for shard_id in self.index.router.shards_for_window(spec.window):
                by_shard.setdefault(shard_id, []).append(spec_index)
        parts: list[list[tuple[int, object]]] = [[] for _ in specs]

        def one_shard(shard_id: int) -> None:
            shard = self.index.shards[shard_id]
            if shard.is_empty:
                return
            spec_indices = by_shard[shard_id]
            shard_specs = [specs[i] for i in spec_indices]
            # same up-front cache warming as the window path: an aggregate
            # touches exactly the blocks a window scan would
            admitted = shard.prefetch_windows([s.window for s in shard_specs])
            batch = self._engine_for(shard_id).aggregate_partials(shard_specs)
            if admitted:
                shard.stats.record_block_prefetch(admitted)
            for spec_index, partial in zip(spec_indices, batch.results):
                parts[spec_index].append((shard_id, partial))

        timings = self._dispatch(one_shard, sorted(by_shard))
        results = []
        for spec, chunks in zip(specs, parts):
            merged = spec.new_partial()
            for _, partial in sorted(chunks, key=lambda c: c[0]):
                merged = merged.merge(partial)
            results.append(spec.finalize(merged))
        return self._finalize(results, timings=timings, shard_positions=by_shard)

    def aggregate_partials(self, specs) -> BatchResult:
        """Per-spec partials merged across this index's shards (unfinalised).

        The serving tier's per-worker surface: a worker's engine owns a
        subset of shards, merges their per-shard partials locally (shard-id
        order) and ships **one partial per spec** back to the parent, which
        merges across workers.
        """
        specs = list(specs)
        self.index.stats.reset()
        by_shard: dict[int, list[int]] = {}
        for spec_index, spec in enumerate(specs):
            for shard_id in self.index.router.shards_for_window(spec.window):
                by_shard.setdefault(shard_id, []).append(spec_index)
        parts: list[list[tuple[int, object]]] = [[] for _ in specs]
        for shard_id in sorted(by_shard):
            shard = self.index.shards[shard_id]
            if shard.is_empty:
                continue
            spec_indices = by_shard[shard_id]
            shard_specs = [specs[i] for i in spec_indices]
            admitted = shard.prefetch_windows([s.window for s in shard_specs])
            batch = self._engine_for(shard_id).aggregate_partials(shard_specs)
            if admitted:
                shard.stats.record_block_prefetch(admitted)
            for spec_index, partial in zip(spec_indices, batch.results):
                parts[spec_index].append((shard_id, partial))
        merged_partials = []
        for spec, chunks in zip(specs, parts):
            merged = spec.new_partial()
            for _, partial in sorted(chunks, key=lambda c: c[0]):
                merged = merged.merge(partial)
            merged_partials.append(merged)
        return self._finalize(merged_partials, timings=None, shard_positions=None)

    # ------------------------------------------------------------------ plumbing --

    def engine_for(self, shard_id: int) -> BatchQueryEngine:
        """The per-shard :class:`BatchQueryEngine` serving ``shard_id``.

        Public so the process-pool serving workers can drive one shard's
        sub-batch directly (the shard grouping having happened in the parent
        process); the engine is cached per wrapped-index identity exactly
        like the internal dispatch paths use it.
        """
        return self._engine_for(shard_id)

    def _engine_for(self, shard_id: int) -> BatchQueryEngine:
        shard = self.index.shards[shard_id]
        cached = self._engines.get(shard_id)
        if cached is not None and cached[0] == id(shard.index):
            return cached[1]
        target = shard.index
        if shard.exact and hasattr(target, "window_query_exact"):
            # exact-RSMI shards answer windows via the MBR traversal; the
            # adapter's prefers_exact_queries flag keeps the per-shard engine
            # off the approximate vectorised window path
            from repro.evaluation.adapters import RSMIExactAdapter

            target = RSMIExactAdapter(target)
        engine = BatchQueryEngine(target, mode=self._shard_mode, reorder=self.reorder)
        self._engines[shard_id] = (id(shard.index), engine)
        return engine

    def _dispatch(self, fn, shard_ids: list[int]) -> dict[int, float]:
        """Run ``fn`` per shard, returning each shard's dispatch wall seconds."""
        timings: dict[int, float] = {}

        def timed(shard_id: int) -> None:
            started = time.perf_counter()
            fn(shard_id)
            timings[shard_id] = time.perf_counter() - started

        if self._parallel and len(shard_ids) > 1:
            run_threaded(timed, shard_ids, self.n_workers)
        else:
            for shard_id in shard_ids:
                timed(shard_id)
        return timings

    def _finalize(
        self,
        results: list,
        timings: dict[int, float] | None = None,
        shard_positions: dict[int, list[int]] | None = None,
        durations: list[float] | None = None,
    ) -> BatchResult:
        per_shard = {
            shard.shard_id: shard.stats.total_reads
            for shard in self.index.shards
            if shard.stats.total_reads > 0
        }
        per_shard_latency = None
        latency = latency_from_durations(durations)
        if timings is not None and shard_positions is not None:
            # each shard's sub-batch wall time, attributed uniformly across
            # the sub-batch's queries (mirrors the vectorised engine path);
            # the batch summary is per *query*: a window spanning several
            # shards accumulates its share from each, so count == n queries
            per_shard_latency = {}
            per_query = np.zeros(len(results), dtype=float)
            for shard_id, elapsed in sorted(timings.items()):
                positions = shard_positions.get(shard_id) or []
                summary = latency_uniform(elapsed, len(positions))
                if summary is None:
                    continue
                per_shard_latency[shard_id] = summary
                per_query[positions] += elapsed / len(positions)
            if per_shard_latency:
                latency = latency_from_durations(per_query)
        return BatchResult(
            results=results,
            total_block_accesses=sum(per_shard.values()),
            per_shard_block_accesses=per_shard,
            total_physical_accesses=sum(
                shard.stats.physical_reads for shard in self.index.shards
            ),
            latency=latency,
            per_shard_latency=per_shard_latency,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedBatchEngine(index={self.index.name!r}, mode={self.mode!r}, "
            f"shards={self.index.n_shards})"
        )
