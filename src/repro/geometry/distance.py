"""Distance metrics used by the kNN query algorithms.

The paper's kNN algorithms (Section 4.3) rank candidate blocks by the
``MINDIST`` metric of Roussopoulos et al. [40]: the smallest Euclidean
distance between the query point and any point of a rectangle.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.rect import Rect

__all__ = ["euclidean", "euclidean_many", "mindist_point_rect"]


def euclidean(x1: float, y1: float, x2: float, y2: float) -> float:
    """Euclidean distance between two points."""
    return math.hypot(x1 - x2, y1 - y2)


def euclidean_many(query: tuple[float, float] | np.ndarray, points: np.ndarray) -> np.ndarray:
    """Euclidean distances from ``query`` to every row of ``points`` (shape ``(n, 2)``)."""
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must have shape (n, 2)")
    qx, qy = float(query[0]), float(query[1])
    return np.hypot(points[:, 0] - qx, points[:, 1] - qy)


def mindist_point_rect(x: float, y: float, rect: Rect) -> float:
    """MINDIST between a point and a rectangle (0 when the point is inside)."""
    dx = 0.0
    if x < rect.xlo:
        dx = rect.xlo - x
    elif x > rect.xhi:
        dx = x - rect.xhi
    dy = 0.0
    if y < rect.ylo:
        dy = rect.ylo - y
    elif y > rect.yhi:
        dy = y - rect.yhi
    return math.hypot(dx, dy)
