"""Geometric primitives shared by all spatial indices.

The paper works in 2-dimensional Euclidean space with point data inside the
unit square (coordinates are normalised before indexing, cf. Section 6.1 of
the paper).  This package provides:

* :class:`~repro.geometry.rect.Rect` — axis-aligned rectangles used both as
  query windows and as minimum bounding rectangles (MBRs),
* distance helpers (:func:`~repro.geometry.distance.euclidean`,
  :func:`~repro.geometry.distance.mindist`) used by the kNN algorithms,
* small vectorised utilities for containment tests over NumPy point arrays.
"""

from repro.geometry.rect import Rect, mbr_of_points, union_rects
from repro.geometry.distance import euclidean, euclidean_many, mindist_point_rect

__all__ = [
    "Rect",
    "mbr_of_points",
    "union_rects",
    "euclidean",
    "euclidean_many",
    "mindist_point_rect",
]
