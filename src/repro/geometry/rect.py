"""Axis-aligned rectangles (query windows and MBRs)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = ["Rect", "mbr_of_points", "union_rects"]


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]``.

    Rectangles are closed on all sides, matching the usual convention for
    both window queries and minimum bounding rectangles: a point lying
    exactly on the border is considered covered.
    """

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xlo > self.xhi or self.ylo > self.yhi:
            raise ValueError(
                f"degenerate rectangle: ({self.xlo}, {self.ylo}, {self.xhi}, {self.yhi})"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_center(cls, cx: float, cy: float, width: float, height: float) -> "Rect":
        """Build a rectangle from its center point and side lengths."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        return cls(cx - width / 2.0, cy - height / 2.0, cx + width / 2.0, cy + height / 2.0)

    @classmethod
    def unit(cls) -> "Rect":
        """The unit square ``[0, 1] x [0, 1]`` used as the default data space."""
        return cls(0.0, 0.0, 1.0, 1.0)

    # -- basic measures ----------------------------------------------------

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)

    @property
    def corners(self) -> list[tuple[float, float]]:
        """The four corners: bottom-left, bottom-right, top-left, top-right."""
        return [
            (self.xlo, self.ylo),
            (self.xhi, self.ylo),
            (self.xlo, self.yhi),
            (self.xhi, self.yhi),
        ]

    # -- predicates --------------------------------------------------------

    def contains_point(self, x: float, y: float) -> bool:
        return self.xlo <= x <= self.xhi and self.ylo <= y <= self.yhi

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and self.xhi >= other.xhi
            and self.yhi >= other.yhi
        )

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.xlo > self.xhi
            or other.xhi < self.xlo
            or other.ylo > self.yhi
            or other.yhi < self.ylo
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.xlo, other.xlo),
            max(self.ylo, other.ylo),
            min(self.xhi, other.xhi),
            min(self.yhi, other.yhi),
        )

    # -- combination -------------------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def expand_to_point(self, x: float, y: float) -> "Rect":
        return Rect(
            min(self.xlo, x), min(self.ylo, y), max(self.xhi, x), max(self.yhi, y)
        )

    def clip_to(self, other: "Rect") -> "Rect":
        """Clip this rectangle so it lies inside ``other`` (must overlap)."""
        clipped = self.intersection(other)
        if clipped is None:
            raise ValueError("cannot clip: rectangles are disjoint")
        return clipped

    # -- vectorised helpers -------------------------------------------------

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of the rows of ``points`` (shape ``(n, 2)``) inside the rect."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("points must have shape (n, 2)")
        return (
            (points[:, 0] >= self.xlo)
            & (points[:, 0] <= self.xhi)
            & (points[:, 1] >= self.ylo)
            & (points[:, 1] <= self.yhi)
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.xlo, self.ylo, self.xhi, self.yhi)


def mbr_of_points(points: np.ndarray) -> Rect:
    """The minimum bounding rectangle of a non-empty ``(n, 2)`` point array."""
    points = np.asarray(points, dtype=float)
    if points.size == 0:
        raise ValueError("cannot compute the MBR of an empty point set")
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must have shape (n, 2)")
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    return Rect(float(lo[0]), float(lo[1]), float(hi[0]), float(hi[1]))


def union_rects(rects: Iterable[Rect] | Sequence[Rect]) -> Rect:
    """The MBR covering every rectangle in ``rects`` (must be non-empty)."""
    rects = list(rects)
    if not rects:
        raise ValueError("cannot union an empty collection of rectangles")
    result = rects[0]
    for rect in rects[1:]:
        result = result.union(rect)
    return result
