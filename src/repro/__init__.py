"""Reproduction of "Effectively Learning Spatial Indices" (Qi et al., VLDB 2020).

The package implements the Recursive Spatial Model Index (RSMI) — a learned
index for two-dimensional point data — together with every baseline index the
paper evaluates against, the substrate libraries (NumPy neural networks,
space-filling curves, simulated block storage), data-set and query-workload
generators, and an experiment harness that regenerates every table and figure
of the paper's evaluation section.

Quick start::

    import numpy as np
    from repro import RSMI, RSMIConfig, Rect
    from repro.datasets import generate_uniform

    points = generate_uniform(20_000, seed=7)
    index = RSMI(RSMIConfig(block_capacity=50, partition_threshold=2_000)).build(points)

    index.contains(*points[0])                     # point query
    index.window_query(Rect(0.2, 0.2, 0.3, 0.3))   # window query
    index.knn_query(0.5, 0.5, k=10)                # k nearest neighbours

Batched execution
-----------------

The paper defines its query algorithms per query; serving heavy traffic
means executing them in batches.  :class:`~repro.engine.BatchQueryEngine`
pushes whole query arrays through the RSMI level-synchronously — one
vectorised model call per touched sub-model, one block scan per touched
block — and falls back to a uniform (optionally thread-pooled) per-query
path for the baseline indices and for query types without a vectorised
formulation.  Results are identical to the sequential paths (asserted by the
differential harness in ``tests/test_engine_differential.py``), typically at
an order of magnitude fewer block accesses per batch::

    from repro import BatchQueryEngine
    from repro.analytics import QueryRequest

    engine = BatchQueryEngine(index)           # also accepts baselines/adapters
    engine.execute(QueryRequest.for_points(points[:1000]))   # booleans
    engine.execute(QueryRequest.for_windows(windows))        # point arrays
    engine.execute(QueryRequest.for_knn(points[:100], k=10)) # point arrays

(The former per-kind entry points ``point_queries``/``window_queries``/
``knn_queries`` survive as deprecated shims over the same internals and
emit ``DeprecationWarning``.)

The experiment harness opts in through the measurement functions'
``execution="batched"`` parameter (:mod:`repro.evaluation.runner`) or the
CLI's ``--execution batched`` flag; see ``examples/batched_queries.py`` for a
runnable tour.

Analytic queries: push-down aggregates, quantiles, top-k
--------------------------------------------------------

Production spatial services also answer **aggregate** questions — count/
sum/mean over a window, quantiles of an attribute within a region,
top-k-by-attribute.  :mod:`repro.analytics` defines them as engine-level
operators: an :class:`~repro.analytics.AggregateSpec` names the operator
and window (the attribute column is a deterministic per-point value, so
every answer has a brute-force reference,
:func:`~repro.analytics.exact_aggregate`), and the engines push the
aggregation **down to the blocks** — each touched block emits a partial
(count/sum pairs, a mergeable quantile sketch, a bounded top-k heap),
partials merge per shard and again at the router, and only the merged
partials cross shard or worker-process boundaries::

    from repro.analytics import AggregateSpec, QueryRequest

    specs = [AggregateSpec(op="quantile", window=Rect(0.2, 0.2, 0.4, 0.4), q=0.9),
             AggregateSpec(op="top-k", window=Rect(0.5, 0.5, 0.7, 0.7), k=8)]
    result = engine.execute(QueryRequest.for_aggregates(specs))
    result.values[0].value            # the in-region 0.9-quantile
    result.values[0].max_rank_error   # the sketch's self-reported rank bound
    result.access.logical_reads       # blocks touched, not a full scan

Indexes whose ``supports_exact_results`` flag is set reproduce the
brute-force answers exactly (quantiles within the sketch's self-reported
rank-error bound); the approximate learned indexes (ZM, raw RSMI) get
soundness checks.  Every operator is differentially fuzzed against the
oracle across index kinds, sharding policies, caches, mid-migration
rebalancing and worker processes
(``tests/test_analytics_differential.py``); the ``analytics-mixed``
scenario preset and ``analytics-sweep``/``rebuild-policy`` experiments
drive the same machinery from the CLI, and
``benchmarks/bench_analytics.py`` gates the blocks-touched reduction
(``BENCH_analytics.json``).

Scenario workloads & fuzzing
----------------------------

The paper measures static query workloads and isolated update sweeps;
production serving means interleaved, shifting read/write mixes.
:mod:`repro.workloads` declares such scenarios and replays them: a
:class:`~repro.workloads.ScenarioSpec` fixes the operation mix
(point/window/kNN/insert/delete), the arrival pattern and a key
distribution (``hotspot``, ``drifting``, ``zipfian``, ``bulk-churn``, ...);
the :class:`~repro.workloads.ScenarioRunner` drives any index through the
resulting seeded stream via the batched engine, emitting periodic
:class:`~repro.workloads.ScenarioSnapshot` metrics.  Attaching the
brute-force :class:`~repro.workloads.OracleIndex` shadow turns the same run
into a model-based differential fuzz case (every answer checked, mismatches
raise)::

    from repro.workloads import OracleIndex, ScenarioRunner, scenario_by_name

    spec = scenario_by_name("hotspot").with_overrides(n_ops=5_000)
    runner = ScenarioRunner(index, spec, oracle=OracleIndex().build(points))
    result = runner.run(points)          # raises ScenarioMismatch on any bug
    result.snapshots                     # throughput / recall / chain depth

The CLI exposes the presets via ``repro-experiment --scenario <name>``;
``tests/test_scenario_fuzz.py`` fuzzes every index with the same machinery,
and ``examples/scenario_run.py`` is a runnable tour.

Latency-aware serving & multi-tenancy
-------------------------------------

Block accesses are load-independent; users feel latency under load, and
its *tail* is what matters at serving scale.  :mod:`repro.workloads`
measures it without threads: every :class:`~repro.workloads.ScenarioSpec`
carries an **arrival model** — ``closed-loop`` (each operation issued as
the previous completes, plus think time) or ``open-loop`` (a seeded
virtual-time Poisson/bursty schedule at ``arrival_rate`` ops/s) — and the
:class:`~repro.workloads.ScenarioRunner` feeds measured per-op service
times through a :class:`~repro.workloads.VirtualClock`, yielding sojourn
times that include queueing delay once the offered rate outpaces the
server.  Percentiles come from seeded reservoir
:class:`~repro.workloads.PercentileSketch` es and surface as p50/p95/p99
on snapshots, results (per kind, per tenant, with a Jain fairness index)
and on every engine :class:`~repro.core.batch.BatchResult` (per shard on
the sharded engine)::

    from repro.workloads import (
        MultiTenantOracle, ScenarioRunner, generate_tenant_operations,
        scenario_by_name,
    )

    spec = scenario_by_name("latency-hotspot")      # open-loop preset
    result = ScenarioRunner(index, spec).run(points)
    result.latency.p99_ms                           # queue-inclusive sojourn
    result.service_latency.p99_ms                   # pure service time

    # N independently-seeded tenant streams merged by arrival time, each
    # checked against its own oracle shadow
    ops, slices = generate_tenant_operations(spec, points, 3)
    oracle = MultiTenantOracle(3).build(slices)
    result = ScenarioRunner(index, spec, oracle=oracle).replay(ops)
    result.latency_by_tenant                        # per-tenant p50/p95/p99
    result.fairness                                 # Jain's index

CLI: ``--tenants N``, ``--arrival-rate R``, the ``latency-sweep``
experiment; ``benchmarks/bench_latency_serving.py`` emits
``BENCH_latency.json``, gated against committed baselines by CI's
perf-gate job via ``tools/check_bench.py``;
``examples/latency_serving.py`` is a runnable tour.

Paged storage & caching
-----------------------

Every index reports its cost through one paged-storage seam: the learned
indices read data blocks through :class:`~repro.storage.BlockStore`, and
the tree baselines read their nodes through the
:class:`~repro.storage.NodePager` façade (stable page ids per node, same
accounting).  A :class:`~repro.storage.PageCache` — LRU or clock
replacement, dirty-page invalidation on writes/splits/overflow growth —
can be attached in front of any index, splitting
:class:`~repro.storage.AccessStats` into **logical** reads (what the
algorithm touched; the paper's "# block accesses", identical with the
cache on or off) and **physical** reads (what actually hit storage)::

    from repro import BatchQueryEngine
    from repro.analytics import QueryRequest
    from repro.storage import PageCache

    index.attach_cache(PageCache(64, "lru"))     # any index kind
    engine = BatchQueryEngine(index)             # or cache_blocks=64 here
    result = engine.execute(QueryRequest.for_points(points[:1000]))
    result.access.logical_reads                  # logical (unchanged)
    result.access.physical_reads                 # post-cache
    result.access.cache_hit_ratio

Sharded deployments take one cache **per shard**
(``ShardedSpatialIndex(..., cache_blocks=64)``), so a write routed to one
shard invalidates pages in that shard's cache only.  Answers never depend
on caching (``tests/test_cache_differential.py`` fuzzes every index kind
and sharding policy against the oracle with caches attached);
``benchmarks/bench_block_cache.py`` asserts a ≥3x physical-read reduction
on hotspot point batches at a cache ~10% of the block count, and the
``cache-sweep`` experiment (CLI: ``--cache-blocks/--cache-policy``) maps
the full cost curve.

Durable storage & crash recovery
--------------------------------

The block store simulates external memory; a durable deployment must
survive a killed process.  :class:`~repro.storage.DurableIndex` wraps any
built index (RSMI, baseline, or sharded) with that guarantee: every
``insert``/``delete`` is appended to a checksummed
:class:`~repro.storage.WriteAheadLog` **before** it is applied
(append-before-apply, unbuffered writes, per-append ``fsync`` by default),
every ``checkpoint_every`` writes the whole index is checkpointed through
:func:`~repro.core.save_index` — which writes a temp file in the
destination directory, ``fsync``\\ s it and atomically ``os.replace``\\ s it
over the old artifact, so a crash mid-save can never destroy the previous
checkpoint — and the WAL is reset.  With ``backend="disk"`` the block
store additionally mirrors every block into a CRC-checked
:class:`~repro.storage.BlockFile` (one per shard when sharded) and serves
cache-missing reads by deserialising from the file, so physical reads are
actual I/O::

    from repro.storage import DurableIndex

    durable = DurableIndex(index, "storage/run1", checkpoint_every=256,
                           backend="disk")
    durable.insert(0.3, 0.7)        # WAL first, then applied
    # ... process dies here; later:
    recovered, report = DurableIndex.recover("storage/run1", backend="disk")
    report.describe()               # "recovered from checkpoint.idx + N WAL record(s)"

Recovery loads the newest checkpoint, truncates any **torn WAL tail** (a
crash mid-append) and replays the surviving records through the index's
own update surface.  The crash-recovery fuzz harness
(:func:`~repro.workloads.run_crash_recovery`,
``tests/test_crash_recovery.py``) kills seeded scenario streams at
arbitrary operations — optionally tearing the last WAL record — and
asserts exact agreement with an oracle over the surviving prefix.  CLI:
``--storage-backend disk --checkpoint-every N``;
``benchmarks/bench_durability.py`` emits ``BENCH_durability.json``
showing cold-start-from-checkpoint beating a full rebuild.

Sharded serving
---------------

One index serves one machine's worth of traffic; production serving
partitions the data space across shards.  :mod:`repro.sharding` provides
the serving stack: a :class:`~repro.sharding.ShardingPolicy` decides where
data lives (``grid``, ``zorder`` ranges, or sample-``balanced`` k-d style
regions), the :class:`~repro.sharding.ShardRouter` maps every operation to
the minimal shard set (one shard per point op, only intersecting shards
per window, best-first MINDIST order for kNN), and a
:class:`~repro.sharding.ShardedSpatialIndex` wraps any index type — RSMI
or baseline — per shard behind the common query/update interface.  Batches
go through the :class:`~repro.sharding.ShardedBatchEngine`, which groups
each batch per shard, dispatches through per-shard
:class:`~repro.engine.BatchQueryEngine` instances and merges the results,
reporting block accesses both in total and per shard::

    from repro.sharding import (
        ShardedBatchEngine, ShardedSpatialIndex, shard_index_factory,
    )

    factory = shard_index_factory("RSMI", block_capacity=50,
                                  partition_threshold=2_000)
    sharded = ShardedSpatialIndex(factory, n_shards=4,
                                  policy="balanced").build(points)
    engine = ShardedBatchEngine(sharded)
    result = engine.execute(QueryRequest.for_points(points[:1000]))
    result.access.per_shard_logical_reads   # attribution per shard id

Sharded answers are differentially tested against a single-index oracle
(``tests/test_sharding_differential.py``), the scenario runner drives
sharded deployments through the same oracle-checked streams (CLI:
``--scenario sharded-mixed --shards 4``), and
``benchmarks/bench_sharded_scaling.py`` measures batched throughput
scaling and asserts the shard-locality of window batches;
``examples/sharded_serving.py`` is a runnable tour.
"""

from repro.analytics import AggregateSpec, QueryRequest, QueryResult
from repro.core import RSMI, RSMIConfig, PeriodicRebuilder
from repro.engine import BatchQueryEngine
from repro.geometry import Rect
from repro.sharding import ShardedBatchEngine, ShardedSpatialIndex
from repro.storage import (
    AccessStats,
    Block,
    BlockStore,
    DurableIndex,
    PageCache,
    RecoveryReport,
    WriteAheadLog,
)
from repro.workloads import (
    LatencySummary,
    MultiTenantOracle,
    OracleIndex,
    PercentileSketch,
    ScenarioRunner,
    ScenarioSpec,
    VirtualClock,
)

__version__ = "1.6.0"

__all__ = [
    "RSMI",
    "RSMIConfig",
    "PeriodicRebuilder",
    "BatchQueryEngine",
    "AggregateSpec",
    "QueryRequest",
    "QueryResult",
    "ShardedSpatialIndex",
    "ShardedBatchEngine",
    "Rect",
    "AccessStats",
    "Block",
    "BlockStore",
    "PageCache",
    "DurableIndex",
    "RecoveryReport",
    "WriteAheadLog",
    "ScenarioSpec",
    "ScenarioRunner",
    "OracleIndex",
    "MultiTenantOracle",
    "PercentileSketch",
    "LatencySummary",
    "VirtualClock",
    "__version__",
]
