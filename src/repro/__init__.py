"""Reproduction of "Effectively Learning Spatial Indices" (Qi et al., VLDB 2020).

The package implements the Recursive Spatial Model Index (RSMI) — a learned
index for two-dimensional point data — together with every baseline index the
paper evaluates against, the substrate libraries (NumPy neural networks,
space-filling curves, simulated block storage), data-set and query-workload
generators, and an experiment harness that regenerates every table and figure
of the paper's evaluation section.

Quick start::

    import numpy as np
    from repro import RSMI, RSMIConfig, Rect
    from repro.datasets import generate_uniform

    points = generate_uniform(20_000, seed=7)
    index = RSMI(RSMIConfig(block_capacity=50, partition_threshold=2_000)).build(points)

    index.contains(*points[0])                     # point query
    index.window_query(Rect(0.2, 0.2, 0.3, 0.3))   # window query
    index.knn_query(0.5, 0.5, k=10)                # k nearest neighbours
"""

from repro.core import RSMI, RSMIConfig, PeriodicRebuilder
from repro.geometry import Rect
from repro.storage import AccessStats, Block, BlockStore

__version__ = "1.0.0"

__all__ = [
    "RSMI",
    "RSMIConfig",
    "PeriodicRebuilder",
    "Rect",
    "AccessStats",
    "Block",
    "BlockStore",
    "__version__",
]
