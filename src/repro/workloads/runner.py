"""Drive an index through a scenario stream, checking and measuring as it goes.

:class:`ScenarioRunner` replays the operation stream of a
:class:`~repro.workloads.spec.ScenarioSpec` against one index.  Reads are
micro-batched through the existing :class:`~repro.engine.BatchQueryEngine`
(so RSMI-backed indices get the vectorised level-synchronous paths) — or,
for a :class:`~repro.sharding.ShardedSpatialIndex`, through the
shard-grouping :class:`~repro.sharding.ShardedBatchEngine` — and every
write flushes the pending read batch first, which preserves the stream's
read/write interleaving exactly.

When a shadow :class:`~repro.workloads.oracle.OracleIndex` is attached, the
runner replays the identical stream through it and asserts answer agreement
per operation — exact agreement for point queries and deletion outcomes on
every index, exact set/distance agreement for window/kNN on exact indices,
and soundness (no false positives, only stored points) plus recorded recall
for the approximate learned indices.  Any violation raises
:class:`ScenarioMismatch` naming the operation, which is what turns a
scenario into a randomized model-based differential fuzz case.

Periodic :class:`ScenarioSnapshot` records capture throughput, block
accesses, recall and overflow-chain growth so the same machinery doubles as
the load generator behind ``experiments/scenario_sweeps.py``.

Latency is measured per operation against the spec's arrival model: each
engine batch / write is timed (its wall time attributed across the batch's
operations as *service* time) and fed through a
:class:`~repro.workloads.latency.VirtualClock` — under ``closed-loop`` the
next arrival follows the previous completion (plus think time), so sojourn
equals service; under ``open-loop`` arrivals follow the stream's virtual
schedule, so sojourn additionally includes the queueing delay a saturated
server builds up.  p50/p95/p99 summaries surface per snapshot interval, per
operation kind, per tenant (with a fairness index) and for the whole run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analytics.attributes import attribute_value
from repro.analytics.ops import QueryRequest, quantile_rank_distance
from repro.engine import BatchQueryEngine
from repro.evaluation.metrics import knn_recall, window_recall
from repro.sharding import ShardedBatchEngine, ShardedSpatialIndex
from repro.storage import DurableIndex
from repro.workloads.latency import (
    LatencyRecorder,
    LatencySummary,
    PercentileSketch,
    VirtualClock,
)
from repro.workloads.oracle import OracleIndex
from repro.workloads.spec import ScenarioSpec
from repro.workloads.stream import Operation, generate_operations

__all__ = ["ScenarioMismatch", "ScenarioSnapshot", "ScenarioResult", "ScenarioRunner"]


def _innermost(index):
    """Peel every wrapper layer (DurableIndex, evaluation adapters) off."""
    target = index
    while hasattr(target, "wrapped"):
        target = target.wrapped
    return target


class ScenarioMismatch(AssertionError):
    """An index disagreed with the shadow oracle on one operation."""


@dataclass
class ScenarioSnapshot:
    """Metrics over one snapshot interval of a scenario run."""

    #: operations completed when the snapshot was taken
    op_index: int
    #: wall-clock seconds since the run started
    elapsed_s: float
    #: operations served in this interval
    interval_ops: int
    #: throughput over the interval
    ops_per_s: float
    #: block/node reads per operation over the interval (0.0 for stats-less indices)
    avg_block_accesses: float
    #: live points according to the oracle/stream after the interval
    n_points: int
    #: operations per kind in this interval
    op_counts: dict[str, int] = field(default_factory=dict)
    #: mean window recall vs the oracle over the interval (None without oracle
    #: or when the interval had no window queries)
    window_recall: Optional[float] = None
    #: mean kNN recall vs the oracle over the interval
    knn_recall: Optional[float] = None
    #: overflow blocks in the index's store (None for indices without one)
    n_overflow_blocks: Optional[int] = None
    #: deepest base-block overflow chain (None for indices without a store)
    max_chain_depth: Optional[int] = None
    #: live points per shard (None for unsharded indices)
    per_shard_points: Optional[list[int]] = None
    #: fraction of the interval's logical reads served from the block cache
    #: (None when no cache is attached)
    cache_hit_ratio: Optional[float] = None
    #: sojourn-time percentiles over the interval (queue delay + service
    #: under open-loop arrivals; pure service under closed-loop)
    latency: Optional[LatencySummary] = None


@dataclass
class ScenarioResult:
    """The outcome of one full scenario run against one index."""

    scenario: str
    index_name: str
    n_ops: int
    snapshots: list[ScenarioSnapshot]
    op_counts: dict[str, int]
    elapsed_s: float
    total_block_accesses: int
    #: True when a shadow oracle checked every operation
    checked: bool
    #: read accesses attributed per shard over the whole run (sharded
    #: indices only; writes are not attributed)
    per_shard_block_accesses: Optional[dict[int, int]] = None
    #: physical (post-cache) reads over the whole run; equals
    #: ``total_block_accesses`` when no cache is attached
    total_physical_accesses: int = 0
    #: whole-run sojourn percentiles (arrival-model dependent, see runner doc)
    latency: Optional[LatencySummary] = None
    #: whole-run service-time percentiles (arrival-model independent)
    service_latency: Optional[LatencySummary] = None
    #: sojourn percentiles split by operation kind
    latency_by_kind: dict[str, LatencySummary] = field(default_factory=dict)
    #: sojourn percentiles split by tenant id (one entry for single-tenant runs)
    latency_by_tenant: dict[int, LatencySummary] = field(default_factory=dict)
    #: Jain's fairness index over per-tenant mean sojourns (None unless the
    #: stream interleaved >= 2 tenants)
    fairness: Optional[float] = None
    #: measured service seconds attributed per shard over the whole run
    #: (sharded indices only)
    per_shard_service_s: Optional[dict[int, float]] = None

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of the run's logical reads served from the cache."""
        if self.total_block_accesses <= 0:
            return 0.0
        return 1.0 - self.total_physical_accesses / self.total_block_accesses

    @property
    def ops_per_s(self) -> float:
        return self.n_ops / self.elapsed_s if self.elapsed_s > 0 else float("inf")


class _IntervalAccumulator:
    """Counters reset at every snapshot boundary."""

    def __init__(self, seed: int = 0):
        self.ops = 0
        self.block_accesses = 0
        self.physical_accesses = 0
        self.op_counts: dict[str, int] = {}
        self.window_recalls: list[float] = []
        self.knn_recalls: list[float] = []
        self.sojourns = PercentileSketch(seed=seed)
        self.started_at = time.perf_counter()

    def count(self, kind: str) -> None:
        self.ops += 1
        self.op_counts[kind] = self.op_counts.get(kind, 0) + 1


class ScenarioRunner:
    """Replay a scenario stream against one index.

    Parameters
    ----------
    index:
        The index under test: an RSMI, a baseline, or an evaluation adapter —
        anything :class:`~repro.engine.BatchQueryEngine` accepts.
    spec:
        The scenario to run.
    oracle:
        Optional shadow :class:`OracleIndex` built over the *same* initial
        points; when given, every answer is checked and recall is recorded.
    exact_results:
        True when the index answers window/kNN/aggregate queries exactly (the
        traditional baselines); enables exact-agreement assertions instead of
        soundness-only checks.  Ignored without an oracle.  The default
        (``None``) auto-detects from the index's ``supports_exact_results``
        capability flag (falling back to the innermost wrapped index, then to
        ``False``).
    engine_mode / batch_size:
        Execution mode for the read engine and the maximum number of reads
        batched between writes/snapshots.
    batch_reorder:
        Execute read micro-batches in Hilbert-key order (results scatter
        back, answers unchanged — see
        :class:`~repro.engine.BatchQueryEngine`'s ``reorder``).
    rebalancer:
        Optional :class:`~repro.sharding.RebalanceController` over the
        (inner) sharded index.  The runner feeds it every batch's per-shard
        access counts and latency summaries and ticks it after each flush
        and each write, so shard migrations interleave with the stream —
        reads race the swap, writes land in splitting shards — while the
        oracle checks keep asserting answer identity.
    engine:
        Optional pre-built batch engine overriding the automatic choice —
        this is how the process-pool
        :class:`~repro.serving.ParallelShardEngine` drops into scenario
        runs.  An engine advertising ``applies_writes`` also absorbs the
        stream's writes (routing them to the owning worker) and is billed
        through its ``pop_write_accesses()``; pass the engine itself as
        ``index`` in that case.  Incompatible with ``rebalancer`` (worker
        processes hold the shard state; the controller could only migrate
        the parent's copy).
    """

    def __init__(
        self,
        index,
        spec: ScenarioSpec,
        *,
        oracle: Optional[OracleIndex] = None,
        exact_results: Optional[bool] = None,
        engine_mode: str = "auto",
        batch_size: int = 64,
        batch_reorder: bool = False,
        rebalancer=None,
        engine=None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.index = index
        self.spec = spec
        self.oracle = oracle
        if exact_results is None:
            detected = getattr(index, "supports_exact_results", None)
            if detected is None:
                detected = getattr(_innermost(index), "supports_exact_results", None)
            exact_results = bool(detected)
        self.exact_results = bool(exact_results)
        if engine is not None:
            if rebalancer is not None:
                raise ValueError(
                    "an injected engine cannot be combined with a rebalancer"
                )
            self.engine = engine
        else:
            # a DurableIndex serves reads straight from the index it wraps
            # (only writes need the WAL, and those go through
            # self.index.insert/delete)
            served = index.wrapped if isinstance(index, DurableIndex) else index
            if isinstance(served, ShardedSpatialIndex):
                # sharded indices batch through the shard-grouping dispatcher
                # so every read still fans out to the minimal shard set
                self.engine = ShardedBatchEngine(
                    served, mode=engine_mode, reorder=batch_reorder
                )
            else:
                self.engine = BatchQueryEngine(
                    served, mode=engine_mode, reorder=batch_reorder
                )
        self._engine_writes = bool(getattr(self.engine, "applies_writes", False))
        self.batch_size = batch_size
        self._rebalancer = rebalancer
        self._name = getattr(index, "name", None) or type(index).__name__
        #: multi-tenant oracles take the op's tenant on writes
        self._tenant_aware_oracle = bool(getattr(oracle, "tenant_aware", False))
        self._open_loop = spec.arrival_model == "open-loop"

    # -- public entry ---------------------------------------------------------

    def run(self, initial_points: np.ndarray) -> ScenarioResult:
        """Generate the stream for ``initial_points`` and replay it."""
        operations = generate_operations(self.spec, initial_points)
        return self.replay(operations)

    def replay(self, operations: list[Operation]) -> ScenarioResult:
        """Replay an already-generated operation stream."""
        snapshots: list[ScenarioSnapshot] = []
        totals: dict[str, int] = {}
        total_accesses = 0
        total_physical = 0
        pending: list[Operation] = []
        self._per_shard_reads: dict[int, int] = {}
        self._per_shard_service: dict[int, float] = {}
        self._clock = VirtualClock()
        self._latency = LatencyRecorder(seed=self.spec.seed)
        interval = _IntervalAccumulator(seed=self.spec.seed)
        started = time.perf_counter()

        for op_index, op in enumerate(operations):
            if op.kind in ("point", "window", "knn", "aggregate"):
                pending.append(op)
                if len(pending) >= self.batch_size:
                    self._flush(pending, interval)
            else:
                self._flush(pending, interval)
                self._apply_write(op, interval)
            interval.count(op.kind)
            totals[op.kind] = totals.get(op.kind, 0) + 1

            if (op_index + 1) % self.spec.snapshot_every == 0 or op_index + 1 == len(
                operations
            ):
                self._flush(pending, interval)
                snapshots.append(self._snapshot(op_index + 1, started, interval))
                total_accesses += interval.block_accesses
                total_physical += interval.physical_accesses
                interval = _IntervalAccumulator(seed=self.spec.seed)

        if self._rebalancer is not None:
            # never leave a migration half-staged at end of run: the swap (or
            # abort) happens under the same single-threaded control loop
            self._rebalancer.drain()
        elapsed = time.perf_counter() - started
        return ScenarioResult(
            scenario=self.spec.name,
            index_name=self._name,
            n_ops=len(operations),
            snapshots=snapshots,
            op_counts=totals,
            elapsed_s=elapsed,
            total_block_accesses=total_accesses,
            checked=self.oracle is not None,
            per_shard_block_accesses=(
                dict(self._per_shard_reads) if self._per_shard_reads else None
            ),
            total_physical_accesses=total_physical,
            latency=self._latency.sojourn_summary(),
            service_latency=self._latency.service_summary(),
            latency_by_kind=self._latency.by_kind(),
            latency_by_tenant=self._latency.by_tenant(),
            fairness=self._latency.fairness(),
            per_shard_service_s=(
                {shard: round(total, 6) for shard, total in self._per_shard_service.items()}
                if self._per_shard_service
                else None
            ),
        )

    # -- batched reads --------------------------------------------------------

    def _flush(self, pending: list[Operation], interval: _IntervalAccumulator) -> None:
        """Execute the buffered reads (one engine batch per kind), folding
        their logical/physical access costs and measured latencies into
        ``interval``.

        Each engine batch is timed as a whole and its wall time attributed
        uniformly across the batch's operations as per-op *service* time
        (oracle checking is excluded from the timing); the virtual clock then
        replays the flushed operations in stream order to derive sojourns.
        """
        if not pending:
            return
        ops = list(pending)
        pending.clear()
        services = [0.0] * len(ops)
        by_kind: dict[str, list[int]] = {
            "point": [],
            "window": [],
            "knn": [],
            "aggregate": [],
        }
        for position, op in enumerate(ops):
            by_kind[op.kind].append(position)

        positions = by_kind["point"]
        if positions:
            queries = np.asarray([(ops[p].x, ops[p].y) for p in positions], dtype=float)
            request = QueryRequest.for_points(queries)
            result, per_op = self._timed(lambda: self.engine.execute(request), positions)
            self._account(result, interval)
            for p in positions:
                services[p] = per_op
            if self.oracle is not None:
                for p, found in zip(positions, result.values):
                    self._check_point(ops[p], bool(found))
        positions = by_kind["window"]
        if positions:
            request = QueryRequest.for_windows([ops[p].window for p in positions])
            result, per_op = self._timed(lambda: self.engine.execute(request), positions)
            self._account(result, interval)
            for p in positions:
                services[p] = per_op
            if self.oracle is not None:
                for p, reported in zip(positions, result.values):
                    self._check_window(ops[p], reported, interval)
        positions = by_kind["knn"]
        if positions:
            queries = np.asarray([(ops[p].x, ops[p].y) for p in positions], dtype=float)
            request = QueryRequest.for_knn(queries, self.spec.k)
            result, per_op = self._timed(lambda: self.engine.execute(request), positions)
            self._account(result, interval)
            for p in positions:
                services[p] = per_op
            if self.oracle is not None:
                for p, reported in zip(positions, result.values):
                    self._check_knn(ops[p], reported, interval)
        positions = by_kind["aggregate"]
        if positions:
            request = QueryRequest.for_aggregates([ops[p].agg for p in positions])
            result, per_op = self._timed(lambda: self.engine.execute(request), positions)
            self._account(result, interval)
            for p in positions:
                services[p] = per_op
            if self.oracle is not None:
                for p, outcome in zip(positions, result.values):
                    self._check_aggregate(ops[p], outcome)

        # the flushed reads re-enter the virtual timeline in stream order
        for op, service in zip(ops, services):
            self._observe_latency(op, service, interval)
        if self._rebalancer is not None:
            # one control step per flushed batch: migrations advance stage by
            # stage between batches, so later reads genuinely race the swap
            self._rebalancer.tick()

    @staticmethod
    def _timed(run, positions):
        """Run one engine batch, returning it plus its per-op wall seconds."""
        started = time.perf_counter()
        batch = run()
        return batch, (time.perf_counter() - started) / max(len(positions), 1)

    def _account(self, result, interval: _IntervalAccumulator) -> None:
        """Fold one request's unified access summary into the interval/run totals."""
        access = result.access
        per_shard = access.per_shard_logical_reads if access is not None else None
        if self._rebalancer is not None:
            self._rebalancer.observe(per_shard, result.per_shard_latency)
        if per_shard:
            for shard_id, reads in per_shard.items():
                self._per_shard_reads[shard_id] = (
                    self._per_shard_reads.get(shard_id, 0) + reads
                )
        if result.per_shard_latency:
            for shard_id, summary in result.per_shard_latency.items():
                self._per_shard_service[shard_id] = self._per_shard_service.get(
                    shard_id, 0.0
                ) + (summary.mean_ms / 1e3) * summary.count
        logical = (access.logical_reads if access is not None else None) or 0
        interval.block_accesses += logical
        physical = access.physical_reads if access is not None else None
        interval.physical_accesses += logical if physical is None else physical

    # -- latency --------------------------------------------------------------

    def _observe_latency(
        self, op: Operation, service: float, interval: _IntervalAccumulator
    ) -> None:
        """Feed one executed operation through the virtual clock and sketches."""
        if self._open_loop:
            arrival = op.arrival_time
        else:
            # closed loop: issued think_time after the previous completion
            arrival = self._clock.server_free + self.spec.think_time
        sojourn = self._clock.serve(arrival, service)
        interval.sojourns.add(sojourn)
        self._latency.record(op.kind, op.tenant, service, sojourn)

    # -- writes ---------------------------------------------------------------

    def _apply_write(self, op: Operation, interval: _IntervalAccumulator) -> None:
        if self._engine_writes:
            # write-applying engines (the process pool) route the write to
            # the owning worker themselves and report its access deltas
            started = time.perf_counter()
            if op.kind == "insert":
                self.engine.insert(op.x, op.y)
            else:
                removed = bool(self.engine.delete(op.x, op.y))
            service = time.perf_counter() - started
            logical, physical = self.engine.pop_write_accesses()
            if self.oracle is not None:
                if op.kind == "insert":
                    self._oracle_write(op)
                else:
                    expected = self._oracle_write(op)
                    if removed != expected:
                        raise ScenarioMismatch(
                            f"{self._name}: delete({op.x}, {op.y}) returned "
                            f"{removed}, oracle says {expected}"
                        )
            interval.block_accesses += logical
            interval.physical_accesses += physical
            self._observe_latency(op, service, interval)
            return
        stats = getattr(self.index, "stats", None)
        before = stats.total_reads if stats is not None else 0
        before_physical = stats.physical_reads if stats is not None else 0
        started = time.perf_counter()
        if op.kind == "insert":
            self.index.insert(op.x, op.y)
        else:
            removed = bool(self.index.delete(op.x, op.y))
        service = time.perf_counter() - started
        if self.oracle is not None:
            if op.kind == "insert":
                self._oracle_write(op)
            else:
                expected = self._oracle_write(op)
                if removed != expected:
                    raise ScenarioMismatch(
                        f"{self._name}: delete({op.x}, {op.y}) returned {removed}, "
                        f"oracle says {expected}"
                    )
        after = stats.total_reads if stats is not None else 0
        after_physical = stats.physical_reads if stats is not None else 0
        interval.block_accesses += max(0, after - before)
        interval.physical_accesses += max(0, after_physical - before_physical)
        self._observe_latency(op, service, interval)
        if self._rebalancer is not None:
            # ticked after the access-delta bracket above, so migration I/O
            # (snapshots, child builds) is never billed to this write
            self._rebalancer.observe_write(op.x, op.y)
            self._rebalancer.tick()

    def _oracle_write(self, op: Operation):
        """Replay one write on the shadow (routing tenants when supported)."""
        if op.kind == "insert":
            if self._tenant_aware_oracle:
                return self.oracle.insert(op.x, op.y, tenant=op.tenant)
            return self.oracle.insert(op.x, op.y)
        if self._tenant_aware_oracle:
            return self.oracle.delete(op.x, op.y, tenant=op.tenant)
        return self.oracle.delete(op.x, op.y)

    # -- oracle agreement -----------------------------------------------------

    def _check_point(self, op: Operation, found: bool) -> None:
        expected = self.oracle.point_query(op.x, op.y)
        if found != expected:
            raise ScenarioMismatch(
                f"{self._name}: point_query({op.x}, {op.y}) = {found}, "
                f"oracle says {expected}"
            )

    def _check_window(
        self, op: Operation, reported: np.ndarray, interval: _IntervalAccumulator
    ) -> None:
        truth = self.oracle.window_query(op.window)
        got = {tuple(p) for p in np.asarray(reported, dtype=float).reshape(-1, 2)}
        want = {tuple(p) for p in truth}
        if self.exact_results:
            if got != want:
                raise ScenarioMismatch(
                    f"{self._name}: window {op.window} returned {len(got)} points, "
                    f"oracle has {len(want)}; symmetric difference "
                    f"{sorted(got ^ want)[:4]}"
                )
        elif not got <= want:
            raise ScenarioMismatch(
                f"{self._name}: window {op.window} reported points outside the "
                f"true answer (false positives): {sorted(got - want)[:4]}"
            )
        interval.window_recalls.append(window_recall(reported, truth))

    def _check_knn(
        self, op: Operation, reported: np.ndarray, interval: _IntervalAccumulator
    ) -> None:
        reported = np.asarray(reported, dtype=float).reshape(-1, 2)
        expected_count = min(op.k, self.oracle.n_points)
        if reported.shape[0] != expected_count:
            raise ScenarioMismatch(
                f"{self._name}: knn({op.x}, {op.y}, k={op.k}) returned "
                f"{reported.shape[0]} points, expected {expected_count}"
            )
        for x, y in reported:
            if not self.oracle.point_query(float(x), float(y)):
                raise ScenarioMismatch(
                    f"{self._name}: knn({op.x}, {op.y}) reported non-stored point "
                    f"({x}, {y})"
                )
        truth = self.oracle.knn_query(op.x, op.y, op.k)
        if self.exact_results:
            got_d = np.sort(np.hypot(reported[:, 0] - op.x, reported[:, 1] - op.y))
            want_d = np.sort(np.hypot(truth[:, 0] - op.x, truth[:, 1] - op.y))
            if not np.allclose(got_d, want_d, atol=1e-9):
                raise ScenarioMismatch(
                    f"{self._name}: knn({op.x}, {op.y}, k={op.k}) distances differ "
                    f"from the oracle: {got_d} vs {want_d}"
                )
        interval.knn_recalls.append(knn_recall(reported, truth))

    def _check_aggregate(self, op: Operation, outcome) -> None:
        """Check one aggregate answer against the brute-force oracle.

        Exact indices must agree exactly — bit-identical count/sum/mean (the
        quantised attribute column makes sums order-independent), identical
        top-k items, and a quantile within the sketch's self-reported rank
        error of the true column.  Approximate indices get soundness checks:
        the answer must be derivable from a subset of the true window (no
        inflated counts/sums, no invented points or attribute values).
        """
        spec = op.agg
        truth = self.oracle.aggregate(spec)
        label = f"{self._name}: {spec.op} over {spec.window}"
        if self.exact_results:
            if outcome.count != truth.count:
                raise ScenarioMismatch(
                    f"{label} saw {outcome.count} points, oracle has {truth.count}"
                )
            if spec.op in ("count", "sum", "mean"):
                if outcome.value != truth.value:
                    raise ScenarioMismatch(
                        f"{label} = {outcome.value!r}, oracle says {truth.value!r}"
                    )
            elif spec.op == "top-k":
                if outcome.items != truth.items:
                    raise ScenarioMismatch(
                        f"{label} items {outcome.items} != oracle {truth.items}"
                    )
            else:  # quantile: within the sketch's self-reported rank error
                if truth.count == 0:
                    if outcome.value is not None:
                        raise ScenarioMismatch(
                            f"{label} returned {outcome.value!r} over an empty window"
                        )
                    return
                column = self.oracle.window_attribute_values(spec)
                distance = quantile_rank_distance(outcome.value, column, spec.q)
                if distance > outcome.max_rank_error:
                    raise ScenarioMismatch(
                        f"{label} q={spec.q} value {outcome.value!r} is {distance} "
                        f"ranks off, sketch promised <= {outcome.max_rank_error}"
                    )
            return
        # approximate index: the answer must come from a subset of the truth
        if outcome.count > truth.count:
            raise ScenarioMismatch(
                f"{label} saw {outcome.count} points, oracle has only {truth.count}"
            )
        if spec.op == "count" and outcome.value > truth.value:
            raise ScenarioMismatch(
                f"{label} = {outcome.value!r} exceeds oracle {truth.value!r}"
            )
        elif spec.op == "sum" and outcome.value > truth.value + 1e-9:
            # attribute values are >= 0, so a subset sum can never exceed
            raise ScenarioMismatch(
                f"{label} = {outcome.value!r} exceeds oracle {truth.value!r}"
            )
        elif spec.op == "mean" and outcome.count > 0:
            column = self.oracle.window_attribute_values(spec)
            if not float(column[0]) <= outcome.value <= float(column[-1]):
                raise ScenarioMismatch(
                    f"{label} = {outcome.value!r} outside the true attribute "
                    f"range [{column[0]}, {column[-1]}]"
                )
        elif spec.op == "quantile" and outcome.value is not None:
            column = self.oracle.window_attribute_values(spec)
            if not np.any(column == outcome.value):
                raise ScenarioMismatch(
                    f"{label} value {outcome.value!r} is not a true attribute "
                    f"value of the window"
                )
        elif spec.op == "top-k" and outcome.items:
            for value, x, y in outcome.items:
                if not spec.window.contains_point(x, y) or not self.oracle.point_query(
                    x, y
                ):
                    raise ScenarioMismatch(
                        f"{label} reported non-stored/out-of-window item "
                        f"({value}, {x}, {y})"
                    )
                if value != attribute_value(x, y, spec.attribute_seed):
                    raise ScenarioMismatch(
                        f"{label} item ({x}, {y}) carries attribute {value!r}, "
                        f"true value is {attribute_value(x, y, spec.attribute_seed)!r}"
                    )

    # -- snapshots ------------------------------------------------------------

    def _snapshot(
        self, op_index: int, started: float, interval: _IntervalAccumulator
    ) -> ScenarioSnapshot:
        now = time.perf_counter()
        interval_s = max(now - interval.started_at, 1e-9)
        target = _innermost(self.index)
        store = getattr(target, "store", None)
        n_overflow = max_depth = None
        if store is not None and hasattr(store, "chain_depths"):
            depths = store.chain_depths()
            n_overflow = store.n_overflow_blocks
            max_depth = max(depths) if depths else 0
        n_points = (
            self.oracle.n_points
            if self.oracle is not None
            else int(getattr(target, "n_points", 0))
        )
        return ScenarioSnapshot(
            op_index=op_index,
            elapsed_s=now - started,
            interval_ops=interval.ops,
            ops_per_s=interval.ops / interval_s,
            avg_block_accesses=interval.block_accesses / max(interval.ops, 1),
            n_points=n_points,
            op_counts=dict(interval.op_counts),
            window_recall=(
                float(np.mean(interval.window_recalls)) if interval.window_recalls else None
            ),
            knn_recall=(
                float(np.mean(interval.knn_recalls)) if interval.knn_recalls else None
            ),
            n_overflow_blocks=n_overflow,
            max_chain_depth=max_depth,
            per_shard_points=(
                self.index.per_shard_points()
                if hasattr(self.index, "per_shard_points")
                else None
            ),
            cache_hit_ratio=self._interval_hit_ratio(interval),
            latency=LatencySummary.from_sketch(interval.sojourns),
        )

    def _interval_hit_ratio(self, interval: _IntervalAccumulator) -> Optional[float]:
        if not self._has_cache():
            return None
        if interval.block_accesses <= 0:
            return 0.0
        return 1.0 - interval.physical_accesses / interval.block_accesses

    def _has_cache(self) -> bool:
        served = (
            self.index.wrapped if isinstance(self.index, DurableIndex) else self.index
        )
        if isinstance(served, ShardedSpatialIndex):
            return served.cache_hit_ratio() is not None
        target = _innermost(self.index)
        return getattr(target, "cache", None) is not None
