"""Crash-recovery fuzzing: kill a durable index mid-stream, recover, verify.

The harness replays a seeded :class:`~repro.workloads.spec.ScenarioSpec`
stream against an index wrapped in a
:class:`~repro.storage.DurableIndex`, simulates a process kill after a
chosen operation (optionally tearing the last WAL record, as a crash
mid-append would), recovers from checkpoint + WAL tail, and asserts exact
agreement with an :class:`~repro.workloads.oracle.OracleIndex` built over
the *surviving* prefix of the write stream:

* the recovery report's replay count must equal the writes logged since
  the last checkpoint (minus the torn record, when one was torn),
* every write key — survived or lost — must be present/absent exactly as
  in the oracle,
* window probes must agree exactly for exact index kinds and be sound
  (no phantom points) for the learned approximate ones,
* when the index is block-store-backed, the store's full point set must
  equal the oracle's.

Any disagreement raises :class:`CrashRecoveryMismatch` with enough context
to replay the case from its seed.  ``tests/test_crash_recovery.py`` runs
the kill-point × checkpoint-interval matrix over this harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Union

import numpy as np

from repro.storage import DurableIndex
from repro.workloads.oracle import OracleIndex
from repro.workloads.spec import ScenarioSpec
from repro.workloads.stream import Operation, generate_operations

__all__ = ["CrashOutcome", "CrashRecoveryMismatch", "run_crash_recovery"]

#: bytes chopped off the WAL to tear its final record (< one frame)
_TORN_CHOP_BYTES = 5


class CrashRecoveryMismatch(AssertionError):
    """Recovered state disagrees with the oracle over the surviving prefix."""


@dataclass
class CrashOutcome:
    """What one crash-recovery fuzz case did (all checks passed)."""

    kill_at: int
    writes_applied: int
    writes_survived: int
    replayed: int
    torn_tail: bool
    checkpoints: int
    n_points: int

    def describe(self) -> str:
        return (
            f"killed after op {self.kill_at}: {self.writes_survived}/"
            f"{self.writes_applied} writes survived ({self.replayed} replayed"
            + (", torn tail" if self.torn_tail else "")
            + f"), {self.n_points} points verified"
        )


def _point_query(index: Any, x: float, y: float) -> bool:
    probe = getattr(index, "point_query", None)
    if probe is not None:
        result = probe(x, y)
        # RSMI-style result objects carry a ``found`` flag and are always truthy
        return bool(getattr(result, "found", result))
    return bool(index.contains(x, y))


def _as_point_set(points: np.ndarray) -> set[tuple[float, float]]:
    return {(float(p[0]), float(p[1])) for p in np.asarray(points).reshape(-1, 2)}


def run_crash_recovery(
    index_factory: Callable[[np.ndarray], Any],
    spec: ScenarioSpec,
    initial_points: np.ndarray,
    directory: Union[str, Path],
    *,
    kill_at: Union[int, float],
    checkpoint_every: int = 32,
    backend: str = "memory",
    exact: bool = True,
    torn_tail: bool = False,
    lost_checkpoint_rename: bool = False,
    fsync: bool = False,
    n_probe_windows: int = 6,
) -> CrashOutcome:
    """One seeded kill/recover/verify cycle; returns the passing outcome.

    Parameters
    ----------
    index_factory:
        ``factory(points) -> index`` building the index under test (an
        adapter, a raw index or a sharded index — anything with the
        insert/delete/query surface).
    spec:
        The scenario whose deterministic stream is replayed.
    kill_at:
        Operation index after which the process "dies"; a float in
        ``[0, 1]`` is interpreted as a fraction of the stream.
    torn_tail:
        Additionally tear the last WAL record (crash mid-append): that
        write must be lost by recovery, everything before it kept.  Ignored
        when the kill lands exactly on a checkpoint (empty WAL).
    lost_checkpoint_rename:
        Kill *inside* a checkpoint, between ``os.replace`` and the parent
        directory fsync: the rename is rolled back (the old checkpoint
        resurfaces at the path) while the WAL — reset only after the
        directory sync — still holds every record since the previous
        checkpoint.  Recovery must replay old checkpoint + full WAL to the
        exact same state, losing nothing.
    exact:
        Whether window probes must match the oracle exactly (True for the
        exact kinds) or merely be sound — report no phantom points.
    """
    initial_points = np.asarray(initial_points, dtype=float).reshape(-1, 2)
    operations = generate_operations(spec, initial_points)
    if isinstance(kill_at, float) and 0.0 <= kill_at <= 1.0:
        kill_at = int(round(kill_at * len(operations)))
    kill_at = max(0, min(int(kill_at), len(operations)))

    directory = Path(directory)
    durable = DurableIndex(
        index_factory(initial_points),
        directory,
        checkpoint_every=checkpoint_every,
        backend=backend,
        fsync=fsync,
    )

    writes: list[Operation] = []
    for op in operations[:kill_at]:
        if op.kind == "insert":
            durable.insert(op.x, op.y)
            writes.append(op)
        elif op.kind == "delete":
            durable.delete(op.x, op.y)
            writes.append(op)
        elif op.kind == "point":
            _point_query(durable, op.x, op.y)
        elif op.kind == "window":
            durable.window_query(op.window)
        else:  # knn — reads run too, so a disk backend's read path is exercised
            durable.knn_query(op.x, op.y, op.k)

    checkpointed = durable.ops_checkpointed
    pending = durable.wal_records_pending
    checkpoints = durable.n_checkpoints
    wal_path = directory / "wal.log"
    if lost_checkpoint_rename:
        # crashed between os.replace and the directory fsync: the rename's
        # directory entry never reached disk, so the *old* checkpoint is
        # back at the path after the crash — and because the WAL reset runs
        # strictly after the directory sync, the WAL still holds every
        # record since the previous checkpoint.  Snapshot the pre-checkpoint
        # artefacts, let the checkpoint happen, then roll its rename back.
        old_checkpoint = durable.checkpoint_path.read_bytes()
        old_wal = wal_path.read_bytes() if wal_path.exists() else b""
        durable.checkpoint()  # the checkpoint whose rename the crash undoes
        durable.simulate_crash()
        durable.checkpoint_path.write_bytes(old_checkpoint)
        wal_path.write_bytes(old_wal)
    else:
        durable.simulate_crash()

    tore = torn_tail and pending > 0
    if tore:
        # a crash mid-append: the final frame is only partially on disk
        with open(wal_path, "r+b") as handle:
            handle.truncate(wal_path.stat().st_size - _TORN_CHOP_BYTES)
    survivors = checkpointed + pending - (1 if tore else 0)

    oracle = OracleIndex().build(initial_points)
    for op in writes[:survivors]:
        if op.kind == "insert":
            oracle.insert(op.x, op.y)
        else:
            oracle.delete(op.x, op.y)

    recovered, report = DurableIndex.recover(
        directory, checkpoint_every=checkpoint_every, backend=backend, fsync=fsync
    )
    try:
        if report.replayed != survivors - checkpointed:
            raise CrashRecoveryMismatch(
                f"recovery replayed {report.replayed} records, expected "
                f"{survivors - checkpointed} (checkpointed {checkpointed}, "
                f"applied {len(writes)}, torn={tore}) [seed={spec.seed}]"
            )
        if report.torn_tail != tore:
            raise CrashRecoveryMismatch(
                f"recovery reported torn_tail={report.torn_tail}, expected {tore} "
                f"[seed={spec.seed}]"
            )
        target = getattr(recovered.wrapped, "wrapped", recovered.wrapped)
        if int(target.n_points) != oracle.n_points:
            raise CrashRecoveryMismatch(
                f"recovered index holds {target.n_points} points, oracle holds "
                f"{oracle.n_points} [seed={spec.seed}, kill_at={kill_at}]"
            )
        _verify_points(recovered, oracle, writes, initial_points, spec)
        _verify_windows(recovered, oracle, operations, exact, spec, n_probe_windows)
        store = getattr(target, "store", None)
        if store is not None and hasattr(store, "all_points"):
            stored = _as_point_set(store.all_points())
            expected = _as_point_set(oracle.points())
            if stored != expected:
                missing = len(expected - stored)
                phantom = len(stored - expected)
                raise CrashRecoveryMismatch(
                    f"recovered block store disagrees with oracle: {missing} "
                    f"missing, {phantom} phantom point(s) [seed={spec.seed}]"
                )
        n_points = int(target.n_points)
    finally:
        recovered.close()

    return CrashOutcome(
        kill_at=kill_at,
        writes_applied=len(writes),
        writes_survived=survivors,
        replayed=report.replayed,
        torn_tail=report.torn_tail,
        checkpoints=checkpoints,
        n_points=n_points,
    )


def _verify_points(
    recovered: Any,
    oracle: OracleIndex,
    writes: list[Operation],
    initial_points: np.ndarray,
    spec: ScenarioSpec,
) -> None:
    """Every write key (kept or lost) and a sample of the original data set
    must be present/absent exactly as the oracle says."""
    probes: list[tuple[float, float]] = [(op.x, op.y) for op in writes]
    stride = max(1, initial_points.shape[0] // 64)
    probes.extend((float(x), float(y)) for x, y in initial_points[::stride])
    for x, y in probes:
        expected = oracle.contains(x, y)
        got = _point_query(recovered, x, y)
        if got != expected:
            raise CrashRecoveryMismatch(
                f"point ({x!r}, {y!r}): recovered says {got}, oracle says "
                f"{expected} [seed={spec.seed}]"
            )


def _verify_windows(
    recovered: Any,
    oracle: OracleIndex,
    operations: list[Operation],
    exact: bool,
    spec: ScenarioSpec,
    n_probe_windows: int,
) -> None:
    """Window probes drawn from the stream itself: exact equality for exact
    kinds, soundness (no phantoms) for the approximate learned ones."""
    windows = [op.window for op in operations if op.kind == "window"][:n_probe_windows]
    for window in windows:
        answer = recovered.window_query(window)
        answer = answer.points if hasattr(answer, "points") else answer
        got = _as_point_set(answer)
        expected = _as_point_set(oracle.window_query(window))
        if exact and got != expected:
            raise CrashRecoveryMismatch(
                f"window {window}: recovered reports {len(got)} points, oracle "
                f"{len(expected)} (exact kind) [seed={spec.seed}]"
            )
        if not got <= expected:
            raise CrashRecoveryMismatch(
                f"window {window}: recovered reports {len(got - expected)} "
                f"phantom point(s) [seed={spec.seed}]"
            )
