"""The shadow oracle: a brute-force list-backed spatial "index".

:class:`OracleIndex` answers every query exactly by scanning its point list,
and supports the same insert/delete surface as the real indices.  Replaying a
scenario stream through it yields the ground-truth answer for every single
operation, which is what the model-based differential fuzz harness (and the
:class:`~repro.workloads.runner.ScenarioRunner`'s agreement checking) compare
the real indices against.

It intentionally mirrors the :class:`~repro.evaluation.adapters.IndexAdapter`
surface (``point_query``/``window_query``/``knn_query``/``insert``/``delete``
plus ``stats``) so it can also stand in as an index under test — useful for
testing the runner itself.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.attributes import attribute_values
from repro.analytics.ops import AggregateOutcome, AggregateSpec, exact_aggregate
from repro.geometry import Rect, euclidean_many
from repro.storage import AccessStats
from repro.workloads.pointset import LivePointSet

__all__ = ["OracleIndex"]

_EMPTY = np.empty((0, 2), dtype=float)


class OracleIndex:
    """Exact brute-force index over an in-memory point list."""

    name = "Oracle"
    prefers_exact_queries = True
    supports_exact_results = True
    supports_attributes = True

    def __init__(self):
        self._points = LivePointSet()
        self.stats = AccessStats()

    def build(self, points: np.ndarray) -> "OracleIndex":
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        for x, y in points:
            self.insert(float(x), float(y))
        return self

    # -- contents -------------------------------------------------------------

    @property
    def n_points(self) -> int:
        return len(self._points)

    def points(self) -> np.ndarray:
        """The live points as an ``(n, 2)`` array (cached between mutations)."""
        return self._points.as_array()

    # -- queries --------------------------------------------------------------

    def point_query(self, x: float, y: float) -> bool:
        return (float(x), float(y)) in self._points

    def contains(self, x: float, y: float) -> bool:
        return self.point_query(x, y)

    def window_query(self, window: Rect) -> np.ndarray:
        points = self.points()
        if points.shape[0] == 0:
            return _EMPTY.copy()
        return points[window.contains_points(points)]

    def knn_query(self, x: float, y: float, k: int) -> np.ndarray:
        if k < 1:
            raise ValueError("k must be >= 1")
        points = self.points()
        if points.shape[0] == 0:
            return _EMPTY.copy()
        distances = euclidean_many((float(x), float(y)), points)
        k = min(k, points.shape[0])
        idx = np.argpartition(distances, k - 1)[:k]
        idx = idx[np.argsort(distances[idx], kind="stable")]
        return points[idx]

    def knn_distances(self, x: float, y: float, k: int) -> np.ndarray:
        """Sorted distances of the exact k nearest neighbours."""
        neighbours = self.knn_query(x, y, k)
        if neighbours.shape[0] == 0:
            return np.empty(0, dtype=float)
        return np.sort(euclidean_many((float(x), float(y)), neighbours))

    def aggregate(self, spec: AggregateSpec) -> AggregateOutcome:
        """Ground-truth aggregate over the live points (brute force)."""
        return exact_aggregate(spec, self.points())

    def window_attribute_values(self, spec: AggregateSpec) -> np.ndarray:
        """The sorted attribute column of the live points inside the window.

        The rank-error check of approximate quantiles needs the full sorted
        column, not just one true quantile value.
        """
        inside = self.window_query(spec.window)
        if inside.shape[0] == 0:
            return np.empty(0, dtype=float)
        return np.sort(attribute_values(inside, seed=spec.attribute_seed))

    # -- updates --------------------------------------------------------------

    def insert(self, x: float, y: float) -> None:
        try:
            self._points.add((float(x), float(y)))
        except ValueError:
            raise ValueError(f"oracle already stores ({x}, {y})") from None

    def delete(self, x: float, y: float) -> bool:
        return self._points.discard((float(x), float(y)))

    # -- metadata -------------------------------------------------------------

    def size_bytes(self) -> int:
        return 16 * self.n_points

    def extra_metrics(self) -> dict:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OracleIndex({self.n_points} points)"
