"""A mutable set of distinct points with O(1) updates and indexed access.

Both the stream generator's live mirror and the :class:`OracleIndex` need the
same structure — membership tests, duplicate-rejecting insertion,
swap-removal and slot access over a list of ``(x, y)`` keys — so it lives
here once instead of twice.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Rect

__all__ = ["LivePointSet"]

_EMPTY = np.empty((0, 2), dtype=float)


class LivePointSet:
    """Distinct ``(x, y)`` keys supporting O(1) add/remove/membership/sampling."""

    def __init__(self, points: np.ndarray | None = None):
        self._keys: list[tuple[float, float]] = []
        self._slots: dict[tuple[float, float], int] = {}
        self._array: np.ndarray | None = _EMPTY
        if points is not None:
            for x, y in np.asarray(points, dtype=float).reshape(-1, 2):
                self.add((float(x), float(y)))

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: tuple[float, float]) -> bool:
        return key in self._slots

    def add(self, key: tuple[float, float]) -> None:
        """Add a key; duplicate keys are rejected."""
        if key in self._slots:
            raise ValueError(f"duplicate key {key}")
        self._slots[key] = len(self._keys)
        self._keys.append(key)
        self._array = None

    def discard(self, key: tuple[float, float]) -> bool:
        """Swap-remove a key; returns True when it was present."""
        slot = self._slots.pop(key, None)
        if slot is None:
            return False
        last = self._keys.pop()
        if slot < len(self._keys):
            self._keys[slot] = last
            self._slots[last] = slot
        self._array = None
        return True

    def at(self, slot: int) -> tuple[float, float]:
        """The key at ``slot`` (modulo the current size)."""
        return self._keys[slot % len(self._keys)]

    def as_array(self) -> np.ndarray:
        """All keys as an ``(n, 2)`` array (cached between mutations)."""
        if self._array is None:
            self._array = (
                np.asarray(self._keys, dtype=float) if self._keys else _EMPTY.copy()
            )
        return self._array

    # -- sampling (used by the stream generator) -------------------------------

    def sample(self, rng: np.random.Generator) -> tuple[float, float]:
        return self._keys[int(rng.integers(0, len(self._keys)))]

    def sample_in(
        self, region: Rect, rng: np.random.Generator, tries: int = 16
    ) -> tuple[float, float]:
        """A key inside ``region`` when rejection sampling finds one, else an
        arbitrary key (keeps region scenarios meaningful even when the region
        is momentarily empty)."""
        for _ in range(tries):
            key = self.sample(rng)
            if region.contains_point(*key):
                return key
        return self.sample(rng)
