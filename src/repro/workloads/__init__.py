"""Scenario workloads: declarative mixed read/write streams plus fuzzing.

The paper evaluates on static query workloads and isolated insert/delete
sweeps; this package opens every scenario in between.  A
:class:`~repro.workloads.spec.ScenarioSpec` declares an operation mix
(point/window/kNN/insert/delete), an arrival pattern and a key distribution
(``hotspot``, ``drifting``, ``zipfian``, ``bulk-churn``, ...); the stream
generator turns it into a deterministic interleaved operation sequence; the
:class:`~repro.workloads.runner.ScenarioRunner` replays that sequence against
any index through the batched query engine, emitting periodic
:class:`~repro.workloads.runner.ScenarioSnapshot` metrics.

Attach a shadow :class:`~repro.workloads.oracle.OracleIndex` and the same
run becomes a model-based differential fuzz case: every answer is checked
against brute force, and any disagreement raises
:class:`~repro.workloads.runner.ScenarioMismatch`.  The experiment CLI's
``--scenario`` flag and ``tests/test_scenario_fuzz.py`` are both thin layers
over this package.

:func:`~repro.workloads.crash.run_crash_recovery` extends the same
differential idea across a process kill: replay a scenario prefix against a
:class:`~repro.storage.DurableIndex`, crash it (optionally tearing the WAL
tail), recover, and verify the surviving state against the oracle.
"""

from repro.workloads.crash import (
    CrashOutcome,
    CrashRecoveryMismatch,
    run_crash_recovery,
)
from repro.workloads.latency import (
    LatencyRecorder,
    LatencySummary,
    PercentileSketch,
    VirtualClock,
    jains_fairness_index,
    summarize_durations,
)
from repro.workloads.oracle import OracleIndex
from repro.workloads.rebalance import (
    RebalanceFuzzOutcome,
    aggressive_config,
    run_rebalance_fuzz,
)
from repro.workloads.runner import (
    ScenarioMismatch,
    ScenarioResult,
    ScenarioRunner,
    ScenarioSnapshot,
)
from repro.workloads.spec import (
    ARRIVAL_MODELS,
    ARRIVAL_PATTERNS,
    KEY_DISTRIBUTIONS,
    OPERATION_KINDS,
    SCENARIO_PRESETS,
    OperationMix,
    ScenarioSpec,
    scenario_by_name,
)
from repro.workloads.stream import (
    Operation,
    generate_arrival_schedule,
    generate_operations,
)
from repro.workloads.tenants import (
    MultiTenantOracle,
    derive_tenant_specs,
    generate_tenant_operations,
    split_tenant_points,
)

__all__ = [
    "OperationMix",
    "ScenarioSpec",
    "SCENARIO_PRESETS",
    "scenario_by_name",
    "KEY_DISTRIBUTIONS",
    "ARRIVAL_PATTERNS",
    "ARRIVAL_MODELS",
    "OPERATION_KINDS",
    "Operation",
    "generate_operations",
    "generate_arrival_schedule",
    "OracleIndex",
    "ScenarioRunner",
    "ScenarioResult",
    "ScenarioSnapshot",
    "ScenarioMismatch",
    "PercentileSketch",
    "LatencySummary",
    "LatencyRecorder",
    "VirtualClock",
    "jains_fairness_index",
    "summarize_durations",
    "MultiTenantOracle",
    "derive_tenant_specs",
    "generate_tenant_operations",
    "split_tenant_points",
    "CrashOutcome",
    "CrashRecoveryMismatch",
    "run_crash_recovery",
    "RebalanceFuzzOutcome",
    "aggressive_config",
    "run_rebalance_fuzz",
]
