"""Declarative scenario specifications for mixed read/write workloads.

A :class:`ScenarioSpec` describes *what* a workload looks like — the ratio of
point / window / kNN queries to insertions and deletions, how operations
arrive (steady stream or bursts), and where their keys come from (following
the data, hammering a hotspot, drifting across the space, rank-skewed
zipfian access, or bulk region churn).  It deliberately says nothing about
*which index* serves the workload or *how* it is executed; that is the
:class:`~repro.workloads.runner.ScenarioRunner`'s job, which keeps one spec
reusable as both a load generator and a fuzzing schedule.

Named presets covering the scenarios the paper never measures (drifting
workloads, hotspots, bulk churn) live in :data:`SCENARIO_PRESETS` and are
addressable from the experiment CLI via ``--scenario <name>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analytics.ops import AGGREGATE_OPS
from repro.geometry import Rect

__all__ = [
    "OperationMix",
    "ScenarioSpec",
    "KEY_DISTRIBUTIONS",
    "ARRIVAL_PATTERNS",
    "ARRIVAL_MODELS",
    "OPERATION_KINDS",
    "SCENARIO_PRESETS",
    "scenario_by_name",
]

#: the operation kinds a scenario interleaves ("aggregate" was appended
#: last so the first five keep their historical sampling indices)
OPERATION_KINDS = ("point", "window", "knn", "insert", "delete", "aggregate")

#: where operation keys are drawn from
KEY_DISTRIBUTIONS = ("uniform", "data", "hotspot", "drifting", "zipfian", "bulk-churn")

#: how operations arrive: independently per op, or in runs of one kind
ARRIVAL_PATTERNS = ("steady", "bursty")

#: how load is offered when replaying: ``closed-loop`` issues the next
#: operation as soon as the previous completes (plus ``think_time``), so
#: latency equals service time; ``open-loop`` fixes a virtual-time arrival
#: schedule (Poisson at ``arrival_rate``, bursty when ``arrival="bursty"``)
#: independent of the server, so sojourn times include queueing delay
ARRIVAL_MODELS = ("closed-loop", "open-loop")


@dataclass(frozen=True)
class OperationMix:
    """Relative weights of the six operation kinds.

    Weights need not sum to one — they are normalised when sampling — but
    must be non-negative with at least one positive entry.  ``aggregate``
    defaults to zero, and a zero aggregate weight keeps the sampled kind
    stream **byte-identical** to the historical five-kind streams (the
    committed benchmark baselines depend on this).
    """

    point: float = 1.0
    window: float = 0.0
    knn: float = 0.0
    insert: float = 0.0
    delete: float = 0.0
    aggregate: float = 0.0

    def __post_init__(self) -> None:
        weights = self.as_tuple()
        if any(w < 0 for w in weights):
            raise ValueError(f"operation weights must be non-negative, got {weights}")
        if sum(weights) <= 0:
            raise ValueError("at least one operation weight must be positive")

    def as_tuple(self) -> tuple[float, ...]:
        """Weights in :data:`OPERATION_KINDS` order."""
        return (self.point, self.window, self.knn, self.insert, self.delete,
                self.aggregate)

    def probabilities(self) -> tuple[float, ...]:
        """Weights normalised to a probability vector."""
        total = sum(self.as_tuple())
        return tuple(w / total for w in self.as_tuple())

    @property
    def write_fraction(self) -> float:
        """Fraction of operations that mutate the index."""
        probabilities = self.probabilities()
        return probabilities[3] + probabilities[4]


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative description of one workload scenario."""

    name: str
    mix: OperationMix = field(default_factory=OperationMix)
    #: key distribution, one of :data:`KEY_DISTRIBUTIONS`
    distribution: str = "data"
    #: arrival pattern, one of :data:`ARRIVAL_PATTERNS`
    arrival: str = "steady"
    #: total number of operations in the stream
    n_ops: int = 1_000
    #: emit a ScenarioSnapshot every this many operations
    snapshot_every: int = 250
    seed: int = 0
    #: k for kNN operations
    k: int = 10
    #: window geometry (fraction of the data-space area, width/height ratio)
    window_area_fraction: float = 0.0004
    window_aspect_ratio: float = 1.0
    #: mean run length of one operation kind under ``arrival="bursty"``
    burst_length: int = 32
    #: load-offering model, one of :data:`ARRIVAL_MODELS`
    arrival_model: str = "closed-loop"
    #: offered load in operations per *virtual* second (``open-loop`` only);
    #: under multi-tenancy this is the total across tenants
    arrival_rate: float = 1_000.0
    #: virtual seconds between an operation's completion and the next issue
    #: (``closed-loop`` only)
    think_time: float = 0.0
    #: fraction of operations whose key falls inside the hot region
    #: (``hotspot``/``drifting``/``bulk-churn`` distributions)
    hotspot_fraction: float = 0.9
    #: side length of the hot region as a fraction of the data-space extent
    hotspot_extent: float = 0.1
    #: full revolutions the drifting hot region completes over the stream
    drift_cycles: float = 1.0
    #: zipf exponent for the ``zipfian`` distribution (must be > 1)
    zipf_exponent: float = 1.3
    #: ops between churn-region relocations (``bulk-churn`` distribution)
    churn_period: int = 200
    #: fraction of point queries probing keys that are not stored
    point_miss_fraction: float = 0.25
    #: fraction of deletions targeting keys that are not stored
    delete_miss_fraction: float = 0.05
    #: operators an ``aggregate`` operation draws from (uniformly)
    aggregate_ops: tuple[str, ...] = AGGREGATE_OPS
    #: candidate quantile fractions for ``quantile`` aggregate operations
    aggregate_quantiles: tuple[float, ...] = (0.25, 0.5, 0.9)
    #: aggregate-window area as a fraction of the data space; None reuses
    #: ``window_area_fraction`` (aggregates touch window-scan-sized regions)
    aggregate_window_area_fraction: float | None = None
    #: the data space operations live in
    data_space: Rect = field(default_factory=Rect.unit)

    def __post_init__(self) -> None:
        if self.distribution not in KEY_DISTRIBUTIONS:
            raise ValueError(
                f"unknown key distribution {self.distribution!r}; "
                f"available: {KEY_DISTRIBUTIONS}"
            )
        if self.arrival not in ARRIVAL_PATTERNS:
            raise ValueError(
                f"unknown arrival pattern {self.arrival!r}; available: {ARRIVAL_PATTERNS}"
            )
        if self.n_ops < 1:
            raise ValueError("n_ops must be >= 1")
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if not 0 < self.window_area_fraction <= 1:
            raise ValueError("window_area_fraction must lie in (0, 1]")
        if self.window_aspect_ratio <= 0:
            raise ValueError("window_aspect_ratio must be positive")
        if self.burst_length < 1:
            raise ValueError("burst_length must be >= 1")
        if self.arrival_model not in ARRIVAL_MODELS:
            raise ValueError(
                f"unknown arrival model {self.arrival_model!r}; "
                f"available: {ARRIVAL_MODELS}"
            )
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.think_time < 0:
            raise ValueError("think_time must be >= 0")
        if not 0 <= self.hotspot_fraction <= 1:
            raise ValueError("hotspot_fraction must lie in [0, 1]")
        if not 0 < self.hotspot_extent <= 1:
            raise ValueError("hotspot_extent must lie in (0, 1]")
        if self.zipf_exponent <= 1:
            raise ValueError("zipf_exponent must be > 1")
        if self.churn_period < 1:
            raise ValueError("churn_period must be >= 1")
        if not 0 <= self.point_miss_fraction <= 1:
            raise ValueError("point_miss_fraction must lie in [0, 1]")
        if not 0 <= self.delete_miss_fraction <= 1:
            raise ValueError("delete_miss_fraction must lie in [0, 1]")
        if not self.aggregate_ops:
            raise ValueError("aggregate_ops must name at least one operator")
        for op in self.aggregate_ops:
            if op not in AGGREGATE_OPS:
                raise ValueError(
                    f"unknown aggregate op {op!r}; available: {AGGREGATE_OPS}"
                )
        if not self.aggregate_quantiles:
            raise ValueError("aggregate_quantiles must not be empty")
        for q in self.aggregate_quantiles:
            if not 0 <= q <= 1:
                raise ValueError("aggregate_quantiles entries must lie in [0, 1]")
        if self.aggregate_window_area_fraction is not None and not (
            0 < self.aggregate_window_area_fraction <= 1
        ):
            raise ValueError("aggregate_window_area_fraction must lie in (0, 1]")

    def with_overrides(self, **kwargs) -> "ScenarioSpec":
        """A copy of this spec with some fields replaced."""
        return replace(self, **kwargs)


#: Named scenarios the experiment CLI and the fuzz harness draw from.  Each
#: opens a workload shape the paper's static sweeps never measure.
SCENARIO_PRESETS: dict[str, ScenarioSpec] = {
    # balanced read/write mix following the data distribution
    "mixed": ScenarioSpec(
        name="mixed",
        mix=OperationMix(point=0.4, window=0.15, knn=0.1, insert=0.25, delete=0.1),
        distribution="data",
    ),
    # almost pure lookups, the classic serving workload
    "read-heavy": ScenarioSpec(
        name="read-heavy",
        mix=OperationMix(point=0.65, window=0.2, knn=0.15),
        distribution="data",
    ),
    # ingest-dominated stream with sporadic reads
    "write-heavy": ScenarioSpec(
        name="write-heavy",
        mix=OperationMix(point=0.15, window=0.05, knn=0.0, insert=0.6, delete=0.2),
        distribution="data",
    ),
    # 90% of operations hammer one small static region
    "hotspot": ScenarioSpec(
        name="hotspot",
        mix=OperationMix(point=0.45, window=0.15, knn=0.05, insert=0.25, delete=0.1),
        distribution="hotspot",
    ),
    # the hot region migrates across the space over the stream
    "drifting": ScenarioSpec(
        name="drifting",
        mix=OperationMix(point=0.4, window=0.15, knn=0.05, insert=0.3, delete=0.1),
        distribution="drifting",
        drift_cycles=1.5,
    ),
    # rank-skewed access over the stored points
    "zipfian": ScenarioSpec(
        name="zipfian",
        mix=OperationMix(point=0.6, window=0.1, knn=0.1, insert=0.1, delete=0.1),
        distribution="zipfian",
    ),
    # bursts of deletions and re-insertions sweeping whole regions
    "bulk-churn": ScenarioSpec(
        name="bulk-churn",
        mix=OperationMix(point=0.2, window=0.1, knn=0.0, insert=0.35, delete=0.35),
        distribution="bulk-churn",
        arrival="bursty",
        hotspot_fraction=0.95,
        hotspot_extent=0.2,
    ),
    # serving-style mix spread uniformly across the space, so every shard of
    # a sharded deployment sees traffic (run with ``--shards N`` to validate
    # sharded answers against the oracle under churn)
    "sharded-mixed": ScenarioSpec(
        name="sharded-mixed",
        mix=OperationMix(point=0.45, window=0.2, knn=0.05, insert=0.2, delete=0.1),
        distribution="uniform",
        point_miss_fraction=0.35,
    ),
    # churny traffic pinned (mostly) to one small region, i.e. one shard of
    # a sharded deployment runs hot while its siblings idle
    "sharded-hotspot": ScenarioSpec(
        name="sharded-hotspot",
        mix=OperationMix(point=0.4, window=0.15, knn=0.05, insert=0.3, delete=0.1),
        distribution="hotspot",
        hotspot_extent=0.15,
    ),
    # read-mostly traffic hammering one tiny region: the working set fits a
    # small block cache, so physical reads collapse while the occasional
    # write exercises dirty-page invalidation (run with --cache-blocks N;
    # oracle agreement must be byte-identical with the cache on or off)
    "cache-hotspot": ScenarioSpec(
        name="cache-hotspot",
        mix=OperationMix(point=0.6, window=0.2, knn=0.05, insert=0.1, delete=0.05),
        distribution="hotspot",
        hotspot_fraction=0.95,
        hotspot_extent=0.08,
        point_miss_fraction=0.1,
    ),
    # a hot point working set interleaved with large window scans: the scans
    # pull long one-touch block runs through the cache, flushing an LRU's hot
    # set every few operations ("scan thrash") — the workload TinyLFU
    # admission in the shared buffer pool is built to survive (run with
    # --shared-pool-blocks N; compare against --cache-blocks N lru)
    "scan-thrash": ScenarioSpec(
        name="scan-thrash",
        mix=OperationMix(point=0.6, window=0.2, knn=0.0, insert=0.15, delete=0.05),
        distribution="hotspot",
        hotspot_fraction=0.95,
        hotspot_extent=0.06,
        window_area_fraction=0.04,
        point_miss_fraction=0.1,
    ),
    # the multi-tenant serving mix: run with ``--tenants N`` to split it into
    # N independently-seeded streams merged by virtual arrival time, each
    # tenant shadowed by its own oracle; open-loop arrivals make per-tenant
    # sojourn percentiles (and the fairness index) meaningful
    "tenant-mixed": ScenarioSpec(
        name="tenant-mixed",
        mix=OperationMix(point=0.5, window=0.15, knn=0.05, insert=0.2, delete=0.1),
        distribution="uniform",
        arrival_model="open-loop",
        arrival_rate=2_000.0,
        point_miss_fraction=0.3,
    ),
    # the analytic serving mix: push-down aggregates (count/sum/mean/
    # quantile/top-k over hotspot-sized windows) interleaved with the classic
    # kinds and enough churn that aggregate answers must track live data —
    # the fuzz matrices replay it against the brute-force oracle shadows
    # (single-index, --shards N, --cache-blocks N, --workers N all apply)
    "analytics-mixed": ScenarioSpec(
        name="analytics-mixed",
        mix=OperationMix(point=0.25, window=0.1, knn=0.05, insert=0.2,
                         delete=0.1, aggregate=0.3),
        distribution="hotspot",
        hotspot_fraction=0.8,
        hotspot_extent=0.25,
        aggregate_window_area_fraction=0.002,
    ),
    # read-mostly traffic hammering one tiny region under an open-loop
    # arrival schedule: when the offered rate outpaces the measured service
    # rate the virtual queue grows, so p99 sojourn separates from p99 service
    # — the latency view of a hotspot the block-access metric cannot show
    "latency-hotspot": ScenarioSpec(
        name="latency-hotspot",
        mix=OperationMix(point=0.55, window=0.2, knn=0.05, insert=0.15, delete=0.05),
        distribution="hotspot",
        arrival_model="open-loop",
        arrival_rate=3_000.0,
        hotspot_fraction=0.95,
        hotspot_extent=0.08,
        point_miss_fraction=0.1,
    ),
}


def scenario_by_name(name: str) -> ScenarioSpec:
    """Look up a preset scenario by name."""
    normalized = name.strip().lower()
    if normalized not in SCENARIO_PRESETS:
        raise ValueError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIO_PRESETS)}"
        )
    return SCENARIO_PRESETS[normalized]
