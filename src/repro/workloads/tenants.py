"""Multi-tenant interleaved streams: N scenarios, one index, per-tenant truth.

A production deployment rarely serves one workload: N tenants issue
independent streams against the same index.  This module derives N
independently-seeded :class:`~repro.workloads.spec.ScenarioSpec`\\ s from one
base spec, gives each tenant its own slice of the initial data set, generates
each tenant's operation stream over *its own* keyspace, and merges the
streams by virtual arrival time (the merge is stable, so every tenant's
internal operation order is preserved — asserted in
``tests/test_latency.py``).

Correctness under multi-tenancy is checked by :class:`MultiTenantOracle`:
one brute-force :class:`~repro.workloads.oracle.OracleIndex` shadow **per
tenant** (each replays only its tenant's writes, so per-tenant live counts
stay exact) whose union answers the shared-index queries — the
:class:`~repro.workloads.runner.ScenarioRunner` checks every merged
operation against it exactly as in the single-tenant case, routing writes to
the owning tenant's shadow.

Latency fairness across tenants is summarised by Jain's index over the
per-tenant mean sojourn times (see
:meth:`~repro.workloads.latency.LatencyRecorder.fairness`).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analytics.attributes import attribute_values
from repro.analytics.ops import AggregateOutcome, AggregateSpec, exact_aggregate
from repro.geometry import Rect, euclidean_many
from repro.workloads.oracle import OracleIndex
from repro.workloads.spec import ScenarioSpec
from repro.workloads.stream import Operation, generate_operations

__all__ = [
    "split_tenant_points",
    "derive_tenant_specs",
    "generate_tenant_operations",
    "MultiTenantOracle",
]

_EMPTY = np.empty((0, 2), dtype=float)


def split_tenant_points(points: np.ndarray, n_tenants: int) -> list[np.ndarray]:
    """Partition the initial data set round-robin into per-tenant slices.

    Round-robin (rather than contiguous chunks) keeps every tenant's points
    spread over the whole space the way the full set is, so tenant streams
    exercise the same index regions the single-tenant stream would.
    """
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    if n_tenants < 1:
        raise ValueError("n_tenants must be >= 1")
    if points.shape[0] < n_tenants:
        raise ValueError(
            f"cannot split {points.shape[0]} points across {n_tenants} tenants"
        )
    return [points[tenant::n_tenants] for tenant in range(n_tenants)]


def derive_tenant_specs(spec: ScenarioSpec, n_tenants: int) -> list[ScenarioSpec]:
    """N independently-seeded per-tenant specs from one base spec.

    The base operation budget and (open-loop) arrival rate are divided across
    tenants, so N tenants together offer the same load the base spec does.
    Multi-tenant merging needs a virtual arrival schedule, so the derived
    specs are always ``open-loop``.
    """
    if n_tenants < 1:
        raise ValueError("n_tenants must be >= 1")
    ops_each, ops_extra = divmod(spec.n_ops, n_tenants)
    specs = []
    for tenant in range(n_tenants):
        n_ops = ops_each + (1 if tenant < ops_extra else 0)
        if n_ops < 1:
            raise ValueError(
                f"n_ops={spec.n_ops} is too small to split across {n_tenants} tenants"
            )
        specs.append(
            replace(
                spec,
                name=f"{spec.name}#t{tenant}",
                seed=spec.seed + 1_000_003 * (tenant + 1),
                n_ops=n_ops,
                arrival_model="open-loop",
                arrival_rate=spec.arrival_rate / n_tenants,
            )
        )
    return specs


def generate_tenant_operations(
    spec: ScenarioSpec, initial_points: np.ndarray, n_tenants: int
) -> tuple[list[Operation], list[np.ndarray]]:
    """The merged multi-tenant stream of ``spec`` over ``initial_points``.

    Returns ``(operations, tenant_points)``: the operations of all tenants
    merged by arrival time (each stamped with its ``tenant`` id), and the
    per-tenant initial point slices (build the index over the full set, the
    per-tenant oracles over the slices).  The merge sort is stable with a
    ``(arrival_time, tenant)`` key, so simultaneous (bursty) arrivals keep
    their within-tenant order.

    The merge order is defined by the open-loop virtual schedule, so replay
    the result with an ``open-loop`` spec (``ScenarioRunner`` takes its
    arrival model from the spec it is given) — a closed-loop replay would
    ignore the very arrival times the interleaving came from.
    """
    tenant_points = split_tenant_points(initial_points, n_tenants)
    streams = []
    for tenant, tenant_spec in enumerate(derive_tenant_specs(spec, n_tenants)):
        streams.extend(
            replace(op, tenant=tenant)
            for op in generate_operations(tenant_spec, tenant_points[tenant])
        )
    streams.sort(key=lambda op: (op.arrival_time, op.tenant))
    return streams, tenant_points


class MultiTenantOracle:
    """Per-tenant brute-force shadows whose union answers shared queries.

    Mirrors the :class:`OracleIndex` surface the scenario runner checks
    against — reads (``point_query``/``window_query``/``knn_query``) answer
    over the union of all tenants' live points, writes take a ``tenant=``
    argument and go to that tenant's shadow only.  ``tenant_aware`` is the
    attribute the runner sniffs to route ``Operation.tenant`` through.
    """

    name = "MultiTenantOracle"
    prefers_exact_queries = True
    supports_exact_results = True
    supports_attributes = True
    tenant_aware = True

    def __init__(self, n_tenants: int):
        if n_tenants < 1:
            raise ValueError("n_tenants must be >= 1")
        self.shadows = [OracleIndex() for _ in range(n_tenants)]

    def build(self, tenant_points: list[np.ndarray]) -> "MultiTenantOracle":
        if len(tenant_points) != len(self.shadows):
            raise ValueError(
                f"expected {len(self.shadows)} point slices, got {len(tenant_points)}"
            )
        for shadow, points in zip(self.shadows, tenant_points):
            shadow.build(points)
        return self

    # -- contents -------------------------------------------------------------

    @property
    def n_tenants(self) -> int:
        return len(self.shadows)

    @property
    def n_points(self) -> int:
        return sum(shadow.n_points for shadow in self.shadows)

    def per_tenant_points(self) -> list[int]:
        """Live point count per tenant (each tenant's own shadow)."""
        return [shadow.n_points for shadow in self.shadows]

    def points(self) -> np.ndarray:
        """The union of all tenants' live points."""
        chunks = [shadow.points() for shadow in self.shadows if shadow.n_points]
        return np.vstack(chunks) if chunks else _EMPTY.copy()

    # -- queries (union of tenants) -------------------------------------------

    def point_query(self, x: float, y: float) -> bool:
        return any(shadow.point_query(x, y) for shadow in self.shadows)

    def contains(self, x: float, y: float) -> bool:
        return self.point_query(x, y)

    def window_query(self, window: Rect) -> np.ndarray:
        chunks = [shadow.window_query(window) for shadow in self.shadows]
        chunks = [chunk for chunk in chunks if chunk.shape[0] > 0]
        return np.vstack(chunks) if chunks else _EMPTY.copy()

    def knn_query(self, x: float, y: float, k: int) -> np.ndarray:
        if k < 1:
            raise ValueError("k must be >= 1")
        points = self.points()
        if points.shape[0] == 0:
            return _EMPTY.copy()
        distances = euclidean_many((float(x), float(y)), points)
        k = min(k, points.shape[0])
        idx = np.argpartition(distances, k - 1)[:k]
        idx = idx[np.argsort(distances[idx], kind="stable")]
        return points[idx]

    def aggregate(self, spec: AggregateSpec) -> AggregateOutcome:
        """Ground-truth aggregate over the union of all tenants' points."""
        return exact_aggregate(spec, self.points())

    def window_attribute_values(self, spec: AggregateSpec) -> np.ndarray:
        """Sorted attribute column of the union points inside the window."""
        inside = self.window_query(spec.window)
        if inside.shape[0] == 0:
            return np.empty(0, dtype=float)
        return np.sort(attribute_values(inside, seed=spec.attribute_seed))

    # -- updates (routed to the owning tenant) --------------------------------

    def insert(self, x: float, y: float, tenant: int = 0) -> None:
        self.shadows[tenant].insert(x, y)

    def delete(self, x: float, y: float, tenant: int = 0) -> bool:
        return self.shadows[tenant].delete(x, y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MultiTenantOracle({self.per_tenant_points()} points)"
