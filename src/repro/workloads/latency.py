"""Latency measurement: percentile sketches, virtual time, per-op recording.

The paper's cost metric — block accesses — is hardware independent but says
nothing about what a *served* workload feels like: latency under load, and
especially its tail.  This module provides the three pieces the serving
layers share:

* :class:`PercentileSketch` — a bounded-memory streaming reservoir over
  latency samples.  Up to its capacity it is exact; beyond it, Vitter's
  algorithm R keeps a uniform sample, so ``quantile(q)`` stays within a
  small rank error of ``numpy.percentile`` over the full stream (asserted
  against adversarial distributions in ``tests/test_latency.py``).  The
  reservoir RNG is seeded, so identical streams summarise identically.
* :class:`VirtualClock` — a single-server virtual-time queue.  Operations
  carry *virtual* arrival instants (seconds); their *service* times are
  measured in wall-clock seconds as they execute.  Feeding both through the
  clock yields each operation's **sojourn** time (queueing delay + service),
  which is how a single-threaded replay still measures open-loop latency:
  when the arrival schedule outpaces the measured service rate, the queue —
  and the sojourn tail — grows, exactly as it would for real users.
* :class:`LatencyRecorder` — per-kind and per-tenant sketch bundles the
  :class:`~repro.workloads.runner.ScenarioRunner` feeds one record per
  operation, summarised as :class:`LatencySummary` (p50/p95/p99) objects.

All public summaries report milliseconds; internal samples are seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

__all__ = [
    "PercentileSketch",
    "LatencySummary",
    "VirtualClock",
    "LatencyRecorder",
    "jains_fairness_index",
    "summarize_durations",
]

#: default reservoir capacity; 4096 samples bound the p99 rank error to ~0.2%
DEFAULT_SKETCH_CAPACITY = 4096


class PercentileSketch:
    """Streaming quantiles over a bounded uniform reservoir (algorithm R).

    Exact while the stream fits the reservoir; afterwards every seen value
    has had an equal probability of being retained, so empirical quantiles
    of the reservoir estimate the stream's.  ``count``/``total``/``minimum``/
    ``maximum`` are always exact.
    """

    def __init__(self, capacity: int = DEFAULT_SKETCH_CAPACITY, seed: int = 0):
        if capacity < 1:
            raise ValueError("sketch capacity must be >= 1")
        self.capacity = capacity
        self._reservoir = np.empty(capacity, dtype=float)
        self._rng = np.random.default_rng(np.random.SeedSequence((seed, 0x1A7E)))
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, value: float) -> None:
        """Fold one sample into the sketch."""
        value = float(value)
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if self.count < self.capacity:
            self._reservoir[self.count] = value
        else:
            slot = int(self._rng.integers(0, self.count + 1))
            if slot < self.capacity:
                self._reservoir[slot] = value
        self.count += 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (``q`` in [0, 1]) of the stream seen so far."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        sample = self._reservoir[: min(self.count, self.capacity)]
        return float(np.quantile(sample, q))

    def __len__(self) -> int:
        return min(self.count, self.capacity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PercentileSketch(count={self.count}, capacity={self.capacity})"


@dataclass(frozen=True)
class LatencySummary:
    """p50/p95/p99 (and friends) of one latency population, in milliseconds."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_sketch(cls, sketch: PercentileSketch) -> Optional["LatencySummary"]:
        """Summarise a sketch of *seconds* samples; None for an empty sketch."""
        if sketch.count == 0:
            return None
        return cls(
            count=sketch.count,
            mean_ms=sketch.mean * 1e3,
            p50_ms=sketch.quantile(0.50) * 1e3,
            p95_ms=sketch.quantile(0.95) * 1e3,
            p99_ms=sketch.quantile(0.99) * 1e3,
            max_ms=sketch.maximum * 1e3,
        )

    @classmethod
    def uniform(cls, total_seconds: float, count: int) -> Optional["LatencySummary"]:
        """The summary of ``count`` operations sharing one batch's wall time.

        Vectorised batch paths cannot observe per-query times; attributing
        the batch uniformly makes every percentile the per-op mean.  O(1),
        so the hot batch paths pay no summarisation cost.
        """
        if count <= 0:
            return None
        per_op_ms = (total_seconds / count) * 1e3
        return cls(
            count=count,
            mean_ms=per_op_ms,
            p50_ms=per_op_ms,
            p95_ms=per_op_ms,
            p99_ms=per_op_ms,
            max_ms=per_op_ms,
        )

    def as_dict(self) -> dict:
        """Rounded machine-readable form (for BENCH_*.json payloads)."""
        return {
            "count": self.count,
            "mean_ms": round(self.mean_ms, 4),
            "p50_ms": round(self.p50_ms, 4),
            "p95_ms": round(self.p95_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "max_ms": round(self.max_ms, 4),
        }


def summarize_durations(durations: Iterable[float], seed: int = 0) -> Optional[LatencySummary]:
    """Summarise a finished collection of wall-clock durations (seconds).

    Exact (one vectorised ``np.quantile``) while the collection fits the
    default reservoir capacity — which covers every engine batch — and
    reservoir-sampled beyond it, keeping the per-batch cost O(capacity).
    """
    values = np.asarray(list(durations) if not isinstance(durations, np.ndarray) else durations,
                        dtype=float)
    if values.size == 0:
        return None
    if values.size > DEFAULT_SKETCH_CAPACITY:
        sketch = PercentileSketch(seed=seed)
        sketch.extend(values)
        return LatencySummary.from_sketch(sketch)
    p50, p95, p99 = np.quantile(values, (0.50, 0.95, 0.99))
    return LatencySummary(
        count=int(values.size),
        mean_ms=float(values.mean()) * 1e3,
        p50_ms=float(p50) * 1e3,
        p95_ms=float(p95) * 1e3,
        p99_ms=float(p99) * 1e3,
        max_ms=float(values.max()) * 1e3,
    )


class VirtualClock:
    """A single-server FIFO queue advancing in virtual seconds.

    ``serve(arrival, service)`` admits one operation: it starts when both
    the operation has arrived and the server is free, and occupies the
    server for its (measured) service time.  The return value is the
    operation's sojourn time — waiting plus service — which equals the
    service time exactly while the server keeps up and grows once an
    open-loop arrival schedule outpaces it.
    """

    def __init__(self):
        #: virtual instant at which the server finishes its current work
        self.server_free = 0.0
        #: virtual seconds the server has spent serving (busy time)
        self.busy_time = 0.0

    def serve(self, arrival: float, service: float) -> float:
        """Admit one operation; returns its sojourn (completion - arrival)."""
        if service < 0:
            raise ValueError("service time must be >= 0")
        start = max(float(arrival), self.server_free)
        completion = start + float(service)
        self.server_free = completion
        self.busy_time += float(service)
        return completion - float(arrival)

    def utilization(self) -> float:
        """Busy fraction of the virtual timeline so far."""
        return self.busy_time / self.server_free if self.server_free > 0 else 0.0


class LatencyRecorder:
    """Per-operation service/sojourn sketches, split by kind and tenant."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self.service = PercentileSketch(seed=seed)
        self.sojourn = PercentileSketch(seed=seed)
        self._by_kind: dict[str, PercentileSketch] = {}
        self._by_tenant: dict[int, PercentileSketch] = {}
        self._tenant_service_totals: dict[int, float] = {}

    def record(self, kind: str, tenant: int, service: float, sojourn: float) -> None:
        """Fold one operation's measured service + sojourn seconds in."""
        self.service.add(service)
        self.sojourn.add(sojourn)
        kind_sketch = self._by_kind.get(kind)
        if kind_sketch is None:
            kind_sketch = self._by_kind[kind] = PercentileSketch(seed=self._seed)
        kind_sketch.add(sojourn)
        tenant_sketch = self._by_tenant.get(tenant)
        if tenant_sketch is None:
            tenant_sketch = self._by_tenant[tenant] = PercentileSketch(seed=self._seed)
        tenant_sketch.add(sojourn)
        self._tenant_service_totals[tenant] = (
            self._tenant_service_totals.get(tenant, 0.0) + service
        )

    # -- summaries ------------------------------------------------------------

    def service_summary(self) -> Optional[LatencySummary]:
        return LatencySummary.from_sketch(self.service)

    def sojourn_summary(self) -> Optional[LatencySummary]:
        return LatencySummary.from_sketch(self.sojourn)

    def by_kind(self) -> dict[str, LatencySummary]:
        return {
            kind: LatencySummary.from_sketch(sketch)
            for kind, sketch in sorted(self._by_kind.items())
        }

    def by_tenant(self) -> dict[int, LatencySummary]:
        return {
            tenant: LatencySummary.from_sketch(sketch)
            for tenant, sketch in sorted(self._by_tenant.items())
        }

    def fairness(self) -> Optional[float]:
        """Jain's fairness index over the tenants' mean sojourn times.

        1.0 means every tenant experiences the same mean latency; it degrades
        toward ``1/n`` as one tenant monopolises the server.  None unless at
        least two tenants recorded operations.
        """
        if len(self._by_tenant) < 2:
            return None
        means = [sketch.mean for sketch in self._by_tenant.values()]
        return jains_fairness_index(means)


def jains_fairness_index(values) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``, in ``(0, 1]``."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ValueError("fairness index needs at least one value")
    squares = float(np.sum(values**2))
    if squares == 0.0:
        return 1.0
    return float(np.sum(values)) ** 2 / (values.size * squares)
