"""Rebalancing fuzz: answer identity while shard migrations are in flight.

The scenario fuzz harness (runner + :class:`OracleIndex`) already asserts
that a *static* sharded deployment answers exactly like brute force.  This
module turns the same machinery on the online rebalancer: replay a
``drifting`` or ``bulk-churn`` stream against a sharded index with a
:class:`~repro.sharding.RebalanceController` attached, so shard splits and
merges interleave with the stream — read batches execute between migration
stages (racing the swap), writes land in shards that are mid-split and go
through the rescue buffer — and every single answer is still checked
against the oracle.  Any disagreement raises
:class:`~repro.workloads.runner.ScenarioMismatch` at the offending
operation; a run in which no migration actually happened raises
:class:`~repro.sharding.RebalanceError`, so a miscalibrated config cannot
pass vacuously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sharding import RebalanceConfig, RebalanceController, RebalanceError
from repro.workloads.oracle import OracleIndex
from repro.workloads.runner import ScenarioResult, ScenarioRunner
from repro.workloads.spec import ScenarioSpec

__all__ = ["RebalanceFuzzOutcome", "aggressive_config", "run_rebalance_fuzz"]


def aggressive_config(**overrides) -> RebalanceConfig:
    """A controller config tuned so migrations fire even at tiny fuzz
    budgets (low thresholds, no cooldown, quick decay)."""
    settings = dict(
        split_threshold=0.30,
        min_split_points=32,
        merge_threshold=0.05,
        min_observations=32,
        cooldown_ticks=0,
        max_shards=16,
        decay=0.9,
    )
    settings.update(overrides)
    return RebalanceConfig(**settings)


@dataclass(frozen=True)
class RebalanceFuzzOutcome:
    """What one oracle-checked rebalancing run did (all assertions passed)."""

    result: ScenarioResult
    initial_shards: int
    final_shards: int
    n_splits: int
    n_merges: int
    n_aborted: int
    rescued_writes: int
    #: control ticks / observed read batches while a migration was in flight
    #: — both > 0 proves operations genuinely raced the migrations
    mid_migration_ticks: int
    mid_migration_batches: int

    @property
    def n_migrations(self) -> int:
        return self.n_splits + self.n_merges


def run_rebalance_fuzz(
    index,
    spec: ScenarioSpec,
    initial_points: np.ndarray,
    *,
    exact: bool = False,
    config: Optional[RebalanceConfig] = None,
    engine_mode: str = "auto",
    batch_size: int = 16,
    require_migration: bool = True,
) -> RebalanceFuzzOutcome:
    """Replay ``spec`` against a built sharded ``index`` with the rebalancer
    on and an oracle attached; every answer is checked mid-migration.

    ``exact`` enables exact-agreement window/kNN assertions (pass True for
    the :data:`~repro.sharding.EXACT_KINDS`); learned kinds get
    soundness + recall checks.  ``batch_size`` is deliberately small so
    migration stages interleave tightly with read batches.  Raises
    :class:`~repro.workloads.runner.ScenarioMismatch` on any answer
    disagreement and :class:`~repro.sharding.RebalanceError` when
    ``require_migration`` is set but the stream never triggered one.
    """
    initial_points = np.asarray(initial_points, dtype=float).reshape(-1, 2)
    controller = RebalanceController(
        index, config if config is not None else aggressive_config()
    )
    initial_shards = index.n_shards
    oracle = OracleIndex().build(initial_points)
    runner = ScenarioRunner(
        index,
        spec,
        oracle=oracle,
        exact_results=exact,
        engine_mode=engine_mode,
        batch_size=batch_size,
        rebalancer=controller,
    )
    result = runner.run(initial_points)
    report = controller.report
    if require_migration:
        if report.n_splits + report.n_merges == 0:
            raise RebalanceError(
                f"no migration completed over {result.n_ops} ops of "
                f"{spec.name!r} (aborted={report.n_aborted}); the fuzz run "
                "was vacuous — widen the stream or loosen the config"
            )
        if report.mid_migration_batches == 0 and report.rescued_writes == 0:
            # at least one kind of race must have happened: read batches
            # executing mid-migration, or writes rescued out of a migrating
            # shard (write-heavy streams often complete a migration between
            # two read batches, but then the rescue path was exercised)
            raise RebalanceError(
                "migrations completed but no operation raced them: no read "
                "batch ran mid-migration and no write was rescued"
            )
    return RebalanceFuzzOutcome(
        result=result,
        initial_shards=initial_shards,
        final_shards=index.n_shards,
        n_splits=report.n_splits,
        n_merges=report.n_merges,
        n_aborted=report.n_aborted,
        rescued_writes=report.rescued_writes,
        mid_migration_ticks=report.mid_migration_ticks,
        mid_migration_batches=report.mid_migration_batches,
    )
