"""Seeded operation-stream generation from a :class:`ScenarioSpec`.

The generator turns a declarative spec into a concrete, fully deterministic
list of :class:`Operation` records.  It maintains a *mirror* of the live
point set while generating (insertions add to it, deletions pick victims
from it), so deletion targets are real stored points and the same stream is
meaningful for every index that replays it — the property the differential
fuzz harness relies on: one stream, many indices, one oracle.

The mirror also means stream generation never consults an index; two indices
replaying the same stream therefore receive byte-identical operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analytics.ops import AggregateSpec
from repro.geometry import Rect
from repro.workloads.pointset import LivePointSet
from repro.workloads.spec import OPERATION_KINDS, ScenarioSpec

__all__ = ["Operation", "generate_operations", "generate_arrival_schedule"]


@dataclass(frozen=True)
class Operation:
    """One operation of a scenario stream.

    ``x``/``y`` carry the key for point/knn/insert/delete operations (and the
    window centre for window operations); ``window`` is set for window
    queries only and ``k`` for kNN queries only.  ``arrival_time`` is the
    operation's virtual arrival instant in seconds (the open-loop schedule;
    0.0 under closed-loop, where arrivals are completion-driven), and
    ``tenant`` identifies the originating stream of a multi-tenant merge.
    """

    kind: str
    x: float
    y: float
    window: Optional[Rect] = None
    k: int = 0
    arrival_time: float = 0.0
    tenant: int = 0
    #: the full aggregate operation (``aggregate`` kind only)
    agg: Optional[AggregateSpec] = None

    def __post_init__(self) -> None:
        if self.kind not in OPERATION_KINDS:
            raise ValueError(f"unknown operation kind {self.kind!r}")
        if self.kind == "aggregate" and self.agg is None:
            raise ValueError("aggregate operations must carry an AggregateSpec")


class _StreamState:
    """Mutable generation state: RNG, live mirror, hot region and burst run.

    The mirror (a :class:`LivePointSet`) models the stored point set while
    generating: insertions add to it, deletion victims come from it.
    """

    def __init__(self, spec: ScenarioSpec, initial_points: np.ndarray):
        self.spec = spec
        # keyed seed sequence: decorrelates the stream from a data set that
        # was generated with default_rng(spec.seed) — with a bare seed the
        # two generators emit the *same* float stream, so every "fresh" key
        # drawn would collide with a stored point and saturate the retry loop
        self.rng = np.random.default_rng(np.random.SeedSequence((spec.seed, 0x5CE9A)))
        self.mirror = LivePointSet(initial_points)
        self.space = spec.data_space
        self.probabilities = np.asarray(spec.mix.probabilities())
        # a zero aggregate weight keeps the historical five-kind draw — the
        # RNG consumes exactly the same variates, so pre-analytics streams
        # (and the committed benchmark baselines built on them) are
        # byte-identical
        self._n_kinds = 5 if spec.mix.aggregate == 0 else len(OPERATION_KINDS)
        self.hot_region: Optional[Rect] = None
        if spec.distribution in ("hotspot", "bulk-churn"):
            self.hot_region = self._place_hot_region()
        self._burst_kind: Optional[str] = None
        self._burst_remaining = 0

    # -- hot-region handling --------------------------------------------------

    def _place_hot_region(self, center: Optional[tuple[float, float]] = None) -> Rect:
        space = self.space
        if center is None:
            center = (
                space.xlo + float(self.rng.random()) * space.width,
                space.ylo + float(self.rng.random()) * space.height,
            )
        width = self.spec.hotspot_extent * space.width
        height = self.spec.hotspot_extent * space.height
        return Rect.from_center(center[0], center[1], width, height).clip_to(space)

    def region_for_op(self, op_index: int) -> Optional[Rect]:
        """The hot region in effect for operation ``op_index`` (or None)."""
        distribution = self.spec.distribution
        if distribution == "hotspot":
            return self.hot_region
        if distribution == "drifting":
            # the hot-region centre orbits the data space as the stream advances
            theta = 2.0 * math.pi * self.spec.drift_cycles * op_index / self.spec.n_ops
            cx, cy = self.space.center
            radius_x = 0.35 * self.space.width
            radius_y = 0.35 * self.space.height
            return self._place_hot_region(
                (cx + radius_x * math.cos(theta), cy + radius_y * math.sin(theta))
            )
        if distribution == "bulk-churn":
            if op_index > 0 and op_index % self.spec.churn_period == 0:
                self.hot_region = self._place_hot_region()
            return self.hot_region
        return None

    # -- arrival pattern ------------------------------------------------------

    def _draw_kind(self) -> str:
        n = self._n_kinds
        return OPERATION_KINDS[int(self.rng.choice(n, p=self.probabilities[:n]))]

    def next_kind(self) -> str:
        if self.spec.arrival == "steady":
            return self._draw_kind()
        if self._burst_remaining <= 0:
            self._burst_kind = self._draw_kind()
            self._burst_remaining = int(self.rng.geometric(1.0 / self.spec.burst_length))
        self._burst_remaining -= 1
        return self._burst_kind

    # -- key sampling ---------------------------------------------------------

    def fresh_location(self, region: Optional[Rect]) -> tuple[float, float]:
        """A new coordinate pair in the hot region (with the configured
        probability) or anywhere in the data space."""
        target = self.space
        if region is not None and float(self.rng.random()) < self.spec.hotspot_fraction:
            target = region
        return (
            target.xlo + float(self.rng.random()) * target.width,
            target.ylo + float(self.rng.random()) * target.height,
        )

    def live_key(self, region: Optional[Rect]) -> tuple[float, float]:
        """A stored key, biased toward the hot region / zipf-popular slots."""
        if self.spec.distribution == "zipfian":
            draw = int(self.rng.zipf(self.spec.zipf_exponent))
            return self.mirror.at(draw - 1)
        if region is not None and float(self.rng.random()) < self.spec.hotspot_fraction:
            return self.mirror.sample_in(region, self.rng)
        return self.mirror.sample(self.rng)

    def unique_fresh_key(self, region: Optional[Rect]) -> tuple[float, float]:
        for _ in range(128):
            key = self.fresh_location(region)
            if key not in self.mirror:
                return key
        raise RuntimeError("could not draw a fresh key; data space saturated")


def generate_arrival_schedule(spec: ScenarioSpec, n_ops: int) -> np.ndarray:
    """Virtual arrival instants (seconds) for ``n_ops`` operations of ``spec``.

    Under ``closed-loop`` the schedule is all zeros — arrivals are
    completion-driven and computed while replaying.  Under ``open-loop`` it
    is a Poisson process at ``spec.arrival_rate``; with ``arrival="bursty"``
    arrivals instead come in geometric bursts (mean ``spec.burst_length``)
    whose members share one instant, with exponential gaps scaled so the
    long-run rate still matches ``arrival_rate``.

    The schedule RNG is keyed independently of both the data set and the
    operation-content RNG, so the same spec + seed always yields identical
    per-op timestamps (and adding arrival times did not reshuffle any
    previously generated stream's contents).
    """
    if n_ops < 0:
        raise ValueError("n_ops must be >= 0")
    if spec.arrival_model == "closed-loop":
        return np.zeros(n_ops, dtype=float)
    rng = np.random.default_rng(np.random.SeedSequence((spec.seed, 0xA881)))
    if spec.arrival != "bursty":
        gaps = rng.exponential(1.0 / spec.arrival_rate, size=n_ops)
        return np.cumsum(gaps)
    times = np.empty(n_ops, dtype=float)
    now = 0.0
    filled = 0
    while filled < n_ops:
        burst = min(int(rng.geometric(1.0 / spec.burst_length)), n_ops - filled)
        now += float(rng.exponential(burst / spec.arrival_rate))
        times[filled : filled + burst] = now
        filled += burst
    return times


def generate_operations(spec: ScenarioSpec, initial_points: np.ndarray) -> list[Operation]:
    """The deterministic operation stream of ``spec`` over ``initial_points``.

    ``initial_points`` is the data set the index under test was built on; the
    stream's deletion victims and point-query hits are drawn from it (plus
    any points the stream itself inserted earlier).  Each operation carries
    its virtual arrival instant per :func:`generate_arrival_schedule`.
    """
    initial_points = np.asarray(initial_points, dtype=float).reshape(-1, 2)
    if initial_points.shape[0] == 0:
        raise ValueError("scenario streams require a non-empty initial data set")
    state = _StreamState(spec, initial_points)
    arrivals = generate_arrival_schedule(spec, spec.n_ops)
    spec_area = spec.window_area_fraction * spec.data_space.area
    window_height = math.sqrt(spec_area / spec.window_aspect_ratio)
    window_width = spec_area / window_height
    agg_fraction = (
        spec.aggregate_window_area_fraction
        if spec.aggregate_window_area_fraction is not None
        else spec.window_area_fraction
    )
    agg_area = agg_fraction * spec.data_space.area
    agg_height = math.sqrt(agg_area / spec.window_aspect_ratio)
    agg_width = agg_area / agg_height

    operations: list[Operation] = []
    for op_index in range(spec.n_ops):
        region = state.region_for_op(op_index)
        kind = state.next_kind()
        at = float(arrivals[op_index])

        if kind == "delete" and len(state.mirror) == 0:
            kind = "insert"  # nothing left to delete; keep the stream length

        if kind == "point":
            if float(state.rng.random()) < spec.point_miss_fraction or not len(state.mirror):
                x, y = state.unique_fresh_key(region)
            else:
                x, y = state.live_key(region)
            operations.append(Operation("point", x, y, arrival_time=at))
        elif kind == "window":
            cx, cy = state.fresh_location(region)
            window = Rect.from_center(cx, cy, window_width, window_height).clip_to(
                spec.data_space
            )
            operations.append(Operation("window", cx, cy, window=window, arrival_time=at))
        elif kind == "knn":
            x, y = state.fresh_location(region)
            operations.append(Operation("knn", x, y, k=spec.k, arrival_time=at))
        elif kind == "aggregate":
            cx, cy = state.fresh_location(region)
            window = Rect.from_center(cx, cy, agg_width, agg_height).clip_to(
                spec.data_space
            )
            op_name = spec.aggregate_ops[
                int(state.rng.integers(len(spec.aggregate_ops)))
            ]
            q = 0.5
            if op_name == "quantile":
                q = float(
                    spec.aggregate_quantiles[
                        int(state.rng.integers(len(spec.aggregate_quantiles)))
                    ]
                )
            agg = AggregateSpec(
                op=op_name, window=window, q=q, k=spec.k, attribute_seed=spec.seed
            )
            operations.append(
                Operation("aggregate", cx, cy, window=window, agg=agg, arrival_time=at)
            )
        elif kind == "insert":
            x, y = state.unique_fresh_key(region)
            state.mirror.add((x, y))
            operations.append(Operation("insert", x, y, arrival_time=at))
        else:  # delete
            if float(state.rng.random()) < spec.delete_miss_fraction:
                x, y = state.unique_fresh_key(region)
            else:
                x, y = state.live_key(region)
                state.mirror.discard((x, y))
            operations.append(Operation("delete", x, y, arrival_time=at))
    return operations
