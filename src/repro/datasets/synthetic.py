"""Synthetic point-set generators: Uniform, Normal, Skewed (paper Section 6.1)."""

from __future__ import annotations

import numpy as np

__all__ = ["generate_uniform", "generate_normal", "generate_skewed"]


def _validate(n: int) -> None:
    if n < 1:
        raise ValueError("n must be >= 1")


def generate_uniform(n: int, seed: int = 0) -> np.ndarray:
    """``n`` points drawn uniformly at random from the unit square."""
    _validate(n)
    rng = np.random.default_rng(seed)
    return rng.random((n, 2))


def generate_normal(
    n: int,
    seed: int = 0,
    center: tuple[float, float] = (0.5, 0.5),
    stddev: float = 0.15,
) -> np.ndarray:
    """``n`` points from a (clipped) isotropic normal distribution in the unit square.

    Samples falling outside the unit square are redrawn so the data space
    matches the other generators.
    """
    _validate(n)
    if stddev <= 0:
        raise ValueError("stddev must be positive")
    rng = np.random.default_rng(seed)
    points = np.empty((0, 2), dtype=float)
    while points.shape[0] < n:
        batch = rng.normal(loc=center, scale=stddev, size=(2 * (n - points.shape[0]) + 16, 2))
        inside = batch[
            (batch[:, 0] >= 0) & (batch[:, 0] <= 1) & (batch[:, 1] >= 0) & (batch[:, 1] <= 1)
        ]
        points = np.vstack([points, inside])
    return points[:n]


def generate_skewed(n: int, seed: int = 0, alpha: float = 4.0) -> np.ndarray:
    """Skewed data: uniform points with y-coordinates raised to the power ``alpha``.

    This follows the paper (and the HRR work it cites): the default ``alpha = 4``
    concentrates the mass near ``y = 0`` while leaving x uniform.
    """
    _validate(n)
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    points = rng.random((n, 2))
    points[:, 1] = points[:, 1] ** alpha
    return points
