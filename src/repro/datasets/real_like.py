"""Surrogates for the paper's real data sets (Tiger and OSM).

The Tiger data set (geographical features of 18 Eastern US states) and the
OSM data set (points of interest across the USA) are multi-gigabyte downloads
that are unavailable offline, so this module generates clustered point sets
that reproduce their salient statistical properties:

* **Tiger-like** — elongated, corridor-shaped clusters of very different
  densities (road networks and urbanised bands along a coastline), plus a
  light uniform background.
* **OSM-like** — a large number of compact, heavy-tailed clusters (cities) of
  wildly varying size over a sparse background, yielding the strong local
  density contrasts that make learned CDFs hard to fit.

Both generators are deterministic given a seed and emit points in the unit
square, matching the synthetic generators.
"""

from __future__ import annotations

import numpy as np

__all__ = ["generate_tiger_like", "generate_osm_like"]


def _clip_unit(points: np.ndarray) -> np.ndarray:
    return np.clip(points, 0.0, 1.0)


def generate_tiger_like(n: int, seed: int = 0, n_corridors: int = 12) -> np.ndarray:
    """Corridor-clustered data mimicking the Tiger geographic feature set."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if n_corridors < 1:
        raise ValueError("n_corridors must be >= 1")
    rng = np.random.default_rng(seed)

    background_count = max(1, n // 20)
    corridor_count = n - background_count

    # corridors: line segments with anisotropic gaussian noise around them
    starts = rng.random((n_corridors, 2))
    angles = rng.uniform(0, np.pi, size=n_corridors)
    lengths = rng.uniform(0.2, 0.6, size=n_corridors)
    weights = rng.pareto(1.5, size=n_corridors) + 1.0
    weights /= weights.sum()
    counts = rng.multinomial(corridor_count, weights)

    chunks: list[np.ndarray] = []
    for i in range(n_corridors):
        if counts[i] == 0:
            continue
        t = rng.random(counts[i])
        direction = np.array([np.cos(angles[i]), np.sin(angles[i])])
        centers = starts[i] + np.outer(t * lengths[i], direction)
        noise = rng.normal(scale=(0.004, 0.02), size=(counts[i], 2))
        chunks.append(centers + noise)
    chunks.append(rng.random((background_count, 2)))
    points = _clip_unit(np.vstack(chunks))
    rng.shuffle(points)
    return points[:n]


def generate_osm_like(n: int, seed: int = 0, n_clusters: int = 60) -> np.ndarray:
    """City-clustered data mimicking OpenStreetMap points of interest."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    rng = np.random.default_rng(seed)

    background_count = max(1, n // 10)
    cluster_count = n - background_count

    centers = rng.random((n_clusters, 2))
    # heavy-tailed cluster sizes: a few "metropolises" dominate
    weights = rng.pareto(1.1, size=n_clusters) + 0.2
    weights /= weights.sum()
    counts = rng.multinomial(cluster_count, weights)
    spreads = rng.uniform(0.002, 0.03, size=n_clusters)

    chunks: list[np.ndarray] = []
    for i in range(n_clusters):
        if counts[i] == 0:
            continue
        chunks.append(rng.normal(loc=centers[i], scale=spreads[i], size=(counts[i], 2)))
    chunks.append(rng.random((background_count, 2)))
    points = _clip_unit(np.vstack(chunks))
    rng.shuffle(points)
    return points[:n]
