"""Name-based access to the data-set generators used by the experiments."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.datasets.real_like import generate_osm_like, generate_tiger_like
from repro.datasets.synthetic import generate_normal, generate_skewed, generate_uniform

__all__ = ["DATASET_GENERATORS", "dataset_by_name", "deduplicate_points"]

#: The five distributions of the paper's evaluation (Table 2 / Section 6.1).
DATASET_GENERATORS: dict[str, Callable[..., np.ndarray]] = {
    "uniform": generate_uniform,
    "normal": generate_normal,
    "skewed": generate_skewed,
    "tiger": generate_tiger_like,
    "osm": generate_osm_like,
}


def dataset_by_name(name: str, n: int, seed: int = 0, unique: bool = True) -> np.ndarray:
    """Generate ``n`` points of the named distribution.

    When ``unique`` is True duplicate coordinate pairs are removed and
    replaced (the paper assumes no two points share both coordinates,
    Section 3.1), so the returned array always has exactly ``n`` rows of
    distinct points.
    """
    normalized = name.strip().lower()
    aliases = {
        "uni": "uniform",
        "uni.": "uniform",
        "nor": "normal",
        "nor.": "normal",
        "ske": "skewed",
        "ske.": "skewed",
        "tig": "tiger",
        "tig.": "tiger",
        "osm.": "osm",
    }
    normalized = aliases.get(normalized, normalized)
    if normalized not in DATASET_GENERATORS:
        raise ValueError(
            f"unknown data set {name!r}; available: {sorted(DATASET_GENERATORS)}"
        )
    generator = DATASET_GENERATORS[normalized]
    points = generator(n, seed=seed)
    if unique:
        points = deduplicate_points(points, generator, n, seed)
    return points


def deduplicate_points(
    points: np.ndarray,
    generator: Callable[..., np.ndarray],
    n: int,
    seed: int,
    max_rounds: int = 8,
) -> np.ndarray:
    """Ensure exactly ``n`` distinct points by topping up with fresh draws."""
    unique = np.unique(np.asarray(points, dtype=float), axis=0)
    round_number = 1
    while unique.shape[0] < n and round_number <= max_rounds:
        extra = generator(n, seed=seed + 1000 * round_number)
        unique = np.unique(np.vstack([unique, extra]), axis=0)
        round_number += 1
    if unique.shape[0] < n:
        raise RuntimeError(f"could not generate {n} distinct points")
    # shuffle deterministically so truncation does not bias toward sorted order
    rng = np.random.default_rng(seed)
    order = rng.permutation(unique.shape[0])
    return unique[order][:n]
