"""Data-set generators used by the evaluation (paper Section 6.1).

The paper evaluates on two real data sets (Tiger, OSM) and three families of
synthetic data (Uniform, Normal, Skewed).  The real data is not available
offline, so :mod:`repro.datasets.real_like` provides clustered surrogates that
reproduce the skew characteristics driving the reported effects (see
DESIGN.md, "Substitutions").  All generators return ``(n, 2)`` float arrays
inside the unit square and are deterministic given a seed.
"""

from repro.datasets.synthetic import (
    generate_normal,
    generate_skewed,
    generate_uniform,
)
from repro.datasets.real_like import generate_osm_like, generate_tiger_like
from repro.datasets.registry import DATASET_GENERATORS, dataset_by_name, deduplicate_points

__all__ = [
    "generate_uniform",
    "generate_normal",
    "generate_skewed",
    "generate_tiger_like",
    "generate_osm_like",
    "dataset_by_name",
    "deduplicate_points",
    "DATASET_GENERATORS",
]
