"""HRR: the rank-space Hilbert-packed R-tree [37, 38].

The HRR baseline is an R-tree bulk-loaded with the same rank-space curve
ordering that RSMI uses (Section 3.1): points are mapped to the rank space,
ordered along a Hilbert curve, every ``B`` consecutive points become a leaf
node, and every ``fanout`` consecutive nodes become a parent node until a
single root remains.  This packing gives worst-case optimal window query
performance among R-trees, which is why the paper uses it as the strongest
traditional competitor.

The original structure keeps two auxiliary B-trees to translate coordinates
into ranks for queries on the rank space; this reproduction only needs them
for the size accounting (the paper notes HRR is larger than RSMI because of
them), so their footprint is charged in :meth:`HRRTree.size_bytes` without
materialising the trees.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.baselines.interface import SpatialIndex
from repro.baselines.rtree.node import RTreeNode
from repro.baselines.rtree.queries import (
    rtree_contains,
    rtree_iter_leaves,
    rtree_knn_query,
    rtree_window_query,
)
from repro.geometry import Rect
from repro.rank_space import order_points_by_curve
from repro.storage import AccessStats, PageCache

__all__ = ["HRRTree"]


class HRRTree(SpatialIndex):
    """Bulk-loaded rank-space Hilbert R-tree."""

    name = "HRR"

    def __init__(
        self,
        block_capacity: int = 100,
        fanout: Optional[int] = None,
        stats: Optional[AccessStats] = None,
        curve: str = "hilbert",
        cache: Optional[PageCache] = None,
    ):
        super().__init__(stats, cache)
        if block_capacity < 1:
            raise ValueError("block_capacity must be >= 1")
        self.block_capacity = int(block_capacity)
        self.fanout = int(fanout) if fanout is not None else self.block_capacity
        if self.fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.curve = curve
        self.root: Optional[RTreeNode] = None
        self._n_points = 0

    # -- bulk loading -------------------------------------------------------------------

    def build(self, points: np.ndarray) -> "HRRTree":
        points = self._validate_points(points)
        ordering = order_points_by_curve(points, curve=self.curve, use_rank_space=True)
        sorted_points = ordering.sorted_points

        leaves = [
            RTreeNode.leaf_from_points(sorted_points[start : start + self.block_capacity])
            for start in range(0, sorted_points.shape[0], self.block_capacity)
        ]
        level: list[RTreeNode] = leaves
        while len(level) > 1:
            level = [
                RTreeNode.internal_from_children(level[start : start + self.fanout])
                for start in range(0, len(level), self.fanout)
            ]
        self.root = level[0]
        self._n_points = points.shape[0]
        return self

    # -- queries ------------------------------------------------------------------------

    def contains(self, x: float, y: float) -> bool:
        if self.root is None:
            return False
        return rtree_contains(self.root, x, y, self.pager)

    def window_query(self, window: Rect) -> np.ndarray:
        if self.root is None:
            return np.empty((0, 2), dtype=float)
        return rtree_window_query(self.root, window, self.pager)

    def knn_query(self, x: float, y: float, k: int) -> np.ndarray:
        if self.root is None:
            return np.empty((0, 2), dtype=float)
        return rtree_knn_query(self.root, x, y, k, self.pager)

    # -- updates -------------------------------------------------------------------------

    def insert(self, x: float, y: float) -> None:
        """Insert by least-enlargement descent with half/half splits of full nodes."""
        if self.root is None:
            raise RuntimeError("index has not been built yet")
        path: list[RTreeNode] = []
        node = self.root
        while not node.is_leaf:
            self.pager.read_node(node)
            path.append(node)
            node = min(node.children, key=lambda child: _enlargement(child.mbr, x, y))
        node.points.append((x, y))
        node.expand_mbr(x, y)
        for ancestor in path:
            ancestor.expand_mbr(x, y)
        self.pager.write(node)
        self._n_points += 1
        if len(node.points) > self.block_capacity:
            self._split_leaf(node, path)

    def _split_leaf(self, leaf: RTreeNode, path: list[RTreeNode]) -> None:
        points = np.asarray(leaf.points, dtype=float)
        spread = points.max(axis=0) - points.min(axis=0)
        dimension = int(np.argmax(spread))
        order = np.argsort(points[:, dimension], kind="stable")
        middle = points.shape[0] // 2
        first = RTreeNode.leaf_from_points(points[order[:middle]])
        second = RTreeNode.leaf_from_points(points[order[middle:]])
        self._replace_child(leaf, [first, second], path)

    def _replace_child(
        self, old: RTreeNode, replacements: list[RTreeNode], path: list[RTreeNode]
    ) -> None:
        if not path:
            self.root = RTreeNode.internal_from_children(replacements)
            return
        parent = path[-1]
        parent.children.remove(old)
        parent.children.extend(replacements)
        parent.recompute_mbr()
        if len(parent.children) > self.fanout:
            children = sorted(
                parent.children, key=lambda child: child.mbr.center[0] if child.mbr else 0.0
            )
            middle = len(children) // 2
            first = RTreeNode.internal_from_children(children[:middle])
            second = RTreeNode.internal_from_children(children[middle:])
            self.pager.retire(parent)
            self._replace_child(parent, [first, second], path[:-1])

    def delete(self, x: float, y: float) -> bool:
        if self.root is None:
            return False
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not node.mbr.contains_point(x, y):
                continue
            if node.is_leaf:
                self.pager.read_block(node)
                for i, (px, py) in enumerate(node.points):
                    if px == x and py == y:
                        node.points.pop(i)
                        node.recompute_mbr()
                        self.pager.write(node)
                        self._n_points -= 1
                        return True
            else:
                self.pager.read_node(node)
                stack.extend(node.children)
        return False

    # -- accounting ------------------------------------------------------------------------

    def size_bytes(self) -> int:
        if self.root is None:
            return 0
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                total += self.block_capacity * 16 + 40
            else:
                total += len(node.children) * 40 + 40
                stack.extend(node.children)
        # two auxiliary rank-space B-trees over x and y (8-byte keys + pointers)
        total += 2 * self._n_points * 16
        return total

    @property
    def n_points(self) -> int:
        return self._n_points

    @property
    def height(self) -> int:
        """Number of internal levels above the leaves."""
        if self.root is None:
            return 0
        height = 0
        node = self.root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        return height

    @property
    def n_leaves(self) -> int:
        if self.root is None:
            return 0
        return sum(1 for _ in rtree_iter_leaves(self.root))


def _enlargement(mbr: Optional[Rect], x: float, y: float) -> float:
    """Area enlargement needed for ``mbr`` to cover the point (math.inf when absent)."""
    if mbr is None:
        return math.inf
    return mbr.expand_to_point(x, y).area - mbr.area
