"""R-tree family baselines.

* :class:`~repro.baselines.rtree.hrr.HRRTree` — the rank-space Hilbert-packed
  R-tree of Qi et al. [37, 38], bulk-loaded bottom-up from the same rank-space
  curve ordering RSMI uses.  It is the paper's strongest traditional baseline
  for window queries.
* :class:`~repro.baselines.rtree.rstar.RStarTree` — an R*-tree built by
  repeated insertion (ChooseSubtree, forced reinsertion, margin-minimising
  splits), standing in for the revised R*-tree (RR*) of Beckmann & Seeger [4].

Both share the node structure in :mod:`repro.baselines.rtree.node` and the
generic query algorithms in :mod:`repro.baselines.rtree.queries` (recursive
window search and the best-first kNN algorithm of Roussopoulos et al. [40]).
"""

from repro.baselines.rtree.node import RTreeNode
from repro.baselines.rtree.hrr import HRRTree
from repro.baselines.rtree.rstar import RStarTree

__all__ = ["RTreeNode", "HRRTree", "RStarTree"]
