"""R*-tree built by repeated insertion (stand-in for the revised R*-tree, RR*).

The paper's strongest dynamically-built competitor is the revised R*-tree of
Beckmann and Seeger [4].  Its original C implementation is not available
offline, so this module implements the classic R*-tree [3] insertion
algorithm, which plays the same role in the evaluation (see DESIGN.md,
"Substitutions"):

* **ChooseSubtree** descends into the child needing the least overlap
  enlargement at the leaf level and the least area enlargement above it,
* **forced reinsertion** removes the 30 % of entries farthest from the centre
  of the first node that overflows during an insertion and reinserts them,
* **R\\*-split** chooses the split axis by minimum margin sum and the split
  distribution by minimum overlap (ties broken by area).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.interface import SpatialIndex
from repro.baselines.rtree.node import RTreeNode
from repro.baselines.rtree.queries import (
    rtree_contains,
    rtree_knn_query,
    rtree_window_query,
)
from repro.geometry import Rect, union_rects
from repro.storage import AccessStats, PageCache

__all__ = ["RStarTree"]


def _rect_of_point(x: float, y: float) -> Rect:
    return Rect(x, y, x, y)


def _overlap(rect: Rect, others: list[Rect]) -> float:
    total = 0.0
    for other in others:
        intersection = rect.intersection(other)
        if intersection is not None:
            total += intersection.area
    return total


def _margin(rect: Rect) -> float:
    return 2.0 * (rect.width + rect.height)


class RStarTree(SpatialIndex):
    """R*-tree with ChooseSubtree, forced reinsertion and margin-based splits."""

    name = "RR*"

    def __init__(
        self,
        block_capacity: int = 100,
        fanout: Optional[int] = None,
        stats: Optional[AccessStats] = None,
        reinsert_fraction: float = 0.3,
        cache: Optional[PageCache] = None,
    ):
        super().__init__(stats, cache)
        if block_capacity < 2:
            raise ValueError("block_capacity must be >= 2")
        if not 0.0 <= reinsert_fraction < 1.0:
            raise ValueError("reinsert_fraction must lie in [0, 1)")
        self.block_capacity = int(block_capacity)
        self.fanout = int(fanout) if fanout is not None else self.block_capacity
        if self.fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.reinsert_fraction = float(reinsert_fraction)
        self.root: Optional[RTreeNode] = None
        self._n_points = 0
        self._min_fill_leaf = max(1, int(0.4 * self.block_capacity))
        self._min_fill_node = max(1, int(0.4 * self.fanout))

    # -- build ------------------------------------------------------------------------

    def build(self, points: np.ndarray) -> "RStarTree":
        points = self._validate_points(points)
        self.root = RTreeNode(is_leaf=True)
        self._n_points = 0
        for x, y in points:
            self.insert(float(x), float(y), count_accesses=False)
        return self

    # -- insertion ----------------------------------------------------------------------

    def insert(self, x: float, y: float, count_accesses: bool = True) -> None:
        if self.root is None:
            self.root = RTreeNode(is_leaf=True)
        self._insert_point(x, y, reinsert_allowed=True, count_accesses=count_accesses)
        self._n_points += 1
        if count_accesses:
            self.stats.record_block_write()

    def _insert_point(
        self, x: float, y: float, reinsert_allowed: bool, count_accesses: bool
    ) -> None:
        path = self._choose_path(x, y, count_accesses)
        leaf = path[-1]
        leaf.points.append((x, y))
        self.pager.retire(leaf)  # dirtied page must not produce stale hits
        for node in path:
            node.expand_mbr(x, y)
        if len(leaf.points) > self.block_capacity:
            self._handle_overflow(leaf, path, reinsert_allowed, count_accesses)

    def _choose_path(self, x: float, y: float, count_accesses: bool) -> list[RTreeNode]:
        """ChooseSubtree: the root-to-leaf path for a new point."""
        path = [self.root]
        node = self.root
        while not node.is_leaf:
            if count_accesses:
                self.pager.read_node(node)
            node = self._choose_child(node, x, y)
            path.append(node)
        return path

    def _choose_child(self, node: RTreeNode, x: float, y: float) -> RTreeNode:
        children = node.children
        children_are_leaves = children[0].is_leaf if children else True

        # raw-float bounding boxes: (xlo, ylo, xhi, yhi) — avoids Rect allocation
        # in this hot path (ChooseSubtree runs for every inserted point)
        boxes = [
            (c.mbr.xlo, c.mbr.ylo, c.mbr.xhi, c.mbr.yhi) if c.mbr is not None else None
            for c in children
        ]

        def area(box) -> float:
            return (box[2] - box[0]) * (box[3] - box[1])

        def enlarged(box):
            return (min(box[0], x), min(box[1], y), max(box[2], x), max(box[3], y))

        def area_enlargement(i: int) -> float:
            if boxes[i] is None:
                return 0.0
            return area(enlarged(boxes[i])) - area(boxes[i])

        if not children_are_leaves:
            return children[
                min(
                    range(len(children)),
                    key=lambda i: (area_enlargement(i), area(boxes[i]) if boxes[i] else 0.0),
                )
            ]

        # leaf level: minimum overlap enlargement among the candidates with the
        # least area enlargement (the R*-tree's standard candidate pruning),
        # ties broken by area enlargement then area
        candidate_count = min(len(children), 8)
        candidates = sorted(range(len(children)), key=area_enlargement)[:candidate_count]

        def overlap_with_others(box, skip: int) -> float:
            total = 0.0
            for j, other in enumerate(boxes):
                if j == skip or other is None:
                    continue
                w = min(box[2], other[2]) - max(box[0], other[0])
                if w <= 0:
                    continue
                h = min(box[3], other[3]) - max(box[1], other[1])
                if h <= 0:
                    continue
                total += w * h
            return total

        def overlap_enlargement(i: int) -> float:
            if boxes[i] is None:
                return 0.0
            return overlap_with_others(enlarged(boxes[i]), i) - overlap_with_others(boxes[i], i)

        best = min(
            candidates,
            key=lambda i: (
                overlap_enlargement(i),
                area_enlargement(i),
                area(boxes[i]) if boxes[i] else 0.0,
            ),
        )
        return children[best]

    def _handle_overflow(
        self,
        node: RTreeNode,
        path: list[RTreeNode],
        reinsert_allowed: bool,
        count_accesses: bool,
    ) -> None:
        is_root = len(path) == 1
        if reinsert_allowed and not is_root and node.is_leaf and self.reinsert_fraction > 0:
            self._forced_reinsert(node, count_accesses)
            return
        self._split(node, path, count_accesses)

    def _forced_reinsert(self, leaf: RTreeNode, count_accesses: bool) -> None:
        """Remove the entries farthest from the leaf centre and reinsert them."""
        leaf.recompute_mbr()
        center = leaf.mbr.center if leaf.mbr is not None else (0.0, 0.0)
        points = leaf.points
        distances = [
            ((px - center[0]) ** 2 + (py - center[1]) ** 2, i) for i, (px, py) in enumerate(points)
        ]
        distances.sort(reverse=True)
        n_reinsert = max(1, int(self.reinsert_fraction * len(points)))
        reinsert_idx = {i for _, i in distances[:n_reinsert]}
        keep = [p for i, p in enumerate(points) if i not in reinsert_idx]
        evicted = [p for i, p in enumerate(points) if i in reinsert_idx]
        leaf.points = keep
        leaf.recompute_mbr()
        self.pager.retire(leaf)
        for px, py in evicted:
            self._insert_point(px, py, reinsert_allowed=False, count_accesses=count_accesses)

    # -- splitting ------------------------------------------------------------------------

    def _split(self, node: RTreeNode, path: list[RTreeNode], count_accesses: bool) -> None:
        if node.is_leaf:
            entries = [(_rect_of_point(px, py), (px, py)) for px, py in node.points]
            min_fill = self._min_fill_leaf
        else:
            entries = [(child.mbr, child) for child in node.children]
            min_fill = self._min_fill_node
        first_entries, second_entries = self._rstar_split(entries, min_fill)

        first = RTreeNode(is_leaf=node.is_leaf)
        second = RTreeNode(is_leaf=node.is_leaf)
        if node.is_leaf:
            first.points = [payload for _, payload in first_entries]
            second.points = [payload for _, payload in second_entries]
        else:
            first.children = [payload for _, payload in first_entries]
            second.children = [payload for _, payload in second_entries]
        first.recompute_mbr()
        second.recompute_mbr()

        self.pager.retire(node)
        if len(path) == 1:
            self.root = RTreeNode.internal_from_children([first, second])
            return
        parent = path[-2]
        parent.children.remove(node)
        parent.children.extend([first, second])
        parent.recompute_mbr()
        if len(parent.children) > self.fanout:
            self._split(parent, path[:-1], count_accesses)

    def _rstar_split(
        self, entries: list[tuple[Rect, object]], min_fill: int
    ) -> tuple[list[tuple[Rect, object]], list[tuple[Rect, object]]]:
        """Choose the split axis by margin and the distribution by overlap/area."""
        n = len(entries)
        # clamp so at least one valid distribution exists even for tiny nodes
        min_fill = max(1, min(min_fill, n // 2))
        best_axis = None
        best_axis_margin = float("inf")
        axis_orders = {}
        for axis in (0, 1):
            if axis == 0:
                order = sorted(entries, key=lambda e: (e[0].xlo, e[0].xhi))
            else:
                order = sorted(entries, key=lambda e: (e[0].ylo, e[0].yhi))
            axis_orders[axis] = order
            margin_sum = 0.0
            for split_at in range(min_fill, n - min_fill + 1):
                left = union_rects([rect for rect, _ in order[:split_at]])
                right = union_rects([rect for rect, _ in order[split_at:]])
                margin_sum += _margin(left) + _margin(right)
            if margin_sum < best_axis_margin:
                best_axis_margin = margin_sum
                best_axis = axis

        order = axis_orders[best_axis]
        best_split = None
        best_key = (float("inf"), float("inf"))
        for split_at in range(min_fill, n - min_fill + 1):
            left = union_rects([rect for rect, _ in order[:split_at]])
            right = union_rects([rect for rect, _ in order[split_at:]])
            intersection = left.intersection(right)
            overlap_area = intersection.area if intersection is not None else 0.0
            key = (overlap_area, left.area + right.area)
            if key < best_key:
                best_key = key
                best_split = split_at
        return order[:best_split], order[best_split:]

    # -- queries -------------------------------------------------------------------------

    def contains(self, x: float, y: float) -> bool:
        if self.root is None:
            return False
        return rtree_contains(self.root, x, y, self.pager)

    def window_query(self, window: Rect) -> np.ndarray:
        if self.root is None:
            return np.empty((0, 2), dtype=float)
        return rtree_window_query(self.root, window, self.pager)

    def knn_query(self, x: float, y: float, k: int) -> np.ndarray:
        if self.root is None:
            return np.empty((0, 2), dtype=float)
        return rtree_knn_query(self.root, x, y, k, self.pager)

    # -- deletion ------------------------------------------------------------------------

    def delete(self, x: float, y: float) -> bool:
        if self.root is None:
            return False
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not node.mbr.contains_point(x, y):
                continue
            if node.is_leaf:
                self.pager.read_block(node)
                for i, (px, py) in enumerate(node.points):
                    if px == x and py == y:
                        node.points.pop(i)
                        node.recompute_mbr()
                        self.pager.write(node)
                        self._n_points -= 1
                        return True
            else:
                self.pager.read_node(node)
                stack.extend(node.children)
        return False

    # -- accounting ------------------------------------------------------------------------

    def size_bytes(self) -> int:
        if self.root is None:
            return 0
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                # RR*/R*-tree nodes are less compactly filled than packed trees,
                # so charge the full node footprint regardless of fill
                total += self.block_capacity * 16 + 48
            else:
                total += self.fanout * 40 + 48
                stack.extend(node.children)
        return total

    @property
    def n_points(self) -> int:
        return self._n_points

    @property
    def height(self) -> int:
        """Number of internal levels above the leaves."""
        if self.root is None:
            return 0
        height = 0
        node = self.root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        return height
