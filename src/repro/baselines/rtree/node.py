"""Shared R-tree node structure."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry import Rect, mbr_of_points, union_rects

__all__ = ["RTreeNode"]


class RTreeNode:
    """An R-tree node: a leaf holds points, an internal node holds child nodes."""

    __slots__ = ("is_leaf", "points", "children", "mbr", "page_id")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.points: list[tuple[float, float]] = []
        self.children: list["RTreeNode"] = []
        self.mbr: Optional[Rect] = None
        #: stable page id assigned by the NodePager on first access
        self.page_id: Optional[int] = None

    # -- construction helpers -------------------------------------------------------

    @classmethod
    def leaf_from_points(cls, points: np.ndarray) -> "RTreeNode":
        node = cls(is_leaf=True)
        node.points = [(float(x), float(y)) for x, y in np.asarray(points, dtype=float)]
        node.recompute_mbr()
        return node

    @classmethod
    def internal_from_children(cls, children: list["RTreeNode"]) -> "RTreeNode":
        node = cls(is_leaf=False)
        node.children = list(children)
        node.recompute_mbr()
        return node

    # -- MBR maintenance -------------------------------------------------------------

    def recompute_mbr(self) -> None:
        if self.is_leaf:
            self.mbr = (
                mbr_of_points(np.asarray(self.points, dtype=float)) if self.points else None
            )
        else:
            child_mbrs = [child.mbr for child in self.children if child.mbr is not None]
            self.mbr = union_rects(child_mbrs) if child_mbrs else None

    def expand_mbr(self, x: float, y: float) -> None:
        self.mbr = Rect(x, y, x, y) if self.mbr is None else self.mbr.expand_to_point(x, y)

    # -- occupancy ---------------------------------------------------------------------

    @property
    def n_entries(self) -> int:
        return len(self.points) if self.is_leaf else len(self.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "internal"
        return f"RTreeNode({kind}, entries={self.n_entries})"
