"""Generic R-tree query algorithms shared by HRR and the R*-tree.

Window queries recursively visit every node whose MBR intersects the query
window.  kNN queries use the best-first algorithm of Roussopoulos et al. [40]:
a priority queue ordered by MINDIST interleaves nodes, leaf blocks and points
so that exactly the necessary nodes are expanded.

Every node touch is reported through the owning tree's
:class:`~repro.storage.paged.NodePager`, which keeps the access accounting
cache-aware (leaf pages count as block reads, internal pages as node reads).
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.baselines.rtree.node import RTreeNode
from repro.geometry import Rect, euclidean, mindist_point_rect
from repro.storage import NodePager

__all__ = ["rtree_contains", "rtree_window_query", "rtree_knn_query", "rtree_iter_leaves"]


def rtree_contains(root: RTreeNode, x: float, y: float, pager: NodePager) -> bool:
    """True when a point with these exact coordinates is stored under ``root``."""
    stack = [root]
    while stack:
        node = stack.pop()
        if node.mbr is None or not node.mbr.contains_point(x, y):
            continue
        if node.is_leaf:
            pager.read_block(node)
            if any(px == x and py == y for px, py in node.points):
                return True
        else:
            pager.read_node(node)
            stack.extend(node.children)
    return False


def rtree_window_query(root: RTreeNode, window: Rect, pager: NodePager) -> np.ndarray:
    """All points under ``root`` inside ``window`` (exact)."""
    found: list[tuple[float, float]] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node.mbr is None or not window.intersects(node.mbr):
            continue
        if node.is_leaf:
            pager.read_block(node)
            found.extend((px, py) for px, py in node.points if window.contains_point(px, py))
        else:
            pager.read_node(node)
            stack.extend(node.children)
    return np.asarray(found, dtype=float).reshape(-1, 2)


def rtree_knn_query(
    root: RTreeNode, x: float, y: float, k: int, pager: NodePager
) -> np.ndarray:
    """The exact ``k`` nearest stored points, ordered by distance (best-first)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    counter = itertools.count()
    heap: list[tuple[float, int, str, object]] = [(0.0, next(counter), "node", root)]
    results: list[tuple[float, float]] = []
    while heap and len(results) < k:
        distance, _, kind, payload = heapq.heappop(heap)
        if kind == "point":
            results.append(payload)  # type: ignore[arg-type]
            continue
        node: RTreeNode = payload  # type: ignore[assignment]
        if node.mbr is None:
            continue
        if node.is_leaf:
            pager.read_block(node)
            for px, py in node.points:
                heapq.heappush(heap, (euclidean(x, y, px, py), next(counter), "point", (px, py)))
        else:
            pager.read_node(node)
            for child in node.children:
                if child.mbr is None:
                    continue
                heapq.heappush(
                    heap, (mindist_point_rect(x, y, child.mbr), next(counter), "node", child)
                )
    return np.asarray(results, dtype=float).reshape(-1, 2)


def rtree_iter_leaves(root: RTreeNode):
    """Yield every leaf node under ``root`` (no access accounting)."""
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            yield node
        else:
            stack.extend(node.children)
