"""K-D-B-tree baseline [39].

A K-D-B-tree stores a kd-tree style space partitioning in block-sized nodes:
region (internal) pages hold up to ``fanout`` child regions, point (leaf)
pages hold up to ``B`` points, and regions at the same level never overlap.
The paper bulk-loads it with a simple sorting-based construction
(Section 6.2.2), which is what :meth:`KDBTree.build` implements: the point
set is recursively divided by median splits along alternating dimensions
until partitions fit into leaf pages, and the resulting binary partitioning
is packed into multi-way nodes.

Dynamic insertions split overflowing leaf pages by a median plane.  When an
internal page overflows it is split by dividing its children between two new
pages (the upward half of the K-D-B split); the downward cascading split of
the original structure is not needed because children are never forced to
straddle the dividing line — the two halves simply keep their exact regions,
which can make sibling regions overlap slightly after many insertions but
preserves correctness of all queries.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional

import numpy as np

from repro.baselines.interface import SpatialIndex
from repro.geometry import Rect, euclidean, mbr_of_points, mindist_point_rect, union_rects
from repro.storage import AccessStats, PageCache

__all__ = ["KDBTree"]


class _KDBNode:
    """A K-D-B-tree page: either a point (leaf) page or a region page."""

    __slots__ = ("is_leaf", "region", "points", "children", "page_id")

    def __init__(self, is_leaf: bool, region: Rect):
        self.is_leaf = is_leaf
        self.region = region
        self.points: list[tuple[float, float]] = []
        self.children: list["_KDBNode"] = []
        #: stable page id assigned by the NodePager on first access
        self.page_id: Optional[int] = None


class KDBTree(SpatialIndex):
    """K-D-B-tree with sorting-based bulk loading and dynamic updates."""

    name = "KDB"

    def __init__(
        self,
        block_capacity: int = 100,
        fanout: Optional[int] = None,
        stats: Optional[AccessStats] = None,
        cache: Optional[PageCache] = None,
    ):
        super().__init__(stats, cache)
        if block_capacity < 1:
            raise ValueError("block_capacity must be >= 1")
        self.block_capacity = int(block_capacity)
        self.fanout = int(fanout) if fanout is not None else self.block_capacity
        if self.fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.root: Optional[_KDBNode] = None
        self._n_points = 0

    # -- bulk loading ----------------------------------------------------------------

    def build(self, points: np.ndarray) -> "KDBTree":
        points = self._validate_points(points)
        region = mbr_of_points(points)
        self.root = self._bulk_build(points, region, depth=0)
        self._n_points = points.shape[0]
        return self

    def _bulk_build(self, points: np.ndarray, region: Rect, depth: int) -> _KDBNode:
        if points.shape[0] <= self.block_capacity:
            leaf = _KDBNode(is_leaf=True, region=region)
            leaf.points = [(float(x), float(y)) for x, y in points]
            return leaf
        parts = self._median_partition(points, region, depth, self.fanout)
        node = _KDBNode(is_leaf=False, region=region)
        node.children = [
            self._bulk_build(part_points, part_region, depth + 1)
            for part_points, part_region in parts
            if part_points.shape[0] > 0
        ]
        return node

    def _median_partition(
        self, points: np.ndarray, region: Rect, depth: int, target_parts: int
    ) -> list[tuple[np.ndarray, Rect]]:
        """Divide ``points`` into at most ``target_parts`` partitions by recursive
        median splits along alternating dimensions."""
        parts: list[tuple[np.ndarray, Rect, int]] = [(points, region, depth)]
        while len(parts) < target_parts:
            # split the largest part that still exceeds a leaf page
            largest_index = max(range(len(parts)), key=lambda i: parts[i][0].shape[0])
            part_points, part_region, part_depth = parts[largest_index]
            if part_points.shape[0] <= self.block_capacity:
                break
            dimension = part_depth % 2
            order = np.argsort(part_points[:, dimension], kind="stable")
            middle = part_points.shape[0] // 2
            split_value = float(part_points[order[middle], dimension])
            left_idx, right_idx = order[:middle], order[middle:]
            if dimension == 0:
                left_region = Rect(part_region.xlo, part_region.ylo, split_value, part_region.yhi)
                right_region = Rect(split_value, part_region.ylo, part_region.xhi, part_region.yhi)
            else:
                left_region = Rect(part_region.xlo, part_region.ylo, part_region.xhi, split_value)
                right_region = Rect(part_region.xlo, split_value, part_region.xhi, part_region.yhi)
            parts[largest_index] = (part_points[left_idx], left_region, part_depth + 1)
            parts.append((part_points[right_idx], right_region, part_depth + 1))
        return [(part_points, part_region) for part_points, part_region, _ in parts]

    # -- queries ------------------------------------------------------------------------

    def contains(self, x: float, y: float) -> bool:
        if self.root is None:
            return False
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                self.pager.read_block(node)
                if any(px == x and py == y for px, py in node.points):
                    return True
                continue
            self.pager.read_node(node)
            for child in node.children:
                if child.region.contains_point(x, y):
                    stack.append(child)
        return False

    def window_query(self, window: Rect) -> np.ndarray:
        if self.root is None:
            return np.empty((0, 2), dtype=float)
        found: list[tuple[float, float]] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                self.pager.read_block(node)
                found.extend(
                    (px, py) for px, py in node.points if window.contains_point(px, py)
                )
                continue
            self.pager.read_node(node)
            stack.extend(child for child in node.children if window.intersects(child.region))
        return np.asarray(found, dtype=float).reshape(-1, 2)

    def knn_query(self, x: float, y: float, k: int) -> np.ndarray:
        """Exact kNN via the best-first algorithm of Roussopoulos et al. [40]."""
        if k < 1:
            raise ValueError("k must be >= 1")
        if self.root is None:
            return np.empty((0, 2), dtype=float)
        counter = itertools.count()
        heap: list[tuple[float, int, str, object]] = [(0.0, next(counter), "node", self.root)]
        results: list[tuple[float, float]] = []
        while heap and len(results) < k:
            distance, _, kind, payload = heapq.heappop(heap)
            if kind == "point":
                results.append(payload)  # type: ignore[arg-type]
                continue
            node: _KDBNode = payload  # type: ignore[assignment]
            if node.is_leaf:
                self.pager.read_block(node)
                for px, py in node.points:
                    heapq.heappush(
                        heap, (euclidean(x, y, px, py), next(counter), "point", (px, py))
                    )
            else:
                self.pager.read_node(node)
                for child in node.children:
                    heapq.heappush(
                        heap,
                        (mindist_point_rect(x, y, child.region), next(counter), "node", child),
                    )
        return np.asarray(results, dtype=float).reshape(-1, 2)

    # -- updates -------------------------------------------------------------------------

    def insert(self, x: float, y: float) -> None:
        if self.root is None:
            raise RuntimeError("index has not been built yet")
        if not self.root.region.contains_point(x, y):
            self.root.region = self.root.region.expand_to_point(x, y)
        path: list[_KDBNode] = []
        node = self.root
        while not node.is_leaf:
            self.pager.read_node(node)
            path.append(node)
            containing = [child for child in node.children if child.region.contains_point(x, y)]
            if containing:
                node = containing[0]
            else:
                # expand the nearest child region (can happen after root expansion)
                node = min(
                    node.children, key=lambda child: mindist_point_rect(x, y, child.region)
                )
                node.region = node.region.expand_to_point(x, y)
        node.points.append((x, y))
        self.pager.write(node)
        self._n_points += 1
        if len(node.points) > self.block_capacity:
            self._split_leaf(node, path)

    def _split_leaf(self, leaf: _KDBNode, path: list[_KDBNode]) -> None:
        points = np.asarray(leaf.points, dtype=float)
        dimension = 0 if leaf.region.width >= leaf.region.height else 1
        order = np.argsort(points[:, dimension], kind="stable")
        middle = points.shape[0] // 2
        split_value = float(points[order[middle], dimension])
        if dimension == 0:
            left_region = Rect(leaf.region.xlo, leaf.region.ylo, split_value, leaf.region.yhi)
            right_region = Rect(split_value, leaf.region.ylo, leaf.region.xhi, leaf.region.yhi)
        else:
            left_region = Rect(leaf.region.xlo, leaf.region.ylo, leaf.region.xhi, split_value)
            right_region = Rect(leaf.region.xlo, split_value, leaf.region.xhi, leaf.region.yhi)
        left = _KDBNode(is_leaf=True, region=left_region)
        right = _KDBNode(is_leaf=True, region=right_region)
        left.points = [tuple(points[i]) for i in order[:middle]]
        right.points = [tuple(points[i]) for i in order[middle:]]
        self.pager.retire(leaf)  # the replaced page must not stay resident

        if not path:
            new_root = _KDBNode(is_leaf=False, region=leaf.region)
            new_root.children = [left, right]
            self.root = new_root
            return
        parent = path[-1]
        parent.children.remove(leaf)
        parent.children.extend([left, right])
        if len(parent.children) > self.fanout:
            self._split_internal(parent, path[:-1])

    def _split_internal(self, node: _KDBNode, path: list[_KDBNode]) -> None:
        centers = np.asarray([child.region.center for child in node.children])
        spread = centers.max(axis=0) - centers.min(axis=0)
        dimension = int(np.argmax(spread))
        order = np.argsort(centers[:, dimension], kind="stable")
        middle = len(order) // 2
        first = _KDBNode(is_leaf=False, region=node.region)
        second = _KDBNode(is_leaf=False, region=node.region)
        first.children = [node.children[i] for i in order[:middle]]
        second.children = [node.children[i] for i in order[middle:]]
        first.region = union_rects([child.region for child in first.children])
        second.region = union_rects([child.region for child in second.children])
        self.pager.retire(node)  # the replaced page must not stay resident

        if not path:
            new_root = _KDBNode(is_leaf=False, region=node.region)
            new_root.children = [first, second]
            self.root = new_root
            return
        parent = path[-1]
        parent.children.remove(node)
        parent.children.extend([first, second])
        if len(parent.children) > self.fanout:
            self._split_internal(parent, path[:-1])

    def delete(self, x: float, y: float) -> bool:
        if self.root is None:
            return False
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                self.pager.read_block(node)
                for i, (px, py) in enumerate(node.points):
                    if px == x and py == y:
                        node.points.pop(i)
                        self.pager.write(node)
                        self._n_points -= 1
                        return True
                continue
            self.pager.read_node(node)
            stack.extend(
                child for child in node.children if child.region.contains_point(x, y)
            )
        return False

    # -- accounting ----------------------------------------------------------------------

    def size_bytes(self) -> int:
        if self.root is None:
            return 0
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                total += self.block_capacity * 16 + 32
            else:
                total += len(node.children) * 40 + 32
                stack.extend(node.children)
        return total

    @property
    def n_points(self) -> int:
        return self._n_points

    @property
    def height(self) -> int:
        """Number of levels, excluding the leaf (data block) level."""
        if self.root is None:
            return 0
        height = 0
        node = self.root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        return height
