"""Common interface implemented by every baseline index.

The experiment harness sweeps heterogeneous indices (learned and
traditional), so they all expose the same primitive operations with plain
NumPy return values.  The RSMI itself returns richer result records; the
harness adapts it through :mod:`repro.evaluation.adapters`.

Every baseline routes its storage accesses through one
:class:`~repro.storage.paged.NodePager` (created here), so the shared
:class:`~repro.storage.stats.AccessStats` counters and the optional
:class:`~repro.storage.page_cache.PageCache` sit on a single seam instead of
being bumped inline all over the query code.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.geometry import Rect
from repro.storage import AccessStats, NodePager, PageCache

__all__ = ["SpatialIndex"]


class SpatialIndex(abc.ABC):
    """Abstract base class for the baseline spatial indices."""

    #: short display name used in experiment tables ("Grid", "KDB", ...)
    name: str = "abstract"

    #: True when window/kNN answers are exact (full recall, no false
    #: positives); learned indices with approximate traversal override this
    supports_exact_results: bool = True

    #: True when the index reports concrete stored points (so the derived
    #: attribute column — and with it sum/mean/quantile/top-k aggregates —
    #: can be computed from its answers)
    supports_attributes: bool = True

    def __init__(
        self, stats: Optional[AccessStats] = None, cache: Optional[PageCache] = None
    ):
        self.stats = stats if stats is not None else AccessStats()
        #: the paged-access façade every read/write goes through
        self.pager = NodePager(self.stats, cache)

    @property
    def cache(self) -> Optional[PageCache]:
        """The attached page cache, or None when reads are uncached."""
        return self.pager.cache

    def attach_cache(self, cache: Optional[PageCache]) -> None:
        """Route all subsequent reads through ``cache`` (None detaches)."""
        self.pager.attach_cache(cache)

    # -- lifecycle ----------------------------------------------------------------

    @abc.abstractmethod
    def build(self, points: np.ndarray) -> "SpatialIndex":
        """Bulk-build the index over an ``(n, 2)`` point array; returns ``self``."""

    # -- queries ------------------------------------------------------------------

    @abc.abstractmethod
    def contains(self, x: float, y: float) -> bool:
        """True when a point with exactly these coordinates is stored."""

    @abc.abstractmethod
    def window_query(self, window: Rect) -> np.ndarray:
        """All stored points inside ``window`` as an ``(m, 2)`` array."""

    @abc.abstractmethod
    def knn_query(self, x: float, y: float, k: int) -> np.ndarray:
        """The ``k`` stored points nearest to ``(x, y)``, ordered by distance."""

    # -- updates ------------------------------------------------------------------

    @abc.abstractmethod
    def insert(self, x: float, y: float) -> None:
        """Insert a new point."""

    @abc.abstractmethod
    def delete(self, x: float, y: float) -> bool:
        """Delete a stored point; returns True when a point was removed."""

    # -- accounting ----------------------------------------------------------------

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Approximate index size in bytes (structure plus stored data)."""

    @property
    @abc.abstractmethod
    def n_points(self) -> int:
        """Number of live points currently stored."""

    # -- helpers shared by implementations -------------------------------------------

    @staticmethod
    def _validate_points(points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("points must have shape (n, 2)")
        if points.shape[0] == 0:
            raise ValueError("cannot build an index over an empty point set")
        return points

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(points={self.n_points})"
