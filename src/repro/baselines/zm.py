"""The Z-order model (ZM) learned spatial index [46].

ZM is the existing learned spatial index the paper compares against.  It maps
every point to a Z-value (Morton code) computed from its raw coordinates over
a fixed-resolution grid, sorts the points by Z-value and learns a recursive
model index (RMI [26]) that predicts a point's rank from its Z-value.  The
paper implements a three-level recursive version with 1, sqrt(n/B^2) and
n/B^2 sub-models per level (Section 6.1); this module follows that layout.

Query processing follows the paper:

* point queries predict a block and binary-search the error range using the
  per-block Z-value ranges ("binary search on the Z-values is used to reduce
  the number of block accesses", Section 6.2.2),
* window queries locate the blocks of the bottom-left and top-right corners
  of the window (the minimum and maximum Z-values intersecting it) and scan
  the range in between,
* kNN queries use the paper's expanding-window strategy because ZM has no
  native kNN algorithm (Section 6.2.4).

``ZMConfig(layout="hilbert")`` swaps the Morton order for a **Hilbert block
layout**: points are sorted by Hilbert key before packing, and window
queries scan the window's contiguous key *runs* (see
:mod:`repro.storage.layout`) instead of the corner-to-corner span — the
Hilbert curve's better clustering yields ~40% fewer runs, so spanning
windows touch fewer, more contiguous blocks.  Everything else (the learned
hierarchy, point queries, updates) is curve-agnostic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.baselines.common import expanding_window_knn
from repro.baselines.interface import SpatialIndex
from repro.curves import ZCurve
from repro.curves.hilbert import HilbertCurve
from repro.geometry import Rect, mbr_of_points
from repro.nn import MLPRegressor, TrainingConfig, train_regressor
from repro.storage import AccessStats, BlockStore, PageCache
from repro.storage.layout import window_key_runs

__all__ = ["ZMConfig", "ZMIndex", "ZM_LAYOUTS"]

#: block layouts: ``"z"`` is the paper's ZM (Morton order, window scans the
#: whole corner-to-corner key span); ``"hilbert"`` sorts blocks by Hilbert
#: key and scans windows per contiguous key run instead
ZM_LAYOUTS = ("z", "hilbert")


@dataclass(frozen=True)
class ZMConfig:
    """Build parameters of the ZM baseline."""

    block_capacity: int = 100
    curve_order: int = 16
    hidden_size: int = 16
    training: TrainingConfig = field(default_factory=TrainingConfig)
    seed: int = 0
    #: physical block layout — see :data:`ZM_LAYOUTS`
    layout: str = "z"

    def __post_init__(self) -> None:
        if self.block_capacity < 1:
            raise ValueError("block_capacity must be >= 1")
        if not 1 <= self.curve_order <= 31:
            raise ValueError("curve_order must lie in [1, 31]")
        if self.hidden_size < 1:
            raise ValueError("hidden_size must be >= 1")
        if self.layout not in ZM_LAYOUTS:
            raise ValueError(f"unknown layout {self.layout!r}; available: {ZM_LAYOUTS}")


class _ZMLevelModel:
    """One sub-model of the recursive hierarchy: Z-value -> rank in [0, 1]."""

    def __init__(self, hidden_size: int, rng: np.random.Generator):
        self.model = MLPRegressor(1, (hidden_size,), activation="sigmoid", rng=rng)
        self.err_below = 0
        self.err_above = 0
        self.trained = False

    def predict_rank(self, z_norm: np.ndarray) -> np.ndarray:
        return np.clip(self.model.predict(np.asarray(z_norm, dtype=float).reshape(-1, 1)), 0.0, 1.0)


class ZMIndex(SpatialIndex):
    """The Z-order learned model baseline."""

    name = "ZM"
    # model mispredictions bound the scan range approximately: window
    # answers can miss points, so ZM is not an exact-agreement index
    supports_exact_results = False

    def __init__(
        self,
        config: Optional[ZMConfig] = None,
        stats: Optional[AccessStats] = None,
        cache: Optional[PageCache] = None,
    ):
        super().__init__(stats, cache)
        self.config = config if config is not None else ZMConfig()
        self.store = BlockStore(self.config.block_capacity, self.stats, cache=self.cache)
        self.curve = (
            HilbertCurve(self.config.curve_order)
            if self.config.layout == "hilbert"
            else ZCurve(self.config.curve_order)
        )
        self._n_points = 0
        #: cardinality at build time; the rank -> block mapping and the error
        #: bounds are defined relative to it, so it must not drift with updates
        self._n_built = 0
        self._data_space: Optional[Rect] = None
        self._levels: list[list[_ZMLevelModel]] = []
        self._block_zmin = np.empty(0, dtype=np.int64)
        self._block_zmax = np.empty(0, dtype=np.int64)
        # lazily rebuilt monotone envelopes of the (possibly widened)
        # per-block key ranges, used by the run-scanning window path
        self._envelopes: Optional[tuple[np.ndarray, np.ndarray]] = None
        self._z_max_value = float(self.curve.n_cells - 1)

    # -- Z-value computation --------------------------------------------------------

    def _cell_of(self, xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        space = self._data_space if self._data_space is not None else Rect.unit()
        width = space.width or 1.0
        height = space.height or 1.0
        side = self.curve.side
        cell_x = np.clip(((xs - space.xlo) / width * side).astype(np.int64), 0, side - 1)
        cell_y = np.clip(((ys - space.ylo) / height * side).astype(np.int64), 0, side - 1)
        return cell_x, cell_y

    def z_value(self, x: float, y: float) -> int:
        """Z-value (Morton code) of a point over the fixed-resolution grid."""
        cell_x, cell_y = self._cell_of(np.array([x]), np.array([y]))
        return int(self.curve.encode_many(cell_x, cell_y)[0])

    def _z_values(self, points: np.ndarray) -> np.ndarray:
        cell_x, cell_y = self._cell_of(points[:, 0], points[:, 1])
        return self.curve.encode_many(cell_x, cell_y)

    # -- build -----------------------------------------------------------------------

    def build(self, points: np.ndarray) -> "ZMIndex":
        points = self._validate_points(points)
        self._data_space = mbr_of_points(points)
        if self.cache is not None:
            # a fresh store reuses block ids 0..N: resident pages from the
            # old store would alias them and produce phantom hits
            self.cache.clear()
        self.store = BlockStore(self.config.block_capacity, self.stats, cache=self.cache)

        z_values = self._z_values(points)
        order = np.argsort(z_values, kind="stable")
        sorted_points = points[order]
        sorted_z = z_values[order]
        n = sorted_points.shape[0]
        self._n_points = n
        self._n_built = n

        self.store.pack_points(sorted_points)
        capacity = self.config.block_capacity
        n_blocks = self.store.n_base_blocks
        self._block_zmin = np.array(
            [sorted_z[i * capacity] for i in range(n_blocks)], dtype=np.int64
        )
        self._block_zmax = np.array(
            [sorted_z[min((i + 1) * capacity, n) - 1] for i in range(n_blocks)], dtype=np.int64
        )
        self._envelopes = None

        self._train_hierarchy(sorted_z, n)
        return self

    def _train_hierarchy(self, sorted_z: np.ndarray, n: int) -> None:
        """Train the three-level recursive model (1, sqrt(n/B^2), n/B^2 models)."""
        rng = np.random.default_rng(self.config.seed)
        capacity = self.config.block_capacity
        m2 = max(1, math.ceil(n / (capacity * capacity)))
        m1 = max(1, math.ceil(math.sqrt(m2)))
        level_sizes = [1, m1, m2]

        z_norm = sorted_z / max(self._z_max_value, 1.0)
        ranks = np.arange(n) / max(n - 1, 1)
        true_blocks = np.arange(n) // capacity
        n_blocks = self.store.n_base_blocks

        self._levels = [
            [_ZMLevelModel(self.config.hidden_size, rng) for _ in range(size)]
            for size in level_sizes
        ]

        assignment = np.zeros(n, dtype=np.int64)
        for level, models in enumerate(self._levels):
            next_assignment = np.zeros(n, dtype=np.int64)
            for model_idx, model in enumerate(models):
                member_mask = assignment == model_idx
                members = np.nonzero(member_mask)[0]
                if members.size == 0:
                    continue
                train_regressor(
                    model.model,
                    z_norm[members].reshape(-1, 1),
                    ranks[members],
                    self.config.training,
                )
                model.trained = True
                predictions = model.predict_rank(z_norm[members])
                if level < len(self._levels) - 1:
                    next_size = len(self._levels[level + 1])
                    routed = np.clip(
                        (predictions * next_size).astype(np.int64), 0, next_size - 1
                    )
                    next_assignment[members] = routed
                else:
                    predicted_blocks = np.clip(
                        (predictions * n).astype(np.int64) // capacity, 0, n_blocks - 1
                    )
                    signed = true_blocks[members] - predicted_blocks
                    model.err_above = int(max(signed.max(initial=0), 0))
                    model.err_below = int(max((-signed).max(initial=0), 0))
            assignment = next_assignment

    # -- prediction ---------------------------------------------------------------------

    def _predict_block(self, z: int) -> tuple[int, int, int]:
        """Predicted block position and error bounds for a Z-value."""
        if not self._levels:
            raise RuntimeError("index has not been built yet")
        z_norm = np.array([z / max(self._z_max_value, 1.0)])
        model = self._levels[0][0]
        prediction = float(model.predict_rank(z_norm)[0])
        for level in range(1, len(self._levels)):
            model = self._levels[level][self._route_index(level, prediction)]
            prediction = float(model.predict_rank(z_norm)[0])
        n_blocks = self.store.n_base_blocks
        predicted = int(
            np.clip(int(prediction * self._n_built) // self.config.block_capacity, 0, n_blocks - 1)
        )
        return predicted, model.err_below, model.err_above

    def _route_index(self, level: int, prediction: float) -> int:
        size = len(self._levels[level])
        return int(np.clip(int(prediction * size), 0, size - 1))

    # -- queries ---------------------------------------------------------------------------

    def error_bounds(self) -> tuple[int, int]:
        """Maximum (err_below, err_above) over the leaf-level models (Table 4)."""
        err_below = 0
        err_above = 0
        for model in self._levels[-1]:
            err_below = max(err_below, model.err_below)
            err_above = max(err_above, model.err_above)
        return err_below, err_above

    def contains(self, x: float, y: float) -> bool:
        z = self.z_value(x, y)
        predicted, err_below, err_above = self._predict_block(z)
        begin = self.store.clamp_position(predicted - err_below)
        end = self.store.clamp_position(predicted + err_above)
        position = self._binary_search_block(z, begin, end)
        # scan forward from the located position while blocks may contain z
        for candidate in range(position, end + 1):
            base = self.store.peek(self.store.base_block_id(candidate))
            has_overflow = base.next_id is not None and self.store.peek(base.next_id).is_overflow
            if self._block_zmin[candidate] > z and not has_overflow:
                break
            for block in self.store.iter_chain(candidate):
                if block.contains(x, y):
                    return True
        return False

    def _binary_search_block(self, z: int, begin: int, end: int) -> int:
        """Binary search (counting probes as block accesses) for the first block
        whose maximum Z-value is >= z."""
        lo, hi = begin, end
        while lo < hi:
            mid = (lo + hi) // 2
            self.store.touch_position(mid)
            if self._block_zmax[mid] < z:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _directory_envelopes(self) -> tuple[np.ndarray, np.ndarray]:
        """Monotone conservative bounds over the per-block key ranges.

        Inserts widen individual ``zmin``/``zmax`` entries, which can break
        their sortedness; the running max of ``zmax`` and the suffix min of
        ``zmin`` stay monotone, so binary searches over them find a
        conservative (complete) block range for any key interval.
        """
        if self._envelopes is None:
            cummax = np.maximum.accumulate(self._block_zmax)
            suffmin = np.minimum.accumulate(self._block_zmin[::-1])[::-1]
            self._envelopes = (cummax, suffmin)
        return self._envelopes

    def _window_query_runs(self, window: Rect) -> np.ndarray:
        """Window scan along the window's contiguous curve-key runs.

        Exact for any layout: the runs cover every key the window can
        contain, and every point's key lies inside its block's directory
        range (widened on insert), so the envelope searches cannot skip a
        holding block.  This is what makes the Hilbert layout pay off — its
        corner-to-corner span is wider than Z-order's, but it decomposes
        into far fewer runs.
        """
        space = self._data_space if self._data_space is not None else Rect.unit()
        cummax, suffmin = self._directory_envelopes()
        n_blocks = self.store.n_base_blocks
        collected: list[np.ndarray] = []
        next_unscanned = 0  # blocks are scanned whole: never rescan one
        for key_lo, key_hi in window_key_runs(self.curve, window, space):
            begin = max(int(np.searchsorted(cummax, key_lo, side="left")), next_unscanned)
            end = int(np.searchsorted(suffmin, key_hi, side="right")) - 1
            if begin >= n_blocks or end < begin:
                continue
            next_unscanned = end + 1
            for block in self.store.scan_positions(begin, end):
                points = block.points()
                if points.shape[0] == 0:
                    continue
                mask = window.contains_points(points)
                if mask.any():
                    collected.append(points[mask])
        return np.vstack(collected) if collected else np.empty((0, 2), dtype=float)

    def prefetch_window(self, window: Rect) -> int:
        """Speculatively admit every base block ``window_query(window)`` will
        scan; returns the number of blocks admitted.

        Planning is free of accounting side effects: the block ranges come
        from the learned models (``z`` layout) or the directory envelopes
        (run layouts), neither of which touches the store — so issuing the
        prefetch never inflates logical read counts, it only converts the
        upcoming scan's cold faults (including the stride boundaries
        :meth:`~repro.storage.BlockStore.scan_positions`'s look-ahead never
        covers) into prefetch hits.  A no-op without a prefetch-capable
        cache (only pool clients prefetch).
        """
        store = self.store
        if store.cache is None or not hasattr(store.cache, "prefetch"):
            return 0
        if self.config.layout != "z":
            space = self._data_space if self._data_space is not None else Rect.unit()
            cummax, suffmin = self._directory_envelopes()
            n_blocks = store.n_base_blocks
            admitted = 0
            next_position = 0
            for key_lo, key_hi in window_key_runs(self.curve, window, space):
                begin = max(int(np.searchsorted(cummax, key_lo, side="left")), next_position)
                end = int(np.searchsorted(suffmin, key_hi, side="right")) - 1
                if begin >= n_blocks or end < begin:
                    continue
                next_position = end + 1
                admitted += store.prefetch_positions(begin, end)
            return admitted
        z_low = self.z_value(window.xlo, window.ylo)
        z_high = self.z_value(window.xhi, window.yhi)
        low_pred, low_below, _ = self._predict_block(z_low)
        high_pred, _, high_above = self._predict_block(z_high)
        begin = store.clamp_position(min(low_pred - low_below, high_pred))
        end = store.clamp_position(max(high_pred + high_above, low_pred))
        if begin > end:
            begin, end = end, begin
        return store.prefetch_positions(begin, end)

    def window_query(self, window: Rect) -> np.ndarray:
        if self.config.layout != "z":
            return self._window_query_runs(window)
        z_low = self.z_value(window.xlo, window.ylo)
        z_high = self.z_value(window.xhi, window.yhi)
        low_pred, low_below, _ = self._predict_block(z_low)
        high_pred, _, high_above = self._predict_block(z_high)
        begin = self.store.clamp_position(min(low_pred - low_below, high_pred))
        end = self.store.clamp_position(max(high_pred + high_above, low_pred))
        if begin > end:
            begin, end = end, begin
        collected: list[np.ndarray] = []
        for block in self.store.scan_positions(begin, end):
            points = block.points()
            if points.shape[0] == 0:
                continue
            mask = window.contains_points(points)
            if mask.any():
                collected.append(points[mask])
        return np.vstack(collected) if collected else np.empty((0, 2), dtype=float)

    def knn_query(self, x: float, y: float, k: int) -> np.ndarray:
        space = self._data_space if self._data_space is not None else Rect.unit()
        return expanding_window_knn(
            self.window_query, x, y, k, self._n_points, space
        )

    # -- updates ------------------------------------------------------------------------------

    def insert(self, x: float, y: float) -> None:
        z = self.z_value(x, y)
        predicted, err_below, err_above = self._predict_block(z)
        begin = self.store.clamp_position(predicted - err_below)
        end = self.store.clamp_position(predicted + err_above)
        # place the point where a later point query's binary search will look
        position = self._binary_search_block(z, begin, end)
        target = None
        last_block = None
        for block in self.store.iter_chain(position):
            last_block = block
            if not block.is_full:
                target = block
                break
        if target is None:
            target = self.store.allocate_overflow(last_block.block_id)
        target.append(x, y)
        # the insertion can land in a block whose build-time Z-range does not
        # cover z (deleted-slot reuse, or a binary search clamped to the end
        # of the error range); widen the directory's lower bound so the point
        # query's scan cutoff keeps the block visible for this Z-value
        if self._block_zmin.size and z < self._block_zmin[position]:
            self._block_zmin[position] = z
            self._envelopes = None
        # symmetric upper widening so the run-scanning window path's
        # envelopes keep covering every stored key
        if self._block_zmax.size and z > self._block_zmax[position]:
            self._block_zmax[position] = z
            self._envelopes = None
        self.store.note_write(target.block_id)
        self._n_points += 1

    def delete(self, x: float, y: float) -> bool:
        z = self.z_value(x, y)
        predicted, err_below, err_above = self._predict_block(z)
        begin = self.store.clamp_position(predicted - err_below)
        end = self.store.clamp_position(predicted + err_above)
        for position in range(begin, end + 1):
            for block in self.store.iter_chain(position):
                if block.delete(x, y):
                    self.store.note_write(block.block_id)
                    self._n_points -= 1
                    return True
        return False

    # -- cache plumbing ----------------------------------------------------------------------------

    def attach_cache(self, cache: Optional[PageCache]) -> None:
        super().attach_cache(cache)
        self.store.attach_cache(cache)

    # -- accounting ------------------------------------------------------------------------------

    def size_bytes(self) -> int:
        model_bytes = sum(
            model.model.size_bytes() + 16 for level in self._levels for model in level
        )
        directory_bytes = self._block_zmin.size * 16
        return model_bytes + directory_bytes + self.store.size_bytes()

    @property
    def n_points(self) -> int:
        return self._n_points

    @property
    def n_models(self) -> int:
        return sum(len(level) for level in self._levels)
