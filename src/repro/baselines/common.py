"""Helpers shared by several baseline indices."""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.geometry import Rect, euclidean_many

__all__ = ["quantize_to_grid", "expanding_window_knn"]


def quantize_to_grid(
    points: np.ndarray, side: int, data_space: Rect
) -> tuple[np.ndarray, np.ndarray]:
    """Map points to integer cell coordinates of a ``side x side`` regular grid."""
    points = np.asarray(points, dtype=float)
    width = data_space.width or 1.0
    height = data_space.height or 1.0
    xs = np.clip(((points[:, 0] - data_space.xlo) / width * side).astype(np.int64), 0, side - 1)
    ys = np.clip(((points[:, 1] - data_space.ylo) / height * side).astype(np.int64), 0, side - 1)
    return xs, ys


def expanding_window_knn(
    window_query: Callable[[Rect], np.ndarray],
    x: float,
    y: float,
    k: int,
    n_points: int,
    data_space: Rect,
    max_expansions: int = 40,
) -> np.ndarray:
    """Approximate kNN by repeatedly enlarging a window query (Algorithm 3).

    This is the search-region-expansion strategy the paper applies to indices
    that have no native kNN algorithm (the ZM baseline, Section 6.2.4).  The
    skew correction is omitted (``αx = αy = 1``) because the wrapped index has
    no CDF model; the expansion loop compensates.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n_points = max(n_points, 1)
    side = math.sqrt(k / n_points)
    width = max(side * data_space.width, 1e-9)
    height = max(side * data_space.height, 1e-9)
    diagonal = math.hypot(data_space.width, data_space.height) or 1.0

    best_points = np.empty((0, 2), dtype=float)
    for _ in range(max_expansions):
        region = Rect.from_center(x, y, width, height)
        candidates = window_query(region)
        if candidates.shape[0] >= k:
            distances = euclidean_many((x, y), candidates)
            order = np.argsort(distances, kind="stable")
            best_points = candidates[order[:k]]
            kth = float(distances[order[k - 1]])
            if kth <= math.hypot(width, height) / 2.0:
                return best_points
            width = height = 2.0 * kth
        else:
            if width >= 2 * diagonal and height >= 2 * diagonal:
                # the whole space has been covered; fewer than k points exist
                distances = euclidean_many((x, y), candidates) if candidates.size else np.empty(0)
                order = np.argsort(distances, kind="stable")
                return candidates[order]
            width *= 2.0
            height *= 2.0
    return best_points
