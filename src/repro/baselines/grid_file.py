"""Grid File baseline [33].

The paper uses the static component of a Grid File for moving objects [22]:
a regular ``sqrt(n/B) x sqrt(n/B)`` grid whose cells map to buckets of data
blocks, so each cell holds roughly one block of points under a uniform
distribution (Section 6.1).  A cell-table lookup locates the bucket of a
point in constant time, which makes point queries on uniform data very fast,
but skewed data concentrates many blocks in few cells and inflates the number
of block accesses — the effect the paper reports.

Bucket blocks are pages: each carries a stable id assigned by the shared
:class:`~repro.storage.paged.NodePager`, so every block read is cache-aware
and writes invalidate exactly the dirtied block.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Optional

import numpy as np

from repro.baselines.interface import SpatialIndex
from repro.geometry import Rect, euclidean, mbr_of_points, mindist_point_rect
from repro.storage import AccessStats, PageCache

__all__ = ["GridFile"]


class _GridBlock:
    """One data block of a bucket: a page with a stable id."""

    __slots__ = ("points", "page_id")

    def __init__(self):
        self.points: list[tuple[float, float]] = []
        self.page_id: Optional[int] = None

    def __len__(self) -> int:
        return len(self.points)


class _Bucket:
    """The chain of data blocks of one grid cell."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.blocks: list[_GridBlock] = []

    def add(self, x: float, y: float) -> _GridBlock:
        """Append the point, returning the block it landed in."""
        if not self.blocks or len(self.blocks[-1]) >= self.capacity:
            self.blocks.append(_GridBlock())
        block = self.blocks[-1]
        block.points.append((x, y))
        return block

    @property
    def n_points(self) -> int:
        return sum(len(block) for block in self.blocks)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)


class GridFile(SpatialIndex):
    """Static regular-grid index."""

    name = "Grid"

    def __init__(
        self,
        block_capacity: int = 100,
        stats: Optional[AccessStats] = None,
        grid_side: Optional[int] = None,
        cache: Optional[PageCache] = None,
    ):
        super().__init__(stats, cache)
        if block_capacity < 1:
            raise ValueError("block_capacity must be >= 1")
        self.block_capacity = int(block_capacity)
        self._requested_side = grid_side
        self.grid_side = grid_side if grid_side is not None else 1
        self._buckets: list[list[_Bucket]] = []
        self._data_space = Rect.unit()
        self._n_points = 0

    # -- build ------------------------------------------------------------------------

    def build(self, points: np.ndarray) -> "GridFile":
        points = self._validate_points(points)
        n = points.shape[0]
        self._data_space = mbr_of_points(points)
        if self._requested_side is not None:
            self.grid_side = int(self._requested_side)
        else:
            self.grid_side = max(1, int(math.ceil(math.sqrt(n / self.block_capacity))))
        self._buckets = [
            [_Bucket(self.block_capacity) for _ in range(self.grid_side)]
            for _ in range(self.grid_side)
        ]
        self._n_points = 0
        for x, y in points:
            self._insert_raw(float(x), float(y))
        return self

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        width = self._data_space.width or 1.0
        height = self._data_space.height or 1.0
        cx = int((x - self._data_space.xlo) / width * self.grid_side)
        cy = int((y - self._data_space.ylo) / height * self.grid_side)
        return (
            max(0, min(cx, self.grid_side - 1)),
            max(0, min(cy, self.grid_side - 1)),
        )

    def _cell_rect(self, cx: int, cy: int) -> Rect:
        width = (self._data_space.width or 1.0) / self.grid_side
        height = (self._data_space.height or 1.0) / self.grid_side
        xlo = self._data_space.xlo + cx * width
        ylo = self._data_space.ylo + cy * height
        return Rect(xlo, ylo, xlo + width, ylo + height)

    def _insert_raw(self, x: float, y: float) -> _GridBlock:
        cx, cy = self._cell_of(x, y)
        block = self._buckets[cx][cy].add(x, y)
        self._n_points += 1
        return block

    # -- queries ------------------------------------------------------------------------

    def contains(self, x: float, y: float) -> bool:
        cx, cy = self._cell_of(x, y)
        self.stats.record_node_read()  # cell-table lookup (in-memory directory)
        for block in self._buckets[cx][cy].blocks:
            self.pager.read_block(block)
            for px, py in block.points:
                if px == x and py == y:
                    return True
        return False

    def window_query(self, window: Rect) -> np.ndarray:
        self.stats.record_node_read()
        cx_lo, cy_lo = self._cell_of(window.xlo, window.ylo)
        cx_hi, cy_hi = self._cell_of(window.xhi, window.yhi)
        found: list[tuple[float, float]] = []
        for cx in range(cx_lo, cx_hi + 1):
            for cy in range(cy_lo, cy_hi + 1):
                for block in self._buckets[cx][cy].blocks:
                    self.pager.read_block(block)
                    for px, py in block.points:
                        if window.contains_point(px, py):
                            found.append((px, py))
        return np.asarray(found, dtype=float).reshape(-1, 2)

    def knn_query(self, x: float, y: float, k: int) -> np.ndarray:
        """Exact kNN via best-first search over grid cells (MINDIST ordering)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        self.stats.record_node_read()
        counter = itertools.count()
        heap: list[tuple[float, int, tuple[int, int]]] = []
        for cx in range(self.grid_side):
            for cy in range(self.grid_side):
                if self._buckets[cx][cy].n_points == 0:
                    continue
                distance = mindist_point_rect(x, y, self._cell_rect(cx, cy))
                heapq.heappush(heap, (distance, next(counter), (cx, cy)))

        best: list[tuple[float, float, float]] = []

        def kth() -> float:
            return best[k - 1][0] if len(best) >= k else float("inf")

        while heap and heap[0][0] < kth():
            _, _, (cx, cy) = heapq.heappop(heap)
            for block in self._buckets[cx][cy].blocks:
                self.pager.read_block(block)
                for px, py in block.points:
                    distance = euclidean(x, y, px, py)
                    if distance < kth() or len(best) < k:
                        best.append((distance, px, py))
                        best.sort()
                        del best[k:]
        return np.asarray([(px, py) for _, px, py in best[:k]], dtype=float).reshape(-1, 2)

    # -- updates ------------------------------------------------------------------------

    def insert(self, x: float, y: float) -> None:
        block = self._insert_raw(x, y)
        self.pager.write(block)

    def delete(self, x: float, y: float) -> bool:
        cx, cy = self._cell_of(x, y)
        self.stats.record_node_read()
        for block in self._buckets[cx][cy].blocks:
            self.pager.read_block(block)  # the scan reads the block like contains()
            for i, (px, py) in enumerate(block.points):
                if px == x and py == y:
                    block.points.pop(i)
                    self.pager.write(block)
                    self._n_points -= 1
                    return True
        return False

    # -- accounting ------------------------------------------------------------------------

    def size_bytes(self) -> int:
        directory = self.grid_side * self.grid_side * 16
        blocks = sum(
            bucket.n_blocks for row in self._buckets for bucket in row
        ) * (self.block_capacity * 16 + 32)
        return directory + blocks

    @property
    def n_points(self) -> int:
        return self._n_points

    @property
    def n_blocks(self) -> int:
        return sum(bucket.n_blocks for row in self._buckets for bucket in row)
