"""Baseline spatial indices the paper compares RSMI against (Section 6.1).

* :class:`~repro.baselines.zm.ZMIndex` — the Z-order learned model [46],
  a recursive (RMI-style) learned index over Z-values,
* :class:`~repro.baselines.grid_file.GridFile` — a static regular grid [33],
* :class:`~repro.baselines.kdb_tree.KDBTree` — a K-D-B-tree [39],
* :class:`~repro.baselines.rtree.HRRTree` — the rank-space Hilbert-packed
  R-tree [37, 38] (bulk-loaded, state-of-the-art window query performance),
* :class:`~repro.baselines.rtree.RStarTree` — an R*-tree standing in for the
  revised R*-tree [4] (see DESIGN.md, "Substitutions").

All baselines implement the common
:class:`~repro.baselines.interface.SpatialIndex` interface so the experiment
harness can sweep them uniformly.
"""

from repro.baselines.interface import SpatialIndex
from repro.baselines.zm import ZMConfig, ZMIndex
from repro.baselines.grid_file import GridFile
from repro.baselines.kdb_tree import KDBTree
from repro.baselines.rtree import HRRTree, RStarTree

__all__ = [
    "SpatialIndex",
    "ZMIndex",
    "ZMConfig",
    "GridFile",
    "KDBTree",
    "HRRTree",
    "RStarTree",
]
