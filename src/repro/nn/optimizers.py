"""Gradient-based optimizers (SGD with momentum, Adam)."""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "optimizer_by_name"]


class Optimizer(abc.ABC):
    """Updates a list of parameter arrays in place from matching gradients."""

    name: str = "abstract"

    def __init__(self, learning_rate: float = 0.01):
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        self.learning_rate = float(learning_rate)

    @abc.abstractmethod
    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        """Apply one update step; parameter arrays are modified in place."""

    def reset(self) -> None:
        """Clear any per-parameter state (momentum, moment estimates)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum.

    This matches the paper's training setup ("standard learning procedures,
    stochastic gradient descent", learning rate 0.01).
    """

    name = "sgd"

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: list[np.ndarray] | None = None

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        if len(parameters) != len(gradients):
            raise ValueError("parameters and gradients must have equal length")
        if self.momentum == 0.0:
            for param, grad in zip(parameters, gradients):
                param -= self.learning_rate * grad
            return
        if self._velocity is None or len(self._velocity) != len(parameters):
            self._velocity = [np.zeros_like(p) for p in parameters]
        for velocity, param, grad in zip(self._velocity, parameters, gradients):
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            param += velocity

    def reset(self) -> None:
        self._velocity = None


class Adam(Optimizer):
    """Adam optimizer; converges much faster than plain SGD for the tiny index MLPs."""

    name = "adam"

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must lie in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        if len(parameters) != len(gradients):
            raise ValueError("parameters and gradients must have equal length")
        if self._m is None or len(self._m) != len(parameters):
            self._m = [np.zeros_like(p) for p in parameters]
            self._v = [np.zeros_like(p) for p in parameters]
            self._t = 0
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for m, v, param, grad in zip(self._m, self._v, parameters, gradients):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._t = 0


def optimizer_by_name(name: str, learning_rate: float = 0.01) -> Optimizer:
    """Instantiate an optimizer from its name (``sgd`` or ``adam``)."""
    normalized = name.strip().lower()
    if normalized == "sgd":
        return SGD(learning_rate)
    if normalized == "adam":
        return Adam(learning_rate)
    raise ValueError(f"unknown optimizer: {name!r}")
