"""Minimal feed-forward neural network substrate (NumPy only).

The paper trains its learned index models with PyTorch 1.4 (multilayer
perceptrons with one hidden layer, sigmoid activation, L2 loss, SGD).  No
deep-learning framework is available offline, so this package provides an
equivalent substrate built on NumPy:

* :mod:`repro.nn.activations` — sigmoid / relu / tanh / identity,
* :mod:`repro.nn.layers` — dense layers with Xavier initialisation,
* :mod:`repro.nn.losses` — mean squared error (the paper's L2 loss),
* :mod:`repro.nn.optimizers` — SGD (with momentum) and Adam,
* :mod:`repro.nn.mlp` — the :class:`MLPRegressor` used by RSMI and ZM,
* :mod:`repro.nn.scaler` — min-max scaling of inputs/targets to ``[0, 1]``,
* :mod:`repro.nn.training` — a small training loop with optional early stop.
"""

from repro.nn.activations import Activation, Identity, ReLU, Sigmoid, Tanh, activation_by_name
from repro.nn.layers import DenseLayer
from repro.nn.losses import Loss, MeanSquaredError
from repro.nn.optimizers import SGD, Adam, Optimizer, optimizer_by_name
from repro.nn.mlp import MLPRegressor
from repro.nn.scaler import MinMaxScaler
from repro.nn.training import TrainingConfig, TrainingResult, train_regressor

__all__ = [
    "Activation",
    "Identity",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "activation_by_name",
    "DenseLayer",
    "Loss",
    "MeanSquaredError",
    "Optimizer",
    "SGD",
    "Adam",
    "optimizer_by_name",
    "MLPRegressor",
    "MinMaxScaler",
    "TrainingConfig",
    "TrainingResult",
    "train_regressor",
]
