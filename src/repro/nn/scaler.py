"""Min-max scaling of model inputs and targets.

The paper normalises point coordinates and block ids into the unit range
before training ("For ease of model training, the point coordinates and block
IDs are normalized into the unit range", Section 6.1).
"""

from __future__ import annotations

import numpy as np

__all__ = ["MinMaxScaler"]


class MinMaxScaler:
    """Scale each column of a 2-D array linearly into ``[0, 1]``.

    Columns with zero range map to 0.5 so that constant features stay finite
    and invertible.
    """

    def __init__(self) -> None:
        self.data_min: np.ndarray | None = None
        self.data_max: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.data_min is not None

    def fit(self, data: np.ndarray) -> "MinMaxScaler":
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError("expected a 2-D array")
        if data.shape[0] == 0:
            raise ValueError("cannot fit a scaler on an empty array")
        self.data_min = data.min(axis=0)
        self.data_max = data.max(axis=0)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        self._require_fitted()
        data = np.asarray(data, dtype=float)
        span = self.data_max - self.data_min
        scaled = np.empty_like(data, dtype=float)
        degenerate = span == 0
        safe_span = np.where(degenerate, 1.0, span)
        scaled = (data - self.data_min) / safe_span
        if np.any(degenerate):
            scaled[:, degenerate] = 0.5
        return scaled

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, scaled: np.ndarray) -> np.ndarray:
        self._require_fitted()
        scaled = np.asarray(scaled, dtype=float)
        span = self.data_max - self.data_min
        return scaled * span + self.data_min

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("scaler must be fitted before use")
