"""Loss functions.

The paper minimises the L2 loss between predicted and ground-truth block ids
(Equation 3).  Mean squared error is the per-sample-averaged equivalent and
is what the trainer optimises.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Loss", "MeanSquaredError"]


class Loss(abc.ABC):
    """A differentiable training loss."""

    name: str = "abstract"

    @abc.abstractmethod
    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Scalar loss for a batch."""

    @abc.abstractmethod
    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the loss with respect to the predictions."""


class MeanSquaredError(Loss):
    """Mean squared error, the L2 loss of Equation 3 averaged over the batch."""

    name = "mse"

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        diff = predictions - targets
        return float(np.mean(diff * diff))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        return 2.0 * (predictions - targets)
