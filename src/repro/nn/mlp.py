"""Multilayer perceptron regressor.

Each learned-index sub-model in the paper is an MLP with an input layer, one
hidden layer with sigmoid activation, and a single linear output neuron
(Section 6.1).  :class:`MLPRegressor` implements exactly that shape while
also allowing deeper stacks and other activations for experimentation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.activations import Activation, Identity, activation_by_name
from repro.nn.layers import DenseLayer
from repro.nn.losses import Loss, MeanSquaredError
from repro.nn.optimizers import Optimizer

__all__ = ["MLPRegressor"]


class MLPRegressor:
    """A small feed-forward regressor ``R^d -> R``.

    Parameters
    ----------
    n_inputs:
        Input dimensionality (2 for spatial coordinates, 1 for curve values).
    hidden_sizes:
        Sizes of the hidden layers.  The paper uses a single hidden layer
        whose width is ``(n_inputs + n_output_classes) / 2``.
    activation:
        Hidden-layer activation name, ``"sigmoid"`` by default (paper choice).
    rng:
        NumPy random generator for reproducible weight initialisation.
    """

    def __init__(
        self,
        n_inputs: int,
        hidden_sizes: Sequence[int] = (16,),
        activation: str | Activation = "sigmoid",
        rng: np.random.Generator | None = None,
    ):
        if n_inputs < 1:
            raise ValueError("n_inputs must be positive")
        if not hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        if isinstance(activation, str):
            activation_obj: Activation = activation_by_name(activation)
        else:
            activation_obj = activation
        rng = rng if rng is not None else np.random.default_rng()

        self.n_inputs = int(n_inputs)
        self.hidden_sizes = tuple(int(size) for size in hidden_sizes)
        self.layers: list[DenseLayer] = []
        previous = self.n_inputs
        for size in self.hidden_sizes:
            self.layers.append(
                DenseLayer(previous, size, activation=type(activation_obj)(), rng=rng)
            )
            previous = size
        self.layers.append(DenseLayer(previous, 1, activation=Identity(), rng=rng))

    # -- inference -------------------------------------------------------------

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Predict a value for each row of ``inputs``; returns shape ``(n,)``."""
        outputs = self._forward(np.asarray(inputs, dtype=float), remember=False)
        return outputs[:, 0]

    def predict_one(self, features: Sequence[float]) -> float:
        """Predict a single value from one feature vector."""
        row = np.asarray(features, dtype=float).reshape(1, -1)
        return float(self.predict(row)[0])

    def predict_chunked(self, inputs: np.ndarray, chunk_size: int = 65_536) -> np.ndarray:
        """Batched forward pass over a query matrix, ``chunk_size`` rows at a time.

        Equivalent to :meth:`predict` but bounds the size of the intermediate
        activation matrices, so arbitrarily large query batches (the batched
        query engine routes whole workloads through one call) cannot blow up
        memory.  Each chunk still goes through the network as one matrix.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim == 1:
            inputs = inputs.reshape(1, -1)
        if inputs.shape[0] <= chunk_size:
            return self.predict(inputs)
        outputs = np.empty(inputs.shape[0], dtype=float)
        for start in range(0, inputs.shape[0], chunk_size):
            outputs[start : start + chunk_size] = self.predict(inputs[start : start + chunk_size])
        return outputs

    # -- training primitives -----------------------------------------------------

    def train_batch(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        optimizer: Optimizer,
        loss: Loss | None = None,
    ) -> float:
        """One gradient step on a batch; returns the batch loss before the step."""
        loss = loss if loss is not None else MeanSquaredError()
        inputs = np.asarray(inputs, dtype=float)
        targets = np.asarray(targets, dtype=float).reshape(-1, 1)
        predictions = self._forward(inputs, remember=True)
        batch_loss = loss.value(predictions, targets)
        grad = loss.gradient(predictions, targets)
        self._backward(grad)
        optimizer.step(self.parameters(), self.gradients())
        return batch_loss

    # -- internals --------------------------------------------------------------

    def _forward(self, inputs: np.ndarray, remember: bool) -> np.ndarray:
        if inputs.ndim == 1:
            inputs = inputs.reshape(1, -1)
        current = inputs
        for layer in self.layers:
            current = layer.forward(current, remember=remember)
        return current

    def _backward(self, grad_output: np.ndarray) -> None:
        current = grad_output
        for layer in reversed(self.layers):
            current = layer.backward(current)

    # -- parameter plumbing -------------------------------------------------------

    def parameters(self) -> list[np.ndarray]:
        params: list[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> list[np.ndarray]:
        grads: list[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients())
        return grads

    @property
    def n_parameters(self) -> int:
        """Total number of trainable scalars (used for index-size accounting)."""
        return sum(layer.n_parameters for layer in self.layers)

    def size_bytes(self) -> int:
        """Approximate in-memory size of the parameters (8 bytes per float)."""
        return self.n_parameters * 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = " -> ".join(
            [str(self.n_inputs), *[str(s) for s in self.hidden_sizes], "1"]
        )
        return f"MLPRegressor({shape})"
