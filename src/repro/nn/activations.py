"""Activation functions with forward and derivative evaluation."""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Activation", "Sigmoid", "ReLU", "Tanh", "Identity", "activation_by_name"]


class Activation(abc.ABC):
    """Elementwise activation: ``forward(z)`` and its derivative w.r.t. ``z``."""

    name: str = "abstract"

    @abc.abstractmethod
    def forward(self, z: np.ndarray) -> np.ndarray:
        """Apply the activation elementwise."""

    @abc.abstractmethod
    def derivative(self, z: np.ndarray, activated: np.ndarray) -> np.ndarray:
        """Derivative of the activation evaluated at ``z``.

        ``activated`` is ``forward(z)``, passed in so implementations can
        reuse it instead of recomputing (e.g. sigmoid, tanh).
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class Sigmoid(Activation):
    """Logistic sigmoid, the activation the paper uses for the hidden layer."""

    name = "sigmoid"

    def forward(self, z: np.ndarray) -> np.ndarray:
        # numerically stable sigmoid
        out = np.empty_like(z, dtype=float)
        positive = z >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
        exp_z = np.exp(z[~positive])
        out[~positive] = exp_z / (1.0 + exp_z)
        return out

    def derivative(self, z: np.ndarray, activated: np.ndarray) -> np.ndarray:
        return activated * (1.0 - activated)


class ReLU(Activation):
    """Rectified linear unit."""

    name = "relu"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.maximum(z, 0.0)

    def derivative(self, z: np.ndarray, activated: np.ndarray) -> np.ndarray:
        return (z > 0.0).astype(float)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.tanh(z)

    def derivative(self, z: np.ndarray, activated: np.ndarray) -> np.ndarray:
        return 1.0 - activated * activated


class Identity(Activation):
    """Linear activation used for regression output layers."""

    name = "identity"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return z

    def derivative(self, z: np.ndarray, activated: np.ndarray) -> np.ndarray:
        return np.ones_like(z)


_ACTIVATIONS: dict[str, type[Activation]] = {
    cls.name: cls for cls in (Sigmoid, ReLU, Tanh, Identity)
}


def activation_by_name(name: str) -> Activation:
    """Instantiate an activation from its name (``sigmoid``, ``relu``, ``tanh``, ``identity``)."""
    normalized = name.strip().lower()
    if normalized == "linear":
        normalized = "identity"
    if normalized not in _ACTIVATIONS:
        raise ValueError(f"unknown activation: {name!r}")
    return _ACTIVATIONS[normalized]()
