"""Dense (fully connected) layers."""

from __future__ import annotations

import numpy as np

from repro.nn.activations import Activation, Identity

__all__ = ["DenseLayer"]


class DenseLayer:
    """A fully connected layer ``a = activation(x @ W + b)``.

    Weights use Xavier/Glorot uniform initialisation, which keeps the initial
    activations well-scaled for the small sigmoid networks the learned index
    relies on.
    """

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        activation: Activation | None = None,
        rng: np.random.Generator | None = None,
    ):
        if n_inputs < 1 or n_outputs < 1:
            raise ValueError("layer dimensions must be positive")
        self.n_inputs = int(n_inputs)
        self.n_outputs = int(n_outputs)
        self.activation = activation if activation is not None else Identity()
        rng = rng if rng is not None else np.random.default_rng()
        limit = np.sqrt(6.0 / (n_inputs + n_outputs))
        self.weights = rng.uniform(-limit, limit, size=(n_inputs, n_outputs))
        self.bias = np.zeros(n_outputs)
        # caches populated by forward() and consumed by backward()
        self._last_input: np.ndarray | None = None
        self._last_pre_activation: np.ndarray | None = None
        self._last_output: np.ndarray | None = None
        # gradients populated by backward()
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)

    # -- forward / backward --------------------------------------------------

    def forward(self, inputs: np.ndarray, remember: bool = True) -> np.ndarray:
        """Compute the layer output for a batch ``inputs`` of shape ``(n, n_inputs)``."""
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 2 or inputs.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected input of shape (n, {self.n_inputs}), got {inputs.shape}"
            )
        pre_activation = inputs @ self.weights + self.bias
        output = self.activation.forward(pre_activation)
        if remember:
            self._last_input = inputs
            self._last_pre_activation = pre_activation
            self._last_output = output
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``dL/da`` and return ``dL/dx``; stores weight gradients."""
        if self._last_input is None or self._last_pre_activation is None:
            raise RuntimeError("backward() called before forward()")
        grad_pre = grad_output * self.activation.derivative(
            self._last_pre_activation, self._last_output
        )
        batch = self._last_input.shape[0]
        self.grad_weights = self._last_input.T @ grad_pre / batch
        self.grad_bias = grad_pre.mean(axis=0)
        return grad_pre @ self.weights.T

    # -- parameter access ------------------------------------------------------

    def parameters(self) -> list[np.ndarray]:
        return [self.weights, self.bias]

    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weights, self.grad_bias]

    @property
    def n_parameters(self) -> int:
        return self.weights.size + self.bias.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DenseLayer({self.n_inputs} -> {self.n_outputs}, "
            f"activation={self.activation.name})"
        )
