"""Training loop for the learned-index MLPs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import Loss, MeanSquaredError
from repro.nn.mlp import MLPRegressor
from repro.nn.optimizers import Optimizer, optimizer_by_name

__all__ = ["TrainingConfig", "TrainingResult", "train_regressor"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of one model-training run.

    The paper trains each MLP for 500 epochs with learning rate 0.01 using
    SGD.  We default to Adam with fewer epochs because the pure-NumPy
    substrate is slower per epoch; the paper's settings remain valid inputs.
    """

    epochs: int = 150
    learning_rate: float = 0.01
    optimizer: str = "adam"
    batch_size: int = 0  # 0 means full batch
    shuffle: bool = True
    early_stop_patience: int = 25
    early_stop_min_delta: float = 1e-7
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.batch_size < 0:
            raise ValueError("batch_size must be >= 0 (0 = full batch)")
        if self.early_stop_patience < 0:
            raise ValueError("early_stop_patience must be >= 0")

    def build_optimizer(self) -> Optimizer:
        return optimizer_by_name(self.optimizer, self.learning_rate)


@dataclass
class TrainingResult:
    """Summary of a completed training run."""

    epochs_run: int
    final_loss: float
    loss_history: list[float] = field(default_factory=list)
    stopped_early: bool = False


def train_regressor(
    model: MLPRegressor,
    inputs: np.ndarray,
    targets: np.ndarray,
    config: TrainingConfig | None = None,
    loss: Loss | None = None,
) -> TrainingResult:
    """Train ``model`` to regress ``targets`` from ``inputs``.

    Parameters
    ----------
    model:
        The regressor to train in place.
    inputs:
        Array of shape ``(n, d)`` of (already normalised) features.
    targets:
        Array of shape ``(n,)`` of (already normalised) regression targets.
    config:
        Training hyper-parameters; defaults to :class:`TrainingConfig`.
    loss:
        Training loss; defaults to mean squared error (the paper's L2 loss).
    """
    config = config if config is not None else TrainingConfig()
    loss = loss if loss is not None else MeanSquaredError()
    inputs = np.asarray(inputs, dtype=float)
    targets = np.asarray(targets, dtype=float).reshape(-1)
    if inputs.ndim != 2:
        raise ValueError("inputs must be 2-D")
    if inputs.shape[0] != targets.shape[0]:
        raise ValueError("inputs and targets must have the same number of rows")
    if inputs.shape[0] == 0:
        raise ValueError("cannot train on an empty data set")

    optimizer = config.build_optimizer()
    rng = np.random.default_rng(config.seed)
    n_samples = inputs.shape[0]
    batch_size = config.batch_size if config.batch_size > 0 else n_samples

    history: list[float] = []
    best_loss = float("inf")
    epochs_since_improvement = 0
    stopped_early = False

    for epoch in range(config.epochs):
        if config.shuffle and batch_size < n_samples:
            order = rng.permutation(n_samples)
        else:
            order = np.arange(n_samples)
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, n_samples, batch_size):
            batch_idx = order[start : start + batch_size]
            batch_loss = model.train_batch(
                inputs[batch_idx], targets[batch_idx], optimizer, loss
            )
            epoch_loss += batch_loss
            n_batches += 1
        epoch_loss /= max(n_batches, 1)
        history.append(epoch_loss)

        if epoch_loss < best_loss - config.early_stop_min_delta:
            best_loss = epoch_loss
            epochs_since_improvement = 0
        else:
            epochs_since_improvement += 1
            if (
                config.early_stop_patience
                and epochs_since_improvement >= config.early_stop_patience
            ):
                stopped_early = True
                break

    return TrainingResult(
        epochs_run=len(history),
        final_loss=history[-1],
        loss_history=history,
        stopped_early=stopped_early,
    )
