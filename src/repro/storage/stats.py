"""Access accounting shared by all indices.

Every index in the evaluation reports two cost numbers per query: wall-clock
time and the number of blocks (data blocks plus index nodes) touched.  The
latter is hardware independent, so it is the metric this reproduction tracks
most carefully.  :class:`AccessStats` is a tiny counter object that the paged
storage layer increments whenever an index reads a data block or an internal
node.

With the block-cache layer (:mod:`repro.storage.page_cache`) the counters
split into two views of every read:

* **logical** reads (``block_reads`` / ``node_reads``) count what the query
  *algorithm* touched — the paper's "# block accesses" metric.  They are
  identical with and without a cache, which is what keeps cached runs
  comparable to the paper's numbers.
* **physical** reads (``physical_block_reads`` / ``physical_node_reads``)
  count what actually had to come from (simulated) storage — a cache hit
  bumps the logical counter only.  Without a cache the two views coincide.

``cache_hits`` and ``hit_ratio`` are derived from the difference.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AccessStats"]


@dataclass
class AccessStats:
    """Counters of storage accesses performed since the last reset."""

    block_reads: int = 0
    block_writes: int = 0
    node_reads: int = 0
    #: block reads that missed (or bypassed) the page cache
    physical_block_reads: int = 0
    #: node reads that missed (or bypassed) the page cache
    physical_node_reads: int = 0
    #: speculative block reads issued by cache prefetching: physical I/O with
    #: no logical read behind it (a later demand access of a prefetched page
    #: is a cache hit), so wasted prefetches honestly inflate physical reads
    prefetch_block_reads: int = 0

    def record_block_read(self, count: int = 1, *, cached: bool = False) -> None:
        self.block_reads += count
        if not cached:
            self.physical_block_reads += count

    def record_block_prefetch(self, count: int = 1) -> None:
        self.prefetch_block_reads += count

    def record_block_write(self, count: int = 1) -> None:
        self.block_writes += count

    def record_node_read(self, count: int = 1, *, cached: bool = False) -> None:
        self.node_reads += count
        if not cached:
            self.physical_node_reads += count

    @property
    def total_reads(self) -> int:
        """Logical data-block plus index-node reads (the paper's "# block accesses")."""
        return self.block_reads + self.node_reads

    @property
    def logical_reads(self) -> int:
        """Alias of :attr:`total_reads`, named for the logical/physical split."""
        return self.total_reads

    @property
    def physical_reads(self) -> int:
        """Reads that actually hit storage (post-cache), prefetches included."""
        return self.physical_block_reads + self.physical_node_reads + self.prefetch_block_reads

    @property
    def cache_hits(self) -> int:
        """Logical reads served from the page cache (demand misses excluded;
        a hit on a prefetched page counts — its I/O happened at prefetch)."""
        return self.logical_reads - self.physical_block_reads - self.physical_node_reads

    @property
    def hit_ratio(self) -> float:
        """Fraction of logical reads served from the cache (0.0 when idle)."""
        logical = self.logical_reads
        return self.cache_hits / logical if logical > 0 else 0.0

    def reset(self) -> None:
        self.block_reads = 0
        self.block_writes = 0
        self.node_reads = 0
        self.physical_block_reads = 0
        self.physical_node_reads = 0
        self.prefetch_block_reads = 0

    def snapshot(self) -> "AccessStats":
        """A copy of the current counters (useful for per-query deltas)."""
        return AccessStats(
            self.block_reads,
            self.block_writes,
            self.node_reads,
            self.physical_block_reads,
            self.physical_node_reads,
            self.prefetch_block_reads,
        )

    def delta_since(self, earlier: "AccessStats") -> "AccessStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return AccessStats(
            self.block_reads - earlier.block_reads,
            self.block_writes - earlier.block_writes,
            self.node_reads - earlier.node_reads,
            self.physical_block_reads - earlier.physical_block_reads,
            self.physical_node_reads - earlier.physical_node_reads,
            self.prefetch_block_reads - earlier.prefetch_block_reads,
        )
