"""Access accounting shared by all indices.

Every index in the evaluation reports two cost numbers per query: wall-clock
time and the number of blocks (data blocks plus index nodes) touched.  The
latter is hardware independent, so it is the metric this reproduction tracks
most carefully.  :class:`AccessStats` is a tiny counter object that the paged
storage layer increments whenever an index reads a data block or an internal
node.

With the block-cache layer (:mod:`repro.storage.page_cache`) the counters
split into two views of every read:

* **logical** reads (``block_reads`` / ``node_reads``) count what the query
  *algorithm* touched — the paper's "# block accesses" metric.  They are
  identical with and without a cache, which is what keeps cached runs
  comparable to the paper's numbers.
* **physical** reads (``physical_block_reads`` / ``physical_node_reads``)
  count what actually had to come from (simulated) storage — a cache hit
  bumps the logical counter only.  Without a cache the two views coincide.

``cache_hits`` and ``hit_ratio`` are derived from the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = ["AccessStats", "AccessSummary"]


@dataclass
class AccessStats:
    """Counters of storage accesses performed since the last reset."""

    block_reads: int = 0
    block_writes: int = 0
    node_reads: int = 0
    #: block reads that missed (or bypassed) the page cache
    physical_block_reads: int = 0
    #: node reads that missed (or bypassed) the page cache
    physical_node_reads: int = 0
    #: speculative block reads issued by cache prefetching: physical I/O with
    #: no logical read behind it (a later demand access of a prefetched page
    #: is a cache hit), so wasted prefetches honestly inflate physical reads
    prefetch_block_reads: int = 0

    def record_block_read(self, count: int = 1, *, cached: bool = False) -> None:
        self.block_reads += count
        if not cached:
            self.physical_block_reads += count

    def record_block_prefetch(self, count: int = 1) -> None:
        self.prefetch_block_reads += count

    def record_block_write(self, count: int = 1) -> None:
        self.block_writes += count

    def record_node_read(self, count: int = 1, *, cached: bool = False) -> None:
        self.node_reads += count
        if not cached:
            self.physical_node_reads += count

    @property
    def total_reads(self) -> int:
        """Logical data-block plus index-node reads (the paper's "# block accesses")."""
        return self.block_reads + self.node_reads

    @property
    def logical_reads(self) -> int:
        """Alias of :attr:`total_reads`, named for the logical/physical split."""
        return self.total_reads

    @property
    def physical_reads(self) -> int:
        """Reads that actually hit storage (post-cache), prefetches included."""
        return self.physical_block_reads + self.physical_node_reads + self.prefetch_block_reads

    @property
    def cache_hits(self) -> int:
        """Logical reads served from the page cache (demand misses excluded;
        a hit on a prefetched page counts — its I/O happened at prefetch)."""
        return self.logical_reads - self.physical_block_reads - self.physical_node_reads

    @property
    def hit_ratio(self) -> float:
        """Fraction of logical reads served from the cache (0.0 when idle)."""
        logical = self.logical_reads
        return self.cache_hits / logical if logical > 0 else 0.0

    def reset(self) -> None:
        self.block_reads = 0
        self.block_writes = 0
        self.node_reads = 0
        self.physical_block_reads = 0
        self.physical_node_reads = 0
        self.prefetch_block_reads = 0

    def snapshot(self) -> "AccessStats":
        """A copy of the current counters (useful for per-query deltas)."""
        return AccessStats(
            self.block_reads,
            self.block_writes,
            self.node_reads,
            self.physical_block_reads,
            self.physical_node_reads,
            self.prefetch_block_reads,
        )

    def delta_since(self, earlier: "AccessStats") -> "AccessStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return AccessStats(
            self.block_reads - earlier.block_reads,
            self.block_writes - earlier.block_writes,
            self.node_reads - earlier.node_reads,
            self.physical_block_reads - earlier.physical_block_reads,
            self.physical_node_reads - earlier.physical_node_reads,
            self.prefetch_block_reads - earlier.prefetch_block_reads,
        )

    def summary(self, per_shard: Mapping[int, int] | None = None) -> "AccessSummary":
        """The counters as one immutable :class:`AccessSummary`."""
        return AccessSummary(
            logical_reads=self.total_reads,
            physical_reads=self.physical_reads,
            per_shard_logical_reads=dict(per_shard) if per_shard is not None else None,
        )


@dataclass(frozen=True)
class AccessSummary:
    """One batch's (or interval's) read accounting, in one shape.

    ``BatchResult``, ``QueryResult``, ``ScenarioSnapshot`` and the sharded
    engines historically exposed the same three numbers under different
    names (``total_block_accesses`` vs ``block_reads`` vs per-shard dicts).
    This is the unified record: logical reads (the paper's "# block
    accesses"), physical (post-cache) reads, and — for sharded engines —
    the logical reads attributed per shard id.  The old attribute names
    survive as deprecated properties on their original carriers.

    Fields are ``None`` when the underlying index exposes no
    :class:`AccessStats` (the carrier previously reported ``None`` there
    too, and callers rely on that to mean "unaccounted").
    """

    #: logical block/node reads (identical with and without a cache)
    logical_reads: int | None = None
    #: reads that actually hit (simulated) storage, prefetches included
    physical_reads: int | None = None
    #: logical reads attributed per shard id (sharded engines only)
    per_shard_logical_reads: Mapping[int, int] | None = None

    @property
    def cache_hit_ratio(self) -> float | None:
        """Fraction of logical reads served by the cache (None if unknown)."""
        if self.logical_reads is None or self.physical_reads is None:
            return None
        if self.logical_reads <= 0:
            return 0.0
        return 1.0 - self.physical_reads / self.logical_reads

    def merged(self, other: "AccessSummary") -> "AccessSummary":
        """Element-wise sum; ``None`` on either side stays ``None``."""

        def _add(a, b):
            return None if a is None or b is None else a + b

        per_shard = None
        if self.per_shard_logical_reads is not None or other.per_shard_logical_reads is not None:
            per_shard = dict(self.per_shard_logical_reads or {})
            for shard_id, reads in (other.per_shard_logical_reads or {}).items():
                per_shard[shard_id] = per_shard.get(shard_id, 0) + reads
        return AccessSummary(
            logical_reads=_add(self.logical_reads, other.logical_reads),
            physical_reads=_add(self.physical_reads, other.physical_reads),
            per_shard_logical_reads=per_shard,
        )

    def as_dict(self) -> dict:
        return {
            "logical_reads": self.logical_reads,
            "physical_reads": self.physical_reads,
            "per_shard_logical_reads": (
                dict(self.per_shard_logical_reads)
                if self.per_shard_logical_reads is not None
                else None
            ),
        }
