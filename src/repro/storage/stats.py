"""Access accounting shared by all indices.

Every index in the evaluation reports two cost numbers per query: wall-clock
time and the number of blocks (data blocks plus index nodes) touched.  The
latter is hardware independent, so it is the metric this reproduction tracks
most carefully.  :class:`AccessStats` is a tiny counter object that indices
increment whenever they read a data block or an internal node.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AccessStats"]


@dataclass
class AccessStats:
    """Counters of storage accesses performed since the last reset."""

    block_reads: int = 0
    block_writes: int = 0
    node_reads: int = 0

    def record_block_read(self, count: int = 1) -> None:
        self.block_reads += count

    def record_block_write(self, count: int = 1) -> None:
        self.block_writes += count

    def record_node_read(self, count: int = 1) -> None:
        self.node_reads += count

    @property
    def total_reads(self) -> int:
        """Data-block reads plus index-node reads (the paper's "# block accesses")."""
        return self.block_reads + self.node_reads

    def reset(self) -> None:
        self.block_reads = 0
        self.block_writes = 0
        self.node_reads = 0

    def snapshot(self) -> "AccessStats":
        """A copy of the current counters (useful for per-query deltas)."""
        return AccessStats(self.block_reads, self.block_writes, self.node_reads)

    def delta_since(self, earlier: "AccessStats") -> "AccessStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return AccessStats(
            self.block_reads - earlier.block_reads,
            self.block_writes - earlier.block_writes,
            self.node_reads - earlier.node_reads,
        )
