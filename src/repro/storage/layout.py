"""Curve-aware physical layout: Hilbert keys and window run decomposition.

The paper's cost metric is blocks touched per query, and for a linear block
layout that number is decided by how well the ordering clusters co-accessed
points.  This module provides the layout primitives shared by the indices,
the sharded engine and the batch engines:

* :func:`curve_keys` — vectorised curve keys (Hilbert by default) of raw
  points over a data space, used to sort points before
  :meth:`~repro.storage.block_store.BlockStore.pack_points` and to group a
  batch's queries by their predicted block neighbourhood.
* :func:`window_key_runs` — the contiguous key intervals a window decomposes
  into.  A rectangular window touches the curve in several disjoint
  segments; scanning per segment instead of the whole ``[min, max]`` key
  span is what makes a Hilbert layout pay off (the Hilbert curve's span over
  a window is *wider* than Z-order's, but it decomposes into ~40% fewer
  contiguous runs — measured by ``bench_block_cache.py``).

Run decomposition works at a configurable **coarse order**: because both
shipped curves are recursively self-similar, the fine keys inside one coarse
cell ``c`` of order ``L`` occupy exactly the interval
``[c * 4^(order-L), (c+1) * 4^(order-L))``.  Enumerating window cells at the
coarse order (at most ``2^L × 2^L`` of them) therefore yields *exact*
covering runs on the fine key grid without enumerating billions of fine
cells.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.curves import SpaceFillingCurve, curve_by_name
from repro.geometry import Rect

__all__ = [
    "DEFAULT_LAYOUT_ORDER",
    "DEFAULT_RUN_ORDER",
    "curve_cells",
    "curve_keys",
    "hilbert_sort_order",
    "window_key_runs",
    "count_key_runs",
]

#: curve order used when sorting points for a block layout (2^10 cells/axis
#: distinguishes ~1M positions per dimension — finer than any block grid here)
DEFAULT_LAYOUT_ORDER = 10

#: coarse order of :func:`window_key_runs`: a 128x128 coarse grid keeps the
#: enumeration cheap (<= 16384 cells for a full-space window) while splitting
#: windows finely enough that runs track the window shape
DEFAULT_RUN_ORDER = 7


def curve_cells(points: np.ndarray, data_space: Rect, side: int) -> tuple[np.ndarray, np.ndarray]:
    """Clamped integer cell coordinates of ``points`` on a ``side × side`` grid."""
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    width = data_space.width or 1.0
    height = data_space.height or 1.0
    cx = np.floor((points[:, 0] - data_space.xlo) / width * side).astype(np.int64)
    cy = np.floor((points[:, 1] - data_space.ylo) / height * side).astype(np.int64)
    np.clip(cx, 0, side - 1, out=cx)
    np.clip(cy, 0, side - 1, out=cy)
    return cx, cy


def _as_curve(curve: Union[SpaceFillingCurve, str], order: int) -> SpaceFillingCurve:
    if isinstance(curve, str):
        return curve_by_name(curve, order)
    return curve


def curve_keys(
    points: np.ndarray,
    data_space: Optional[Rect] = None,
    curve: Union[SpaceFillingCurve, str] = "hilbert",
    order: int = DEFAULT_LAYOUT_ORDER,
) -> np.ndarray:
    """Curve key of every point over ``data_space`` (int64, vectorised).

    ``data_space`` of None uses the points' own bounding box, so a stand-alone
    sort (e.g. batch reordering) needs no extra context.
    """
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    if data_space is None:
        if points.shape[0] == 0:
            data_space = Rect.unit()
        else:
            lo = points.min(axis=0)
            hi = points.max(axis=0)
            data_space = Rect(float(lo[0]), float(lo[1]), float(hi[0]), float(hi[1]))
    curve = _as_curve(curve, order)
    cx, cy = curve_cells(points, data_space, curve.side)
    return curve.encode_many(cx, cy)


def hilbert_sort_order(
    points: np.ndarray,
    data_space: Optional[Rect] = None,
    order: int = DEFAULT_LAYOUT_ORDER,
) -> np.ndarray:
    """Stable permutation sorting ``points`` into Hilbert-key order."""
    return np.argsort(curve_keys(points, data_space, "hilbert", order), kind="stable")


def window_key_runs(
    curve: SpaceFillingCurve,
    window: Rect,
    data_space: Rect,
    coarse_order: int = DEFAULT_RUN_ORDER,
) -> list[tuple[int, int]]:
    """Contiguous inclusive key intervals of ``curve`` covering ``window``.

    The returned runs partition-cover every fine cell whose area intersects
    the window: any point inside the window has a curve key inside exactly
    one run.  Runs are ascending and disjoint, merged maximally at the
    coarse granularity.
    """
    coarse_order = max(1, min(coarse_order, curve.order))
    coarse = _as_curve(curve.name, coarse_order)
    side = coarse.side
    corners = np.array(
        [[window.xlo, window.ylo], [window.xhi, window.yhi]], dtype=float
    )
    cx, cy = curve_cells(corners, data_space, side)
    cx0, cx1 = int(cx[0]), int(cx[1])
    cy0, cy1 = int(cy[0]), int(cy[1])
    cxs, cys = np.meshgrid(
        np.arange(cx0, cx1 + 1, dtype=np.int64),
        np.arange(cy0, cy1 + 1, dtype=np.int64),
    )
    codes = np.sort(coarse.encode_many(cxs.ravel(), cys.ravel()))
    breaks = np.nonzero(np.diff(codes) > 1)[0]
    starts = codes[np.concatenate(([0], breaks + 1))]
    ends = codes[np.concatenate((breaks, [codes.size - 1]))]
    # self-similarity: coarse cell c holds exactly the fine keys
    # [c << shift, (c + 1) << shift) — scale the coarse runs up
    shift = 2 * (curve.order - coarse_order)
    lo = starts << shift
    hi = ((ends + 1) << shift) - 1
    return list(zip(lo.tolist(), hi.tolist()))


def count_key_runs(sorted_keys: np.ndarray) -> int:
    """Number of maximal consecutive-integer runs in ascending ``sorted_keys``."""
    sorted_keys = np.asarray(sorted_keys, dtype=np.int64)
    if sorted_keys.size == 0:
        return 0
    return 1 + int(np.sum(np.diff(sorted_keys) > 1))
