"""A fixed-record block file: the disk tier under :class:`BlockStore`.

Every :class:`~repro.storage.block.Block` serialises into one fixed-size
record (header, chain links, deletion bitmap, point slots, CRC-32), so a
block id maps to a file offset with one multiplication — the same layout a
paged heap file uses.  The file carries a small header recording the magic,
the format version and the block capacity; records are read back with their
checksum verified, so a torn write (a crash mid-record) is detected as
:class:`BlockFileError` instead of silently yielding garbage points.

The :class:`~repro.storage.block_store.BlockStore` uses this as a
write-through mirror (see :meth:`BlockStore.attach_disk`): every block
mutation is serialised to the file, and a read that misses the
:class:`~repro.storage.page_cache.PageCache` deserialises the block back
from the file — physical reads become actual I/O, which is what makes the
crash-recovery fuzz harness load-bearing (a stale link or a bad
serialisation surfaces as oracle disagreement, not just a wasted write).
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.storage.block import Block

__all__ = ["BlockFile", "BlockFileError"]

_MAGIC = b"RSMIBLKF"
_VERSION = 1
#: file header: magic, version (u32), block capacity (u32), 16 reserved bytes
_HEADER = struct.Struct("<8sII16x")
#: per-record fixed prefix: flags (u8), slot count (u32), prev id, next id
#: (i64 each, -1 encodes "no link")
_RECORD_PREFIX = struct.Struct("<BIqq")
_CRC = struct.Struct("<I")


class BlockFileError(RuntimeError):
    """A block file (or one of its records) cannot be read back."""


class BlockFile:
    """Fixed-size block records in one file, addressed by block id.

    Parameters
    ----------
    path:
        File to create or open.  An existing file must carry a matching
        header (same magic/version/capacity).
    capacity:
        Points per block; fixes the record size.  Required when creating,
        validated against the header when opening an existing file.
    """

    def __init__(self, path: str | Path, capacity: int):
        if capacity < 1:
            raise ValueError("block capacity must be >= 1")
        self.path = Path(path)
        self.capacity = int(capacity)
        self.record_size = (
            _RECORD_PREFIX.size + self.capacity + 16 * self.capacity + _CRC.size
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        exists = self.path.exists() and self.path.stat().st_size > 0
        # unbuffered so a simulated kill cannot lose user-space buffered writes
        self._handle = open(self.path, "r+b" if exists else "w+b", buffering=0)
        if exists:
            self._check_header()
        else:
            self._handle.write(_HEADER.pack(_MAGIC, _VERSION, self.capacity))

    @classmethod
    def open_existing(cls, path: str | Path) -> "BlockFile":
        """Open an existing block file, reading the capacity from its header."""
        path = Path(path)
        if not path.exists():
            raise BlockFileError(f"no such block file: {path}")
        with path.open("rb") as handle:
            raw = handle.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise BlockFileError(f"{path} is too short to hold a block-file header")
        magic, version, capacity = _HEADER.unpack(raw)
        if magic != _MAGIC:
            raise BlockFileError(f"{path} is not a repro block file")
        if version != _VERSION:
            raise BlockFileError(
                f"{path} uses block-file format v{version}, this library reads v{_VERSION}"
            )
        return cls(path, capacity)

    # -- geometry -----------------------------------------------------------------

    def _offset(self, block_id: int) -> int:
        if block_id < 0:
            raise BlockFileError(f"invalid block id {block_id}")
        return _HEADER.size + block_id * self.record_size

    @property
    def n_blocks(self) -> int:
        """Number of whole records the file currently holds."""
        size = self.path.stat().st_size - _HEADER.size
        return max(0, size // self.record_size)

    def _check_header(self) -> None:
        self._handle.seek(0)
        raw = self._handle.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise BlockFileError(f"{self.path} is too short to hold a block-file header")
        magic, version, capacity = _HEADER.unpack(raw)
        if magic != _MAGIC:
            raise BlockFileError(f"{self.path} is not a repro block file")
        if version != _VERSION:
            raise BlockFileError(
                f"{self.path} uses block-file format v{version}, "
                f"this library reads v{_VERSION}"
            )
        if capacity != self.capacity:
            raise BlockFileError(
                f"{self.path} holds blocks of capacity {capacity}, expected {self.capacity}"
            )

    # -- records ------------------------------------------------------------------

    def write_block(self, block: Block) -> None:
        """Serialise one block into its record slot (write-through)."""
        if block.capacity != self.capacity:
            raise BlockFileError(
                f"block {block.block_id} has capacity {block.capacity}, "
                f"file records hold {self.capacity}"
            )
        flags = 1 if block.is_overflow else 0
        prev_id = -1 if block.prev_id is None else block.prev_id
        next_id = -1 if block.next_id is None else block.next_id
        # same-package serialisation of the block's slot arrays
        payload = (
            _RECORD_PREFIX.pack(flags, block.slot_count, prev_id, next_id)
            + block._deleted.astype(np.uint8).tobytes()
            + np.ascontiguousarray(block._coords, dtype="<f8").tobytes()
        )
        record = payload + _CRC.pack(zlib.crc32(payload))
        self._handle.seek(self._offset(block.block_id))
        self._handle.write(record)

    def read_block(self, block_id: int) -> Block:
        """Deserialise the record for ``block_id``, verifying its checksum."""
        self._handle.seek(self._offset(block_id))
        record = self._handle.read(self.record_size)
        if len(record) < self.record_size:
            raise BlockFileError(
                f"{self.path}: record for block {block_id} is truncated "
                f"({len(record)}/{self.record_size} bytes)"
            )
        payload, crc_raw = record[: -_CRC.size], record[-_CRC.size :]
        (expected,) = _CRC.unpack(crc_raw)
        if zlib.crc32(payload) != expected:
            raise BlockFileError(
                f"{self.path}: record for block {block_id} fails its checksum "
                f"(torn write or corruption)"
            )
        flags, count, prev_id, next_id = _RECORD_PREFIX.unpack_from(payload)
        block = Block(block_id, self.capacity, is_overflow=bool(flags & 1))
        deleted = np.frombuffer(
            payload, dtype=np.uint8, count=self.capacity, offset=_RECORD_PREFIX.size
        )
        coords = np.frombuffer(
            payload,
            dtype="<f8",
            count=2 * self.capacity,
            offset=_RECORD_PREFIX.size + self.capacity,
        ).reshape(self.capacity, 2)
        block._coords[:] = coords
        block._deleted[:] = deleted.astype(bool)
        block._count = int(count)
        block.prev_id = None if prev_id < 0 else int(prev_id)
        block.next_id = None if next_id < 0 else int(next_id)
        return block

    # -- lifecycle ----------------------------------------------------------------

    def sync(self) -> None:
        """Flush the file to stable storage (``fsync``)."""
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "BlockFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockFile({str(self.path)!r}, capacity={self.capacity}, "
            f"blocks={self.n_blocks})"
        )
