"""The paged-access façade for node-based index structures.

:class:`~repro.storage.block_store.BlockStore` already gives the learned
indices (RSMI, ZM) one seam where every data-block read is recorded — and,
with a :class:`~repro.storage.page_cache.PageCache` attached, where hits and
misses are distinguished.  The tree baselines (Grid file, K-D-B-tree, HRR,
RR*) keep their nodes as Python objects instead of numbered blocks, so they
used to bump the :class:`~repro.storage.stats.AccessStats` counters inline
and no cache could sit in front of them.

:class:`NodePager` closes that gap: it assigns every node a **stable page
id** on first touch (stored on the node itself, so ids survive arbitrary
tree surgery), and routes every read through the same cache-aware
accounting as ``BlockStore.read``:

* :meth:`read_block` / :meth:`read_node` — a leaf (data page) or internal
  node is touched by a query; logical counters always move, physical
  counters only on a cache miss.
* :meth:`write` — a page is dirtied (insert/delete landed in it); records
  the write and invalidates the cached page.
* :meth:`retire` — a page ceases to exist (node split replaced it); its
  cache entry is dropped so the id can never produce a phantom hit.

Page-id keys are namespaced (``("n", id)``) so a pager can share one
:class:`PageCache` with a ``BlockStore`` (``("b", id)``) without collisions.
"""

from __future__ import annotations

from typing import Optional

from repro.storage.page_cache import PageCache
from repro.storage.stats import AccessStats

__all__ = ["NodePager"]


class NodePager:
    """Stable page ids plus cache-aware access accounting for index nodes."""

    def __init__(self, stats: Optional[AccessStats] = None, cache: Optional[PageCache] = None):
        self.stats = stats if stats is not None else AccessStats()
        self.cache = cache
        self._next_id = 0

    # -- page identity -----------------------------------------------------------

    def page_id(self, node) -> int:
        """The node's stable page id, assigned on first touch."""
        pid = getattr(node, "page_id", None)
        if pid is None:
            pid = self._next_id
            self._next_id += 1
            node.page_id = pid
        return pid

    # -- reads -------------------------------------------------------------------

    def read_block(self, node) -> None:
        """Record a data-block (leaf page) read, cache-aware."""
        self.stats.record_block_read(cached=self._touch(node))

    def read_node(self, node) -> None:
        """Record an internal-node page read, cache-aware."""
        self.stats.record_node_read(cached=self._touch(node))

    def _touch(self, node) -> bool:
        if self.cache is None:
            return False
        return self.cache.access(("n", self.page_id(node)))

    # -- writes & lifecycle --------------------------------------------------------

    def write(self, node) -> None:
        """Record a write to the node's page and invalidate its cached copy."""
        self.stats.record_block_write()
        if self.cache is not None:
            self.cache.invalidate(("n", self.page_id(node)))

    def retire(self, node) -> None:
        """Drop a replaced/deleted page from the cache (splits, merges)."""
        if self.cache is None:
            return
        pid = getattr(node, "page_id", None)
        if pid is not None:
            self.cache.invalidate(("n", pid))

    # -- cache management -----------------------------------------------------------

    def attach_cache(self, cache: Optional[PageCache]) -> None:
        """Install (or remove, with None) the page cache reads go through."""
        self.cache = cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = "uncached" if self.cache is None else repr(self.cache)
        return f"NodePager(pages={self._next_id}, {backing})"
