"""A block/page cache with pluggable replacement policies.

The paper's cost metric counts every block an algorithm touches; a serving
deployment puts a buffer pool in front of the storage so repeated touches of
the same block cost one physical read.  :class:`PageCache` simulates that
buffer pool: it tracks *which* pages are resident (the page contents stay in
the owning structure — this is an accounting cache, exactly like the rest of
the simulated storage layer) and decides evictions under a fixed capacity.

Two classic replacement policies are provided:

* ``"lru"`` — strict least-recently-used via an ordered map,
* ``"clock"`` — the second-chance approximation of LRU (one reference bit
  per resident page, a sweeping hand), which is what real buffer pools tend
  to ship because it avoids moving list nodes on every hit.

Writes are handled by **invalidation**: when a page is written (a point
lands in a block, a tree node splits, an overflow block grows a chain) the
owner calls :meth:`invalidate` and the next read is a physical miss again.
This is deliberately conservative — a write-back pool could keep the dirty
page resident — so the measured hit ratios are lower bounds.

Cache *state* is never persisted: pickling a structure that holds a
``PageCache`` (see :mod:`repro.core.persistence`) keeps the configuration
but drops the resident set and counters, so a freshly loaded index always
starts cold.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

__all__ = ["PageCache", "PAGE_CACHE_POLICIES", "make_page_cache"]

#: recognised replacement policies
PAGE_CACHE_POLICIES = ("lru", "clock")


class PageCache:
    """A fixed-capacity set of resident page keys with hit/miss accounting.

    Parameters
    ----------
    capacity:
        Maximum number of resident pages (>= 1).
    policy:
        ``"lru"`` or ``"clock"``.
    """

    def __init__(self, capacity: int, policy: str = "lru"):
        if capacity < 1:
            raise ValueError("page cache capacity must be >= 1")
        if policy not in PAGE_CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {policy!r}; available: {PAGE_CACHE_POLICIES}"
            )
        self.capacity = int(capacity)
        self.policy = policy
        self._reset_state()

    def _reset_state(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        # lru: key -> None in recency order (oldest first)
        self._lru: OrderedDict[Hashable, None] = OrderedDict()
        # clock: fixed ring of slots (None = free), key -> slot, per-slot ref bit
        self._slots: list[Optional[Hashable]] = []
        self._slot_of: dict[Hashable, int] = {}
        self._ref: list[bool] = []
        self._hand = 0
        # slots tombstoned by invalidate(), reused before any sweep evicts a
        # live page — the ring holds a None exactly when this list is non-empty
        self._free: list[int] = []

    # -- the one hot-path entry point ------------------------------------------

    def access(self, key: Hashable) -> bool:
        """Touch ``key``: returns True on a hit; admits the page on a miss."""
        if self.policy == "lru":
            if key in self._lru:
                self._lru.move_to_end(key)
                self.hits += 1
                return True
            self.misses += 1
            self._lru[key] = None
            if len(self._lru) > self.capacity:
                self._lru.popitem(last=False)
                self.evictions += 1
            return False
        # clock
        slot = self._slot_of.get(key)
        if slot is not None:
            self._ref[slot] = True
            self.hits += 1
            return True
        self.misses += 1
        self._admit_clock(key)
        return False

    def _admit_clock(self, key: Hashable) -> None:
        # pages are admitted with the reference bit CLEAR: only a re-reference
        # earns the second chance, which keeps one-touch scans evictable
        if self._free:
            # a slot tombstoned by invalidate(): reuse it instead of sweeping,
            # so a write burst can never push live pages out of an
            # under-occupied ring (the sweep used to stop at whichever free
            # slot the hand happened to reach, evicting hot pages in between)
            slot = self._free.pop()
            self._slots[slot] = key
            self._ref[slot] = False
            self._slot_of[key] = slot
            return
        if len(self._slots) < self.capacity:
            self._slot_of[key] = len(self._slots)
            self._slots.append(key)
            self._ref.append(False)
            return
        # ring full and no free slots: sweep for a victim
        while True:
            slot = self._hand
            self._hand = (self._hand + 1) % self.capacity
            victim = self._slots[slot]
            if victim is None:  # pragma: no cover - tombstones live on _free
                break
            if self._ref[slot]:
                self._ref[slot] = False
                continue
            del self._slot_of[victim]
            self.evictions += 1
            break
        self._slots[slot] = key
        self._ref[slot] = False
        self._slot_of[key] = slot

    # -- maintenance ------------------------------------------------------------

    def contains(self, key: Hashable) -> bool:
        """True when ``key`` is resident (no recency/ref-bit side effects)."""
        if self.policy == "lru":
            return key in self._lru
        return key in self._slot_of

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` from the resident set (dirty page); True when it was resident."""
        if self.policy == "lru":
            if key not in self._lru:
                return False
            del self._lru[key]
        else:
            slot = self._slot_of.pop(key, None)
            if slot is None:
                return False
            self._slots[slot] = None
            self._ref[slot] = False
            self._free.append(slot)
        self.invalidations += 1
        return True

    def clear(self) -> None:
        """Drop every resident page (counters are kept)."""
        hits, misses, evictions, invalidations = (
            self.hits, self.misses, self.evictions, self.invalidations,
        )
        self._reset_state()
        self.hits, self.misses = hits, misses
        self.evictions, self.invalidations = evictions, invalidations

    def resize(self, capacity: int) -> None:
        """Change the capacity in place, evicting down when shrinking.

        Growing never disturbs the resident set; shrinking evicts the
        replacement policy's coldest pages until the new capacity holds.
        The rebalancing controller uses this to move cache budget toward
        hot shards without losing the warm working set.
        """
        if capacity < 1:
            raise ValueError("page cache capacity must be >= 1")
        capacity = int(capacity)
        if capacity == self.capacity:
            return
        if self.policy == "lru":
            self.capacity = capacity
            while len(self._lru) > capacity:
                self._lru.popitem(last=False)
                self.evictions += 1
            return
        # clock: rebuild the ring at the new size, re-admitting survivors in
        # slot order (pages past the new capacity are evicted)
        resident = [key for key in self._slots if key is not None]
        survivors = resident[:capacity]
        counters = (self.hits, self.misses,
                    self.evictions + len(resident) - len(survivors),
                    self.invalidations)
        self.capacity = capacity
        self._reset_state()
        self.hits, self.misses, self.evictions, self.invalidations = counters
        for key in survivors:
            self._admit_clock(key)

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters (resident set is kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        if self.policy == "lru":
            return len(self._lru)
        return len(self._slot_of)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses that were hits (0.0 before any access)."""
        total = self.accesses
        return self.hits / total if total > 0 else 0.0

    def metrics(self) -> dict:
        """Counters as a plain dict (for reports and JSON exports)."""
        return {
            "capacity": self.capacity,
            "policy": self.policy,
            "resident": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_ratio": self.hit_ratio,
        }

    # -- persistence: configuration only, never cache state ----------------------

    def __getstate__(self) -> dict:
        return {"capacity": self.capacity, "policy": self.policy}

    def __setstate__(self, state: dict) -> None:
        self.capacity = state["capacity"]
        self.policy = state["policy"]
        self._reset_state()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PageCache(capacity={self.capacity}, policy={self.policy!r}, "
            f"resident={len(self)}, hit_ratio={self.hit_ratio:.2f})"
        )


def make_page_cache(capacity: Optional[int], policy: str = "lru") -> Optional[PageCache]:
    """A :class:`PageCache` for ``capacity`` blocks, or None when disabled.

    ``capacity`` of ``None`` or ``0`` means "no cache", which lets callers
    thread an optional CLI/config value straight through.
    """
    if capacity is None or capacity == 0:
        return None
    return PageCache(capacity, policy)
