"""Block store: global block ids, curve-ordered base blocks, overflow chains."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.storage.block import Block
from repro.storage.block_file import BlockFile
from repro.storage.page_cache import PageCache
from repro.storage.stats import AccessStats

__all__ = ["BlockStore"]

#: base blocks prefetched ahead of the scan cursor per batch during
#: :meth:`BlockStore.scan_positions` (small, so a run longer than the pool
#: never evicts its own not-yet-scanned prefetches)
PREFETCH_BATCH = 16


class BlockStore:
    """A collection of fixed-capacity blocks simulating external storage.

    Two kinds of blocks exist:

    * **base blocks** are created during the initial bulk build.  They are
      numbered consecutively by their *position* in curve order; a learned
      model predicts such positions.
    * **overflow blocks** are created by insertions when a base block is
      full.  They are linked after their base block (paper Section 5) and do
      not shift the positions of base blocks, so the learned error bounds
      remain valid.

    All reads go through :meth:`read` (or the internal :meth:`_touch`),
    which feeds the shared :class:`~repro.storage.stats.AccessStats`
    counters used by the experiments.  When a
    :class:`~repro.storage.page_cache.PageCache` is attached, reads consult
    it first: hits move only the logical counters, misses also the physical
    ones, and writes invalidate the dirtied block's cache entry.

    When a :class:`~repro.storage.block_file.BlockFile` is attached (see
    :meth:`attach_disk`) the store becomes write-through: every block
    mutation is serialised to the file, and a read that misses the cache
    *re-deserialises the block from the file*, replacing the in-memory
    object — so physical reads are actual I/O and the file is load-bearing,
    not just a backup.
    """

    def __init__(
        self,
        capacity: int,
        stats: Optional[AccessStats] = None,
        cache: Optional[PageCache] = None,
    ):
        if capacity < 1:
            raise ValueError("block capacity must be >= 1")
        self.capacity = int(capacity)
        self.stats = stats if stats is not None else AccessStats()
        self.cache = cache
        self._disk: Optional[BlockFile] = None
        self._blocks: list[Block] = []
        #: position in curve order -> block id of the base block
        self._base_order: list[int] = []
        self._n_overflow = 0

    # -- introspection -------------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        """Total number of blocks (base + overflow)."""
        return len(self._blocks)

    @property
    def n_base_blocks(self) -> int:
        return len(self._base_order)

    @property
    def n_overflow_blocks(self) -> int:
        return self._n_overflow

    @property
    def n_points(self) -> int:
        """Total number of live points across all blocks."""
        return sum(len(block) for block in self._blocks)

    def size_bytes(self) -> int:
        """Approximate storage footprint: 16 bytes per point slot plus per-block header."""
        per_block = self.capacity * 16 + 32
        return self.n_blocks * per_block

    # -- allocation ---------------------------------------------------------------

    def allocate_base(self) -> Block:
        """Create the next base block in curve order and link it after the previous one."""
        block = Block(len(self._blocks), self.capacity, is_overflow=False)
        self._blocks.append(block)
        if self._base_order:
            # link after the tail of the previous base block's overflow chain
            previous_tail = self._chain_tail(self._base_order[-1])
            previous_tail.next_id = block.block_id
            block.prev_id = previous_tail.block_id
            # the relink dirties the previous tail: account the write and
            # drop its cached page, symmetric with allocate_overflow
            self.note_write(previous_tail.block_id)
        self._base_order.append(block.block_id)
        self._disk_write(block.block_id)
        return block

    def allocate_overflow(self, after_block_id: int) -> Block:
        """Create an overflow block linked immediately after ``after_block_id``."""
        predecessor = self._block_by_id(after_block_id)
        block = Block(len(self._blocks), self.capacity, is_overflow=True)
        self._blocks.append(block)
        self._n_overflow += 1
        block.next_id = predecessor.next_id
        block.prev_id = predecessor.block_id
        if predecessor.next_id is not None:
            self._block_by_id(predecessor.next_id).prev_id = block.block_id
            self._disk_write(predecessor.next_id)
        predecessor.next_id = block.block_id
        self.stats.record_block_write()
        if self.cache is not None:
            # the predecessor's chain link changed on disk too
            self.cache.invalidate(("b", predecessor.block_id))
        self._disk_write(predecessor.block_id)
        self._disk_write(block.block_id)
        return block

    # -- access -------------------------------------------------------------------

    def read(self, block_id: int) -> Block:
        """Read a block by id, recording a (cache-aware) block access."""
        self._block_by_id(block_id)  # validate the id before any accounting
        self._touch(block_id)
        return self._block_by_id(block_id)

    def _touch(self, block_id: int) -> None:
        """Record one block read, consulting the cache when one is attached.

        With a disk tier attached, a cache miss performs the actual I/O:
        the block is re-deserialised from the block file and replaces the
        in-memory object, so stale on-disk state cannot hide behind memory.
        """
        cached = self.cache.access(("b", block_id)) if self.cache is not None else False
        self.stats.record_block_read(cached=cached)
        if not cached and self._disk is not None:
            self._blocks[block_id] = self._disk.read_block(block_id)

    def touch_position(self, position: int) -> None:
        """Record a read of the base block at ``position`` without returning it.

        Directory-style probes (e.g. the ZM binary search over per-block
        Z-ranges) charge a block access without needing the contents; this
        keeps those probes on the same cache-aware accounting path.
        """
        self._touch(self.base_block_id(position))

    def note_write(self, block_id: int) -> None:
        """Record a write to ``block_id`` and invalidate its cached page.

        Indices that mutate a block they located earlier (insert into a
        non-full block, flag a deletion) call this instead of bumping the
        write counter inline, so the dirty page cannot produce stale hits.
        With a disk tier attached, the dirtied block is written through.
        """
        self.stats.record_block_write()
        if self.cache is not None:
            self.cache.invalidate(("b", block_id))
        self._disk_write(block_id)

    def attach_cache(self, cache: Optional[PageCache]) -> None:
        """Install (or remove, with None) the block cache reads go through.

        Accepts anything with the :class:`PageCache` surface — notably a
        :class:`~repro.storage.buffer_pool.PoolClient` of a shared buffer
        pool; when the cache also exposes ``prefetch``, chain and run scans
        prefetch ahead (see :meth:`iter_chain` / :meth:`scan_positions`).
        """
        self.cache = cache

    def _cache_prefetch(self, block_ids) -> int:
        """Speculatively admit ``block_ids`` into a prefetch-capable cache.

        Only admitted prefetches are charged as prefetch I/O (a skipped
        prefetch performed none), and with a disk tier attached the admitted
        blocks are actually re-deserialised — a later cache hit must mean
        the in-memory object is current, same invariant as :meth:`_touch`.
        Returns the number of blocks actually admitted.
        """
        prefetch = getattr(self.cache, "prefetch", None)
        if prefetch is None:
            return 0
        admitted = prefetch([("b", block_id) for block_id in block_ids])
        if not admitted:
            return 0
        self.stats.record_block_prefetch(len(admitted))
        if self._disk is not None:
            for _, block_id in admitted:
                self._blocks[block_id] = self._disk.read_block(block_id)
        return len(admitted)

    def prefetch_positions(self, begin: int, end: int) -> int:
        """Speculatively admit the base blocks at positions ``begin..end``
        (inclusive) before a scan touches them.

        This is the *query-planning* prefetch: :meth:`scan_positions` only
        prefetches **ahead** of its cursor (every :data:`PREFETCH_BATCH`-th
        stride boundary — the first position of each stride — stays a cold
        fault), so a caller that knows the scan range up front issues it
        here and the whole range is warm, stride boundaries included.
        Charged like every prefetch: only actually admitted pages count.
        Returns the number of blocks admitted; 0 without a
        prefetch-capable cache.
        """
        if self.cache is None or not hasattr(self.cache, "prefetch"):
            return 0
        begin = self.clamp_position(begin)
        end = self.clamp_position(end)
        if end < begin:
            return 0
        return self._cache_prefetch(
            [self._base_order[position] for position in range(begin, end + 1)]
        )

    def attach_disk(self, disk: Optional[BlockFile]) -> None:
        """Install (or remove, with None) a write-through block-file mirror.

        Attaching dumps every current block into the file, so the disk tier
        is immediately consistent; from then on every mutation writes
        through and cache-missing reads deserialise from the file (see
        :meth:`_touch`).  The file handle is never pickled — a checkpointed
        store loads back disk-less and the durability manager re-attaches.
        """
        if disk is not None and disk.capacity != self.capacity:
            raise ValueError(
                f"block file holds capacity-{disk.capacity} records, "
                f"store uses capacity {self.capacity}"
            )
        self._disk = disk
        if disk is not None:
            for block in self._blocks:
                disk.write_block(block)
            disk.sync()

    @property
    def disk(self) -> Optional[BlockFile]:
        """The attached block-file mirror, when one exists."""
        return self._disk

    def _disk_write(self, block_id: int) -> None:
        """Write one block through to the attached block file, if any."""
        if self._disk is not None:
            self._disk.write_block(self._blocks[block_id])

    def peek(self, block_id: int) -> Block:
        """Read a block without recording an access (for build/maintenance code)."""
        return self._block_by_id(block_id)

    def base_block_id(self, position: int) -> int:
        """Block id of the base block at ``position`` in curve order."""
        if not 0 <= position < len(self._base_order):
            raise IndexError(
                f"base block position {position} outside [0, {len(self._base_order)})"
            )
        return self._base_order[position]

    def clamp_position(self, position: int) -> int:
        """Clamp a (possibly out-of-range predicted) position into the valid range."""
        if not self._base_order:
            raise RuntimeError("block store has no base blocks")
        return max(0, min(position, len(self._base_order) - 1))

    # -- scanning ------------------------------------------------------------------

    def iter_chain(self, position: int) -> Iterator[Block]:
        """Yield the base block at ``position`` followed by its overflow blocks.

        With a prefetch-capable cache attached, the overflow chain behind the
        base block is prefetched as one batch before it is walked — a chain
        is always read front to back, so its successors are certain hits.
        """
        block = self.read(self.base_block_id(position))
        if block.next_id is not None and hasattr(self.cache, "prefetch"):
            self._cache_prefetch(self._chain_successor_ids(block))
        yield block
        next_id = block.next_id
        while next_id is not None:
            candidate = self._block_by_id(next_id)
            if not candidate.is_overflow:
                break
            self._touch(candidate.block_id)
            # the touch may have re-read the block from disk; yield the
            # current object so callers mutate what the store holds
            candidate = self._block_by_id(next_id)
            yield candidate
            next_id = candidate.next_id

    def scan_positions(self, begin: int, end: int) -> Iterator[Block]:
        """Yield every block whose chain starts at positions ``begin..end`` inclusive.

        With a prefetch-capable cache attached, upcoming base blocks are
        prefetched :data:`PREFETCH_BATCH` positions ahead of the scan cursor
        — a contiguous run (e.g. one Hilbert window run) is read strictly in
        position order, so the prefetches are certain hits.
        """
        begin = self.clamp_position(begin)
        end = self.clamp_position(end)
        prefetching = self.cache is not None and hasattr(self.cache, "prefetch")
        for position in range(begin, end + 1):
            if prefetching and (position - begin) % PREFETCH_BATCH == 0:
                ahead = [
                    self._base_order[p]
                    for p in range(position + 1, min(position + PREFETCH_BATCH, end) + 1)
                ]
                if ahead:
                    self._cache_prefetch(ahead)
            yield from self.iter_chain(position)

    def chain_depths(self) -> list[int]:
        """Overflow blocks linked behind each base block, by curve position.

        A freshly built store is all zeros; insertions into full regions grow
        individual chains.  The scenario runner samples this to track how far
        the structure has degraded from its learned layout.
        """
        depths: list[int] = []
        for position in range(self.n_base_blocks):
            depth = 0
            block = self._block_by_id(self.base_block_id(position))
            next_id = block.next_id
            while next_id is not None:
                candidate = self._block_by_id(next_id)
                if not candidate.is_overflow:
                    break
                depth += 1
                next_id = candidate.next_id
            depths.append(depth)
        return depths

    def all_points(self) -> np.ndarray:
        """Every live point in curve order (base blocks followed by their overflows)."""
        chunks: list[np.ndarray] = []
        for position in range(self.n_base_blocks):
            block = self._block_by_id(self.base_block_id(position))
            chunks.append(block.points())
            next_id = block.next_id
            while next_id is not None:
                candidate = self._block_by_id(next_id)
                if not candidate.is_overflow:
                    break
                chunks.append(candidate.points())
                next_id = candidate.next_id
        if not chunks:
            return np.empty((0, 2), dtype=float)
        return np.vstack(chunks)

    # -- bulk building ----------------------------------------------------------------

    def pack_points(self, points: np.ndarray) -> tuple[int, int]:
        """Pack ``points`` (already in curve order) into consecutive base blocks.

        Returns ``(first_position, last_position)`` of the blocks created.
        Packing every ``B`` consecutive points into one block implements
        Equation 1 of the paper (``p.blk = floor(p.rank * n / B)``).
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("points must have shape (n, 2)")
        if points.shape[0] == 0:
            raise ValueError("cannot pack an empty point set")
        first_position = self.n_base_blocks
        for start in range(0, points.shape[0], self.capacity):
            block = self.allocate_base()
            block.bulk_fill(points[start : start + self.capacity])
            self.stats.record_block_write()
            self._disk_write(block.block_id)
        return first_position, self.n_base_blocks - 1

    # -- internals ----------------------------------------------------------------------

    def _block_by_id(self, block_id: int) -> Block:
        if not 0 <= block_id < len(self._blocks):
            raise IndexError(f"unknown block id {block_id}")
        return self._blocks[block_id]

    def _chain_successor_ids(self, block: Block) -> list[int]:
        """Block ids of the overflow blocks chained behind ``block`` (link
        metadata only — no accesses are recorded)."""
        ids: list[int] = []
        next_id = block.next_id
        while next_id is not None:
            candidate = self._block_by_id(next_id)
            if not candidate.is_overflow:
                break
            ids.append(candidate.block_id)
            next_id = candidate.next_id
        return ids

    def _chain_tail(self, base_block_id: int) -> Block:
        block = self._block_by_id(base_block_id)
        while block.next_id is not None:
            candidate = self._block_by_id(block.next_id)
            if not candidate.is_overflow:
                break
            block = candidate
        return block

    # -- persistence: the disk handle is never pickled ----------------------------

    def __getstate__(self) -> dict:
        """Drop the block-file handle: checkpoints hold the blocks themselves,
        and the durability manager re-attaches a mirror after recovery."""
        state = self.__dict__.copy()
        state["_disk"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        state.setdefault("_disk", None)  # artefacts written before the disk tier
        self.__dict__.update(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockStore(capacity={self.capacity}, base={self.n_base_blocks}, "
            f"overflow={self.n_overflow_blocks}, points={self.n_points})"
        )
