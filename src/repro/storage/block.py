"""A fixed-capacity block of spatial points."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.geometry import Rect, mbr_of_points

__all__ = ["Block"]


class Block:
    """A disk block holding at most ``capacity`` two-dimensional points.

    Points are stored in insertion order.  Deletions flag a slot rather than
    compacting the block (the paper keeps deleted slots so that the learned
    error bounds stay valid; the slot may later be reused by an insertion).
    """

    def __init__(self, block_id: int, capacity: int, is_overflow: bool = False):
        if capacity < 1:
            raise ValueError("block capacity must be >= 1")
        self.block_id = int(block_id)
        self.capacity = int(capacity)
        #: True for blocks created by insertions after the initial build.
        #: Overflow blocks do not count towards the learned error bounds.
        self.is_overflow = bool(is_overflow)
        self._coords = np.empty((capacity, 2), dtype=float)
        self._deleted = np.zeros(capacity, dtype=bool)
        self._count = 0
        #: id of the block that precedes / follows this one in curve order
        self.prev_id: Optional[int] = None
        self.next_id: Optional[int] = None

    # -- size & occupancy --------------------------------------------------------

    def __len__(self) -> int:
        """Number of live (non-deleted) points."""
        return int(self._count - self._deleted[: self._count].sum())

    @property
    def slot_count(self) -> int:
        """Number of occupied slots, including deleted ones."""
        return self._count

    @property
    def is_full(self) -> bool:
        """True when no slot can accept an insertion (no free or deleted slot)."""
        return self._count >= self.capacity and not self._deleted[: self._count].any()

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    # -- contents -----------------------------------------------------------------

    def points(self) -> np.ndarray:
        """Live points as an ``(m, 2)`` array (copy)."""
        live = ~self._deleted[: self._count]
        return self._coords[: self._count][live].copy()

    def all_slots(self) -> np.ndarray:
        """All occupied slots including deleted ones (used by rebuild logic)."""
        return self._coords[: self._count].copy()

    def iter_points(self) -> Iterator[tuple[float, float]]:
        for i in range(self._count):
            if not self._deleted[i]:
                yield (float(self._coords[i, 0]), float(self._coords[i, 1]))

    def mbr(self) -> Optional[Rect]:
        """MBR of the live points, or ``None`` when the block is empty."""
        live = self.points()
        if live.shape[0] == 0:
            return None
        return mbr_of_points(live)

    # -- mutation -----------------------------------------------------------------

    def append(self, x: float, y: float) -> None:
        """Add a point, reusing a deleted slot if the block is otherwise full."""
        if self._count < self.capacity:
            self._coords[self._count] = (x, y)
            self._deleted[self._count] = False
            self._count += 1
            return
        deleted_slots = np.nonzero(self._deleted[: self._count])[0]
        if deleted_slots.size == 0:
            raise ValueError(f"block {self.block_id} is full")
        slot = int(deleted_slots[0])
        self._coords[slot] = (x, y)
        self._deleted[slot] = False

    def bulk_fill(self, points: np.ndarray) -> None:
        """Fill an empty block with up to ``capacity`` points at once."""
        points = np.asarray(points, dtype=float)
        if self._count != 0:
            raise ValueError("bulk_fill requires an empty block")
        if points.shape[0] > self.capacity:
            raise ValueError(
                f"cannot fill block of capacity {self.capacity} with {points.shape[0]} points"
            )
        count = points.shape[0]
        self._coords[:count] = points
        self._deleted[:count] = False
        self._count = count

    def delete(self, x: float, y: float, tolerance: float = 0.0) -> bool:
        """Flag the first live point equal to ``(x, y)`` as deleted.

        Returns True when a point was deleted.  ``tolerance`` allows matching
        under floating-point round-off.
        """
        for i in range(self._count):
            if self._deleted[i]:
                continue
            if (
                abs(self._coords[i, 0] - x) <= tolerance
                and abs(self._coords[i, 1] - y) <= tolerance
            ):
                self._deleted[i] = True
                return True
        return False

    def contains(self, x: float, y: float, tolerance: float = 0.0) -> bool:
        """True when a live point equal to ``(x, y)`` is stored in this block."""
        for i in range(self._count):
            if self._deleted[i]:
                continue
            if (
                abs(self._coords[i, 0] - x) <= tolerance
                and abs(self._coords[i, 1] - y) <= tolerance
            ):
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "overflow" if self.is_overflow else "base"
        return f"Block(id={self.block_id}, {len(self)}/{self.capacity} points, {kind})"
