"""Simulated external-memory block storage with a pluggable cache layer.

The paper stores data points in fixed-capacity disk blocks (``B = 100``
points per block, Section 6.1) and reports the number of block accesses per
query as a hardware-independent cost metric.  This package simulates that
storage layer in main memory:

* :class:`~repro.storage.block.Block` — a fixed-capacity container of points
  with deletion flags and previous/next links,
* :class:`~repro.storage.block_store.BlockStore` — the collection of blocks
  with global block ids, overflow-block insertion and access accounting,
* :class:`~repro.storage.stats.AccessStats` — counters shared by every index
  so experiments can report block accesses uniformly, split into **logical**
  reads (what the algorithm touched — the paper's metric) and **physical**
  reads (what actually hit storage once a cache sits in front),
* :class:`~repro.storage.page_cache.PageCache` — a fixed-capacity buffer
  pool (LRU or clock replacement) with dirty-page invalidation,
* :class:`~repro.storage.buffer_pool.SharedBufferPool` — one buffer pool
  shared across many indices/shards through per-client
  :class:`~repro.storage.buffer_pool.PoolClient` façades, with TinyLFU
  (frequency-sketch) admission, non-harmful prefetch along overflow chains
  and layout runs, and optional per-client budgets,
* :mod:`~repro.storage.layout` — Hilbert block-layout primitives: curve
  keys for sorting points before packing, and the contiguous key runs a
  window decomposes into (what makes run-scanning a Hilbert layout pay),
* :class:`~repro.storage.paged.NodePager` — the paged-access façade that
  gives node-based indices (Grid file, K-D-B-tree, the R-trees) stable page
  ids and the same cache-aware accounting as ``BlockStore``,
* :class:`~repro.storage.block_file.BlockFile` — the optional disk tier: one
  CRC-checked fixed-size record per block, written through on every
  mutation and deserialised back on cache-missing reads,
* :class:`~repro.storage.wal.WriteAheadLog` — framed, checksummed logical
  mutation log with torn-tail truncation on recovery,
* :class:`~repro.storage.durability.DurableIndex` — checkpoint + WAL
  durability (and optionally the block-file tier) around any built index,
  with :meth:`~repro.storage.durability.DurableIndex.recover` bringing a
  killed process's index back to a state the crash-recovery fuzz harness
  can verify against an oracle.
"""

from repro.storage.block import Block
from repro.storage.block_file import BlockFile, BlockFileError
from repro.storage.block_store import BlockStore
from repro.storage.buffer_pool import (
    POOL_ADMISSIONS,
    FrequencySketch,
    PoolClient,
    SharedBufferPool,
)
from repro.storage.layout import (
    count_key_runs,
    curve_keys,
    hilbert_sort_order,
    window_key_runs,
)
from repro.storage.durability import (
    STORAGE_BACKENDS,
    DurableIndex,
    RecoveryReport,
    storage_root,
)
from repro.storage.page_cache import PAGE_CACHE_POLICIES, PageCache, make_page_cache
from repro.storage.paged import NodePager
from repro.storage.stats import AccessStats, AccessSummary
from repro.storage.wal import WalError, WriteAheadLog

__all__ = [
    "Block",
    "BlockStore",
    "AccessStats",
    "AccessSummary",
    "PageCache",
    "NodePager",
    "PAGE_CACHE_POLICIES",
    "make_page_cache",
    "SharedBufferPool",
    "PoolClient",
    "FrequencySketch",
    "POOL_ADMISSIONS",
    "BlockFile",
    "BlockFileError",
    "WriteAheadLog",
    "WalError",
    "DurableIndex",
    "RecoveryReport",
    "STORAGE_BACKENDS",
    "storage_root",
    "curve_keys",
    "hilbert_sort_order",
    "window_key_runs",
    "count_key_runs",
]
