"""Simulated external-memory block storage with a pluggable cache layer.

The paper stores data points in fixed-capacity disk blocks (``B = 100``
points per block, Section 6.1) and reports the number of block accesses per
query as a hardware-independent cost metric.  This package simulates that
storage layer in main memory:

* :class:`~repro.storage.block.Block` — a fixed-capacity container of points
  with deletion flags and previous/next links,
* :class:`~repro.storage.block_store.BlockStore` — the collection of blocks
  with global block ids, overflow-block insertion and access accounting,
* :class:`~repro.storage.stats.AccessStats` — counters shared by every index
  so experiments can report block accesses uniformly, split into **logical**
  reads (what the algorithm touched — the paper's metric) and **physical**
  reads (what actually hit storage once a cache sits in front),
* :class:`~repro.storage.page_cache.PageCache` — a fixed-capacity buffer
  pool (LRU or clock replacement) with dirty-page invalidation,
* :class:`~repro.storage.paged.NodePager` — the paged-access façade that
  gives node-based indices (Grid file, K-D-B-tree, the R-trees) stable page
  ids and the same cache-aware accounting as ``BlockStore``.
"""

from repro.storage.block import Block
from repro.storage.block_store import BlockStore
from repro.storage.page_cache import PAGE_CACHE_POLICIES, PageCache, make_page_cache
from repro.storage.paged import NodePager
from repro.storage.stats import AccessStats

__all__ = [
    "Block",
    "BlockStore",
    "AccessStats",
    "PageCache",
    "NodePager",
    "PAGE_CACHE_POLICIES",
    "make_page_cache",
]
