"""Simulated external-memory block storage.

The paper stores data points in fixed-capacity disk blocks (``B = 100``
points per block, Section 6.1) and reports the number of block accesses per
query as a hardware-independent cost metric.  This package simulates that
storage layer in main memory:

* :class:`~repro.storage.block.Block` — a fixed-capacity container of points
  with deletion flags and previous/next links,
* :class:`~repro.storage.block_store.BlockStore` — the collection of blocks
  with global block ids, overflow-block insertion and access accounting,
* :class:`~repro.storage.stats.AccessStats` — counters shared by every index
  so experiments can report block accesses uniformly.
"""

from repro.storage.block import Block
from repro.storage.block_store import BlockStore
from repro.storage.stats import AccessStats

__all__ = ["Block", "BlockStore", "AccessStats"]
