"""Durability manager: checkpoints + WAL + optional disk tier for any index.

:class:`DurableIndex` wraps a built index (RSMI, any baseline, or a
:class:`~repro.sharding.ShardedSpatialIndex`) and makes its update stream
survive a process kill:

* every ``insert``/``delete`` is appended to a
  :class:`~repro.storage.wal.WriteAheadLog` **before** it is applied
  (append-before-apply), so the log always covers at least the applied
  state;
* every ``checkpoint_every`` writes, the whole index is checkpointed
  through :func:`~repro.core.persistence.save_index` (atomic
  temp-file + ``fsync`` + ``os.replace``) and the WAL is reset;
* :meth:`DurableIndex.recover` loads the newest checkpoint, truncates any
  torn WAL tail, replays the surviving records through the index's own
  ``insert``/``delete`` (logical redo — deterministically recreating
  overflow allocations and model-side bookkeeping), and re-checkpoints.

With ``backend="disk"`` the wrapped index additionally serves block reads
from a :class:`~repro.storage.block_file.BlockFile` mirror: cache-missing
reads deserialise blocks from the file (per shard for sharded indices), so
physical reads are actual I/O.  Tree baselines, whose nodes live behind the
:class:`~repro.storage.paged.NodePager`, get checkpoint + WAL durability
without a block mirror.

Queries delegate transparently (``__getattr__``), and the wrapper exposes
``wrapped`` so the batched engines and the scenario runner unwrap it the
same way they unwrap the evaluation adapters — a durable index drops into
the serving stack unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from repro.storage.block_file import BlockFile
from repro.storage.wal import WriteAheadLog

__all__ = ["DurableIndex", "RecoveryReport", "STORAGE_BACKENDS", "storage_root"]

#: recognised ``--storage-backend`` values: pure in-memory simulation, or
#: the file-backed block tier
STORAGE_BACKENDS = ("memory", "disk")

_CHECKPOINT_NAME = "checkpoint.idx"
_WAL_NAME = "wal.log"
_BLOCKS_NAME = "blocks.dat"


def storage_root() -> Path:
    """Where durable-run scratch state lives.

    ``$REPRO_STORAGE_DIR`` when set, else ``storage/`` under the current
    working directory (gitignored), mirroring the results-dir convention.
    """
    override = os.environ.get("REPRO_STORAGE_DIR", "").strip()
    return Path(override) if override else Path.cwd() / "storage"


@dataclass
class RecoveryReport:
    """What :meth:`DurableIndex.recover` found and did."""

    #: WAL records replayed on top of the checkpoint
    replayed: int
    #: True when a torn WAL tail (crash mid-append) was truncated away
    torn_tail: bool
    checkpoint_path: Path
    wal_path: Path

    def describe(self) -> str:
        return (
            f"recovered from {self.checkpoint_path.name} + {self.replayed} WAL "
            f"record(s)" + (" (torn tail truncated)" if self.torn_tail else "")
        )


class DurableIndex:
    """Checkpoint/WAL durability (and optionally a disk tier) around an index.

    Parameters
    ----------
    index:
        A *built* index.  Its ``insert``/``delete`` surface is what the WAL
        replays, so anything the scenario runner can drive is supported.
    directory:
        Where the checkpoint, the WAL and any block files live.  One
        directory per durable index.
    checkpoint_every:
        Writes between automatic checkpoints (>= 1).
    backend:
        ``"memory"`` (checkpoint + WAL only) or ``"disk"`` (additionally
        mirror the block store(s) into block files and serve cache-missing
        reads from them).
    fsync:
        Fsync WAL appends.  Leave on for real durability; tests may turn
        it off for speed (same-process kill simulation does not need it —
        appends are unbuffered either way).
    wal_fsync_every:
        Group-commit width: fsync once per this many WAL appends instead
        of per record (checkpoints flush any pending group first).  A
        process kill still loses nothing; an OS crash loses at most the
        last unsynced group.
    """

    def __init__(
        self,
        index: Any,
        directory: str | Path,
        *,
        checkpoint_every: int = 256,
        backend: str = "memory",
        fsync: bool = True,
        wal_fsync_every: int = 1,
        _initial_checkpoint: bool = True,
    ):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if backend not in STORAGE_BACKENDS:
            raise ValueError(
                f"unknown storage backend {backend!r}; available: {STORAGE_BACKENDS}"
            )
        self._index = index
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.checkpoint_every = int(checkpoint_every)
        self.backend = backend
        self.checkpoint_path = self.directory / _CHECKPOINT_NAME
        self.wal_path = self.directory / _WAL_NAME
        self._wal = WriteAheadLog(self.wal_path, fsync=fsync, fsync_every=wal_fsync_every)
        self._block_files: list[BlockFile] = []
        #: writes logged since this manager took over (cumulative)
        self.ops_logged = 0
        #: value of :attr:`ops_logged` folded into the newest checkpoint
        self.ops_checkpointed = 0
        self.n_checkpoints = 0
        if backend == "disk":
            self._attach_disk_backend()
        if _initial_checkpoint:
            self.checkpoint()

    # -- serving surface -------------------------------------------------------

    @property
    def wrapped(self) -> Any:
        """The wrapped index (the engines/runner unwrap through this)."""
        return self._index

    def insert(self, x: float, y: float) -> None:
        """WAL-append then apply one insertion (append-before-apply)."""
        self._wal.append("insert", x, y)
        self._index.insert(x, y)
        self._after_write()

    def delete(self, x: float, y: float) -> bool:
        """WAL-append then apply one deletion; returns the index's outcome."""
        self._wal.append("delete", x, y)
        removed = bool(self._index.delete(x, y))
        self._after_write()
        return removed

    def __getattr__(self, item):
        # queries, stats, caches, per_shard_* — all served by the wrapped index
        return getattr(self._index, item)

    # -- checkpointing ---------------------------------------------------------

    def _after_write(self) -> None:
        self.ops_logged += 1
        if self.ops_logged - self.ops_checkpointed >= self.checkpoint_every:
            self.checkpoint()

    def checkpoint(self) -> Path:
        """Atomically checkpoint the whole index and reset the WAL."""
        from repro.core.persistence import save_index

        self._wal.flush()  # group commit: pending appends durable pre-checkpoint
        path = save_index(self._index, self.checkpoint_path)
        self._wal.reset()
        self.ops_checkpointed = self.ops_logged
        self.n_checkpoints += 1
        return path

    @property
    def wal_records_pending(self) -> int:
        """Writes logged since the newest checkpoint."""
        return self.ops_logged - self.ops_checkpointed

    # -- disk tier -------------------------------------------------------------

    def _storage_target(self) -> Any:
        """The object carrying the block store: unwraps one adapter level."""
        return getattr(self._index, "wrapped", self._index)

    def _attach_disk_backend(self) -> None:
        """Mirror the wrapped index's block store(s) into block files."""
        target = self._storage_target()
        if hasattr(target, "attach_disk"):
            # sharded indices manage one block file per shard themselves
            target.attach_disk(self.directory)
            return
        store = getattr(target, "store", None)
        if store is None or not hasattr(store, "attach_disk"):
            return  # tree baselines: NodePager nodes, checkpoint+WAL only
        blocks_path = self.directory / _BLOCKS_NAME
        if blocks_path.exists():
            blocks_path.unlink()  # stale mirror from an earlier run
        store.attach_disk(BlockFile(blocks_path, store.capacity))
        self._block_files = [store.disk]

    def _detach_disk_backend(self) -> None:
        target = self._storage_target() if self._index is not None else None
        store = getattr(target, "store", None)
        if store is not None and getattr(store, "disk", None) is not None:
            disk = store.disk
            store.attach_disk(None)
            disk.close()
        for block_file in self._block_files:
            block_file.close()
        self._block_files = []
        if target is not None and hasattr(target, "detach_disk"):
            target.detach_disk()

    # -- lifecycle -------------------------------------------------------------

    def close(self, checkpoint: bool = True) -> None:
        """Clean shutdown: optionally checkpoint, then release every handle."""
        if checkpoint:
            self.checkpoint()
        self._wal.close()
        self._detach_disk_backend()

    def simulate_crash(self) -> None:
        """Abandon the in-memory state as a killed process would.

        No checkpoint, no flush beyond what already reached the files (WAL
        appends and block writes are unbuffered, exactly so this models a
        SIGKILL); afterwards only :meth:`recover` brings the index back.
        """
        self._wal.close()
        self._detach_disk_backend()
        self._index = None

    # -- recovery --------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        directory: str | Path,
        *,
        checkpoint_every: int = 256,
        backend: str = "memory",
        fsync: bool = True,
        wal_fsync_every: int = 1,
        expected_type: Optional[type] = None,
    ) -> tuple["DurableIndex", RecoveryReport]:
        """Bring a killed durable index back from checkpoint + WAL tail.

        Loads the newest checkpoint, truncates any torn WAL tail, replays
        the surviving records through the index's own update surface, and
        returns a fresh manager (which immediately re-checkpoints, folding
        the replayed tail in) plus a :class:`RecoveryReport`.
        """
        from repro.core.persistence import load_index

        directory = Path(directory)
        checkpoint_path = directory / _CHECKPOINT_NAME
        wal_path = directory / _WAL_NAME
        index = load_index(checkpoint_path, expected_type=expected_type)
        records, torn = WriteAheadLog.recover(wal_path)
        for kind, x, y in records:
            if kind == "insert":
                index.insert(x, y)
            else:
                index.delete(x, y)
        durable = cls(
            index,
            directory,
            checkpoint_every=checkpoint_every,
            backend=backend,
            fsync=fsync,
            wal_fsync_every=wal_fsync_every,
        )
        report = RecoveryReport(
            replayed=len(records),
            torn_tail=torn,
            checkpoint_path=checkpoint_path,
            wal_path=wal_path,
        )
        return durable, report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DurableIndex({type(self._index).__name__}, backend={self.backend!r}, "
            f"dir={str(self.directory)!r}, checkpoints={self.n_checkpoints}, "
            f"pending={self.wal_records_pending})"
        )
