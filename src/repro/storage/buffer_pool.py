"""A shared multi-index buffer pool with TinyLFU admission and prefetch.

The per-index :class:`~repro.storage.page_cache.PageCache` gives every index
(or every shard) a private budget.  That is simple but wasteful under skew:
a drifting hotspot leaves most per-shard caches idle while the hot shard
thrashes, and one large scan can flush an LRU cache's entire hot working set
("scan thrash").  :class:`SharedBufferPool` addresses both:

* **One pool, many clients.**  Every index/shard gets a
  :class:`PoolClient` — a façade with the exact :class:`PageCache` surface
  (``access`` / ``invalidate`` / ``contains`` / counters), namespacing its
  keys into the shared resident set — so the whole capacity follows the
  traffic instead of being statically partitioned.  An optional per-client
  ``budget`` caps how much of the pool one client may occupy; over-budget
  admissions evict that client's own coldest page, never a neighbour's.
* **TinyLFU admission.**  A count-min :class:`FrequencySketch` with periodic
  halving estimates each page's recent access frequency.  On a miss with a
  full pool the candidate is admitted only if its estimated frequency is at
  least the eviction victim's — one-touch scan pages lose that comparison
  against a warm working set, so scans stream through the pool without
  displacing it (the classic LRU failure mode).
* **Non-harmful prefetch.**  :meth:`PoolClient.prefetch` admits speculative
  pages at the *cold* end of the recency order, and makes room only by
  evicting other not-yet-used prefetched pages — a prefetch burst can never
  displace a demanded page.  Prefetch I/O is charged separately (see
  :meth:`~repro.storage.stats.AccessStats.record_block_prefetch`), so wasted
  prefetches honestly show up as extra physical reads.

Like :class:`PageCache`, the pool is an *accounting* cache: it tracks which
pages are resident, while contents stay in the owning structures.  Pickling
keeps configuration only — a loaded index always starts cold.

**Process-pool safety.**  The pool and its clients are plain in-process
Python objects with no cross-process coordination: a pool inherited through
``fork`` (or rebuilt by ``spawn`` pickling) becomes an independent copy
whose resident set silently diverges from its siblings', wrecking the
shared-capacity accounting it exists to provide.  The multi-core serving
tier therefore never ships pool clients across process boundaries —
:class:`~repro.serving.ServingSpec` carries cache *configuration* only
(``cache_blocks``/``cache_policy``), and each worker process builds its own
private per-shard :class:`PageCache`\\ s for the shards it owns.  Use the
shared pool inside one process; use per-worker caches across processes.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Hashable, Iterable, Optional

__all__ = ["FrequencySketch", "SharedBufferPool", "PoolClient", "POOL_ADMISSIONS"]

#: recognised admission policies: ``"tinylfu"`` gates admission on the
#: frequency sketch, ``"lru"`` always admits (classic shared LRU)
POOL_ADMISSIONS = ("tinylfu", "lru")

#: counters saturate at this value (4-bit style, as in real TinyLFU sketches)
_SKETCH_MAX = 15

#: multiplicative hash seeds deriving the four count-min rows from one hash
_SKETCH_SEEDS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
)

_WORD = (1 << 64) - 1


def _stable_hash(key: Hashable) -> int:
    """Deterministic 64-bit hash of a cache key.

    Python's ``hash`` is randomised per process for strings (and any tuple
    containing one), which would make admission decisions — and therefore
    hit ratios, eviction counts and every differential test built on them —
    unreproducible across runs.  Cache keys here are small printable tuples,
    so hashing their ``repr`` is stable and cheap.
    """
    data = repr(key).encode("utf-8", "backslashreplace")
    return ((zlib.adler32(data) << 32) | zlib.crc32(data)) & _WORD


class FrequencySketch:
    """Count-min frequency estimator with periodic halving ("aging").

    Four rows of saturating counters; :meth:`estimate` returns the row
    minimum.  After ``10 x capacity`` increments every counter is halved,
    so stale popularity decays and a drifting working set can win admission
    comparisons against pages that were hot long ago.
    """

    def __init__(self, capacity: int):
        size = 8
        while size < capacity * 4:
            size <<= 1
        self._mask = size - 1
        self._rows = [[0] * size for _ in _SKETCH_SEEDS]
        self._samples = 0
        self._sample_period = max(10 * capacity, 64)
        self.ages = 0

    def _indexes(self, key: Hashable) -> list[int]:
        h = _stable_hash(key)
        return [(((h ^ seed) * 0x9E3779B97F4A7C15) & _WORD) >> 32 & self._mask
                for seed in _SKETCH_SEEDS]

    def increment(self, key: Hashable) -> None:
        for row, index in zip(self._rows, self._indexes(key)):
            if row[index] < _SKETCH_MAX:
                row[index] += 1
        self._samples += 1
        if self._samples >= self._sample_period:
            self._age()

    def estimate(self, key: Hashable) -> int:
        return min(row[index] for row, index in zip(self._rows, self._indexes(key)))

    def _age(self) -> None:
        for row in self._rows:
            for index in range(len(row)):
                row[index] >>= 1
        self._samples = 0
        self.ages += 1


class PoolClient:
    """One index's (or shard's) view of a :class:`SharedBufferPool`.

    Exposes the full :class:`~repro.storage.page_cache.PageCache` surface,
    so a :class:`~repro.storage.block_store.BlockStore` or
    :class:`~repro.storage.paged.NodePager` can be pointed at a pool client
    through the ordinary ``attach_cache`` without knowing pools exist.
    Counters are per client; the pool aggregates its own.
    """

    def __init__(self, pool: "SharedBufferPool", name: str, budget: Optional[int] = None):
        if budget is not None and budget < 1:
            raise ValueError("client budget must be >= 1 (or None for unlimited)")
        self.pool = pool
        self.name = name
        self.budget = budget
        self._zero_counters()

    def _zero_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.rejections = 0
        self.prefetch_issued = 0

    # -- PageCache surface -----------------------------------------------------

    @property
    def capacity(self) -> int:
        """This client's budget when capped, else the whole pool's capacity."""
        return self.budget if self.budget is not None else self.pool.capacity

    @property
    def policy(self) -> str:
        return f"pool-{self.pool.admission}"

    def access(self, key: Hashable) -> bool:
        """Touch ``key``: True on a hit; on a miss the pool decides admission."""
        return self.pool._access(self, key)

    def prefetch(self, keys: Iterable[Hashable]) -> list[Hashable]:
        """Speculatively admit ``keys``; returns the keys actually admitted."""
        return self.pool._prefetch(self, keys)

    def invalidate(self, key: Hashable) -> bool:
        return self.pool._invalidate(self, key)

    def contains(self, key: Hashable) -> bool:
        return self.pool._contains(self, key)

    def clear(self) -> None:
        """Drop this client's resident pages (counters are kept)."""
        self.pool._clear_client(self)

    def reset_counters(self) -> None:
        self._zero_counters()

    def __len__(self) -> int:
        return self.pool._resident.get(self.name, 0)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        total = self.accesses
        return self.hits / total if total > 0 else 0.0

    def metrics(self) -> dict:
        return {
            "capacity": self.capacity,
            "policy": self.policy,
            "resident": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "rejections": self.rejections,
            "prefetch_issued": self.prefetch_issued,
            "hit_ratio": self.hit_ratio,
        }

    # -- persistence: configuration only ---------------------------------------

    def __getstate__(self) -> dict:
        return {"pool": self.pool, "name": self.name, "budget": self.budget}

    def __setstate__(self, state: dict) -> None:
        self.pool = state["pool"]
        self.name = state["name"]
        self.budget = state["budget"]
        self._zero_counters()
        # latest unpickled client wins the name, mirroring pool.client()
        self.pool._clients[self.name] = self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PoolClient(name={self.name!r}, budget={self.budget}, "
            f"resident={len(self)}, hit_ratio={self.hit_ratio:.2f})"
        )


class SharedBufferPool:
    """A fixed-capacity buffer pool shared by many indices/shards.

    Parameters
    ----------
    capacity:
        Maximum resident pages across *all* clients (>= 1).
    admission:
        ``"tinylfu"`` (default) gates admission on the frequency sketch;
        ``"lru"`` always admits, giving a plain shared LRU for comparison.
    """

    def __init__(self, capacity: int, admission: str = "tinylfu"):
        if capacity < 1:
            raise ValueError("buffer pool capacity must be >= 1")
        if admission not in POOL_ADMISSIONS:
            raise ValueError(
                f"unknown admission policy {admission!r}; available: {POOL_ADMISSIONS}"
            )
        self.capacity = int(capacity)
        self.admission = admission
        self._clients: dict[str, PoolClient] = {}
        self._reset_state()

    def _reset_state(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.rejections = 0
        self.prefetch_issued = 0
        self.prefetch_used = 0
        self.prefetch_evictions = 0
        #: (client name, key) -> client name, in recency order (coldest first)
        self._lru: "OrderedDict[tuple, str]" = OrderedDict()
        #: prefetched pages not yet touched by a demand access
        self._prefetched: set[tuple] = set()
        #: resident page count per client name
        self._resident: dict[str, int] = {}
        self._sketch = (
            FrequencySketch(self.capacity) if self.admission == "tinylfu" else None
        )

    # -- client registry --------------------------------------------------------

    def client(self, name: str, budget: Optional[int] = None) -> PoolClient:
        """The pool client called ``name``, created on first use.

        An existing client keeps its counters and resident pages; passing a
        ``budget`` re-caps it (None leaves the current budget unchanged).
        """
        existing = self._clients.get(name)
        if existing is not None:
            if budget is not None:
                if budget < 1:
                    raise ValueError("client budget must be >= 1 (or None for unlimited)")
                existing.budget = budget
            return existing
        fresh = PoolClient(self, name, budget)
        self._clients[name] = fresh
        return fresh

    def clients(self) -> list[PoolClient]:
        """All registered clients (registration order)."""
        return list(self._clients.values())

    # -- the hot path (called through PoolClient) -------------------------------

    def _access(self, client: PoolClient, key: Hashable) -> bool:
        full = (client.name, key)
        if self._sketch is not None:
            self._sketch.increment(full)
        if full in self._lru:
            self._lru.move_to_end(full)
            if full in self._prefetched:
                self._prefetched.discard(full)
                self.prefetch_used += 1
            self.hits += 1
            client.hits += 1
            return True
        self.misses += 1
        client.misses += 1
        self._admit(client, full)
        return False

    def _admit(self, client: PoolClient, full: tuple) -> None:
        if len(self._lru) >= self.capacity:
            victim = next(iter(self._lru))
            # prefetched-unused pages are speculative: always displaceable.
            # Demanded victims are protected by the admission filter — a
            # candidate colder than the victim is rejected (the miss still
            # counted), which is what makes one-touch scans stream through.
            if self._sketch is not None and victim not in self._prefetched:
                if self._sketch.estimate(full) < self._sketch.estimate(victim):
                    self.rejections += 1
                    client.rejections += 1
                    return
            self._evict(victim)
        self._lru[full] = client.name
        self._resident[client.name] = self._resident.get(client.name, 0) + 1
        self._enforce_budget(client, keep=full)

    def _evict(self, full: tuple) -> None:
        owner = self._lru.pop(full)
        self._resident[owner] -= 1
        if full in self._prefetched:
            self._prefetched.discard(full)
            self.prefetch_evictions += 1
        self.evictions += 1
        owner_client = self._clients.get(owner)
        if owner_client is not None:
            owner_client.evictions += 1

    def _enforce_budget(self, client: PoolClient, keep: tuple) -> None:
        if client.budget is None:
            return
        while self._resident.get(client.name, 0) > client.budget:
            victim = next(
                full for full, owner in self._lru.items()
                if owner == client.name and full != keep
            )
            self._evict(victim)

    # -- prefetch ---------------------------------------------------------------

    def _prefetch(self, client: PoolClient, keys: Iterable[Hashable]) -> list[Hashable]:
        admitted: list[Hashable] = []
        fresh: set[tuple] = set()
        for key in keys:
            full = (client.name, key)
            if full in self._lru:
                continue
            if client.budget is not None and self._resident.get(client.name, 0) >= client.budget:
                victim = self._prefetched_victim(fresh, owner=client.name)
                if victim is None:
                    continue
                self._evict_prefetched(victim)
            if len(self._lru) >= self.capacity:
                victim = self._prefetched_victim(fresh)
                if victim is None:
                    continue  # never displace a demanded page for speculation
                self._evict_prefetched(victim)
            # admit at the *cold* end: the next demand eviction reclaims
            # unused prefetches first, so speculation cannot age hot pages
            self._lru[full] = client.name
            self._lru.move_to_end(full, last=False)
            self._prefetched.add(full)
            fresh.add(full)
            self._resident[client.name] = self._resident.get(client.name, 0) + 1
            self.prefetch_issued += 1
            client.prefetch_issued += 1
            admitted.append(key)
        return admitted

    def _prefetched_victim(self, fresh: set, owner: Optional[str] = None) -> Optional[tuple]:
        """Coldest prefetched-unused page outside this batch (``owner``-only
        when enforcing a client budget); None when no such victim exists."""
        for full in self._lru:
            if full in self._prefetched and full not in fresh:
                if owner is None or self._lru[full] == owner:
                    return full
        return None

    def _evict_prefetched(self, full: tuple) -> None:
        owner = self._lru.pop(full)
        self._resident[owner] -= 1
        self._prefetched.discard(full)
        self.prefetch_evictions += 1

    # -- maintenance ------------------------------------------------------------

    def _invalidate(self, client: PoolClient, key: Hashable) -> bool:
        full = (client.name, key)
        if full not in self._lru:
            return False
        del self._lru[full]
        self._resident[client.name] -= 1
        self._prefetched.discard(full)
        self.invalidations += 1
        client.invalidations += 1
        return True

    def _contains(self, client: PoolClient, key: Hashable) -> bool:
        return (client.name, key) in self._lru

    def _clear_client(self, client: PoolClient) -> None:
        mine = [full for full, owner in self._lru.items() if owner == client.name]
        for full in mine:
            del self._lru[full]
            self._prefetched.discard(full)
        self._resident[client.name] = 0

    def clear(self) -> None:
        """Drop every resident page of every client (counters are kept)."""
        self._lru.clear()
        self._prefetched.clear()
        self._resident.clear()

    def reset_counters(self) -> None:
        """Zero the pool's and every client's counters (residency is kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.rejections = 0
        self.prefetch_issued = 0
        self.prefetch_used = 0
        self.prefetch_evictions = 0
        for client in self._clients.values():
            client.reset_counters()

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        total = self.accesses
        return self.hits / total if total > 0 else 0.0

    def metrics(self) -> dict:
        """Pool-wide counters plus a per-client breakdown."""
        return {
            "capacity": self.capacity,
            "admission": self.admission,
            "resident": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "rejections": self.rejections,
            "prefetch_issued": self.prefetch_issued,
            "prefetch_used": self.prefetch_used,
            "prefetch_evictions": self.prefetch_evictions,
            "hit_ratio": self.hit_ratio,
            "clients": {name: dict(resident=self._resident.get(name, 0),
                                   hit_ratio=client.hit_ratio)
                        for name, client in self._clients.items()},
        }

    # -- persistence: configuration only, never pool state ----------------------

    def __getstate__(self) -> dict:
        return {"capacity": self.capacity, "admission": self.admission}

    def __setstate__(self, state: dict) -> None:
        self.capacity = state["capacity"]
        self.admission = state["admission"]
        self._clients = {}
        self._reset_state()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedBufferPool(capacity={self.capacity}, admission={self.admission!r}, "
            f"clients={len(self._clients)}, resident={len(self)}, "
            f"hit_ratio={self.hit_ratio:.2f})"
        )
