"""A write-ahead log of logical index mutations.

The durable tier logs every ``insert``/``delete`` *before* applying it to
the in-memory index (append-before-apply).  Records are framed as::

    [u32 payload length][u32 CRC-32 of payload][payload]

with a fixed-layout payload (operation code plus the two coordinates), so
recovery can tell a **torn tail** — a crash mid-append leaves a final frame
whose length or checksum does not add up — from a corrupt log: the torn
tail is truncated away and replay proceeds with every fully-written record,
which is exactly the contract the crash-recovery fuzz harness asserts.

Appends go through an unbuffered file handle (``buffering=0``), so a
simulated process kill cannot lose records to a user-space buffer; with
``fsync=True`` (the default) appends are additionally ``fsync``'d so the
append-before-apply ordering also holds against an OS crash.  **Group
commit** (``fsync_every=N``) amortises that dominant per-append cost by
syncing once per N appends instead of per record: against an OS crash at
most the last unsynced group is lost (the torn-tail contract is
unchanged), while a process kill still loses nothing — the appends were
unbuffered.  :meth:`flush` forces any pending group durable; checkpoints
and :meth:`recover` end with a synced file either way.  A checkpoint (see
:mod:`repro.storage.durability`) resets the log to empty.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

__all__ = ["WriteAheadLog", "WalRecord", "WalError"]

_FRAME = struct.Struct("<II")
_PAYLOAD = struct.Struct("<Bdd")
_OP_CODES = {"insert": 1, "delete": 2}
_OP_NAMES = {code: name for name, code in _OP_CODES.items()}

#: one replayed mutation: ``(kind, x, y)``
WalRecord = tuple


class WalError(RuntimeError):
    """A WAL record cannot be encoded or decoded."""


def _fsync_dir(directory: Path) -> None:
    """``fsync`` a directory (no-op where directories cannot be opened).

    Kept local to avoid a storage -> core import cycle; the documented
    rationale lives on :func:`repro.core.persistence.fsync_dir`.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. Windows
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WriteAheadLog:
    """An append-only log of ``("insert"|"delete", x, y)`` records."""

    def __init__(self, path: str | Path, fsync: bool = True, fsync_every: int = 1):
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.path = Path(path)
        self.fsync = bool(fsync)
        #: group-commit width: sync once per this many appends
        self.fsync_every = int(fsync_every)
        #: appended-but-not-yet-synced records of the current group
        self._unsynced = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # unbuffered appends: a killed process loses at most the in-flight frame
        self._handle = open(self.path, "ab", buffering=0)

    # -- appending ----------------------------------------------------------------

    def append(self, kind: str, x: float, y: float) -> None:
        """Append one mutation record; call *before* applying the mutation."""
        code = _OP_CODES.get(kind)
        if code is None:
            raise WalError(f"unknown WAL operation {kind!r}; known: {sorted(_OP_CODES)}")
        payload = _PAYLOAD.pack(code, float(x), float(y))
        self._handle.write(_FRAME.pack(len(payload), zlib.crc32(payload)) + payload)
        if self.fsync:
            self._unsynced += 1
            if self._unsynced >= self.fsync_every:
                self.flush()

    def flush(self) -> None:
        """Force any unsynced appended group durable (no-op when clean)."""
        if not self.fsync or self._unsynced == 0:
            return
        os.fsync(self._handle.fileno())
        self._unsynced = 0

    @property
    def n_bytes(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0

    # -- recovery -----------------------------------------------------------------

    @classmethod
    def scan(cls, path: str | Path) -> tuple[list[WalRecord], int, bool]:
        """Decode every complete record of the log at ``path``.

        Returns ``(records, valid_bytes, torn)`` where ``valid_bytes`` is the
        offset of the first incomplete/corrupt frame (== file size when the
        log is clean) and ``torn`` flags whether a torn tail was found.
        """
        path = Path(path)
        if not path.exists():
            return [], 0, False
        data = path.read_bytes()
        records: list[WalRecord] = []
        offset = 0
        while offset < len(data):
            if offset + _FRAME.size > len(data):
                return records, offset, True
            length, crc = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            payload = data[start : start + length]
            if len(payload) < length or zlib.crc32(payload) != crc:
                return records, offset, True
            if length != _PAYLOAD.size:
                return records, offset, True
            code, x, y = _PAYLOAD.unpack(payload)
            kind = _OP_NAMES.get(code)
            if kind is None:
                return records, offset, True
            records.append((kind, x, y))
            offset = start + length
        return records, offset, False

    @classmethod
    def recover(cls, path: str | Path) -> tuple[list[WalRecord], bool]:
        """Replayable records of the log, truncating any torn tail in place."""
        records, valid_bytes, torn = cls.scan(path)
        if torn:
            with open(path, "r+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            # flush the parent directory too: if the log file itself was
            # created (or renamed into place) just before the crash, the
            # truncated file's entry is only durable once the directory is —
            # symmetric with save_index's post-replace directory sync
            _fsync_dir(Path(path).parent)
        return records, torn

    # -- lifecycle ----------------------------------------------------------------

    def reset(self) -> None:
        """Truncate the log to empty (after a checkpoint made it redundant)."""
        self._handle.truncate(0)
        self._handle.seek(0)
        self._unsynced = 0
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self.flush()
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WriteAheadLog({str(self.path)!r}, bytes={self.n_bytes})"
