"""Rank-space transform and space-filling-curve point ordering."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.curves import SpaceFillingCurve, curve_by_name

__all__ = [
    "rank_space_ranks",
    "curve_order_for",
    "order_points_by_curve",
    "RankSpaceOrdering",
]


def rank_space_ranks(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-dimension ranks of every point (the rank-space coordinates).

    The x-rank of a point is its position when all points are sorted by
    x-coordinate with ties broken by y-coordinate; symmetrically for the
    y-rank.  Both arrays contain a permutation of ``0..n-1``, so every row and
    column of the ``n x n`` rank-space grid holds exactly one point.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must have shape (n, 2)")
    n = points.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    # np.lexsort sorts by the last key first, so (secondary, primary)
    order_x = np.lexsort((points[:, 1], points[:, 0]))
    order_y = np.lexsort((points[:, 0], points[:, 1]))
    rank_x = np.empty(n, dtype=np.int64)
    rank_y = np.empty(n, dtype=np.int64)
    rank_x[order_x] = np.arange(n)
    rank_y[order_y] = np.arange(n)
    return rank_x, rank_y


def curve_order_for(n: int) -> int:
    """The smallest curve order whose grid side covers ``n`` distinct ranks."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return max(1, int(math.ceil(math.log2(n))) if n > 1 else 1)


@dataclass(frozen=True)
class RankSpaceOrdering:
    """Result of ordering a point set in rank space by a space-filling curve.

    Attributes
    ----------
    sorted_points:
        The points reordered by ascending curve value, shape ``(n, 2)``.
    sort_index:
        ``sorted_points[i] == points[sort_index[i]]``.
    curve_values:
        Curve value of each *sorted* point, ascending, shape ``(n,)``.
    rank_x, rank_y:
        Rank-space coordinates of each *original* point.
    curve:
        The space-filling curve used for the ordering.
    """

    sorted_points: np.ndarray
    sort_index: np.ndarray
    curve_values: np.ndarray
    rank_x: np.ndarray
    rank_y: np.ndarray
    curve: SpaceFillingCurve

    @property
    def n_points(self) -> int:
        return self.sorted_points.shape[0]

    def gap_statistics(self) -> dict[str, float]:
        """Min / max / variance of gaps between consecutive curve values.

        The paper motivates the rank-space ordering by showing it yields a
        much smaller variance in these gaps than raw Z-ordering (Section 3.1,
        Figures 2 and 3), which is what the ``ablation-rank`` experiment
        measures.
        """
        if self.n_points < 2:
            return {"min_gap": 0.0, "max_gap": 0.0, "mean_gap": 0.0, "variance": 0.0}
        gaps = np.diff(self.curve_values.astype(float))
        return {
            "min_gap": float(gaps.min()),
            "max_gap": float(gaps.max()),
            "mean_gap": float(gaps.mean()),
            "variance": float(gaps.var()),
        }


def order_points_by_curve(
    points: np.ndarray,
    curve: SpaceFillingCurve | str = "hilbert",
    use_rank_space: bool = True,
) -> RankSpaceOrdering:
    """Order ``points`` by a space-filling curve, optionally in rank space.

    Parameters
    ----------
    points:
        Array of shape ``(n, 2)``.
    curve:
        Either a curve instance or a curve name; when a name is given the
        curve order is chosen automatically from ``n`` (rank space) or a fixed
        resolution of 16 bits per dimension (raw coordinates).
    use_rank_space:
        When True (the paper's method) the curve runs over the rank-space
        grid; when False it runs over a regular grid on the raw coordinates
        (the ordering used by the ZM baseline), provided for the ablation.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must have shape (n, 2)")
    n = points.shape[0]
    if n == 0:
        raise ValueError("cannot order an empty point set")

    rank_x, rank_y = rank_space_ranks(points)

    if use_rank_space:
        if isinstance(curve, str):
            curve = curve_by_name(curve, curve_order_for(n))
        if curve.side < n:
            raise ValueError(
                f"curve order {curve.order} (side {curve.side}) too small for {n} ranks"
            )
        cell_x, cell_y = rank_x, rank_y
    else:
        if isinstance(curve, str):
            curve = curve_by_name(curve, 16)
        # quantise raw coordinates onto the curve grid
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        span = np.where(hi - lo == 0, 1.0, hi - lo)
        scaled = (points - lo) / span
        cell = np.clip((scaled * curve.side).astype(np.int64), 0, curve.side - 1)
        cell_x, cell_y = cell[:, 0], cell[:, 1]

    curve_values = curve.encode_many(cell_x, cell_y)
    sort_index = np.argsort(curve_values, kind="stable")
    return RankSpaceOrdering(
        sorted_points=points[sort_index],
        sort_index=sort_index,
        curve_values=curve_values[sort_index],
        rank_x=rank_x,
        rank_y=rank_y,
        curve=curve,
    )
