"""Rank-space transformation and curve-based point ordering (paper Section 3.1).

The rank-space transform maps ``n`` points to an ``n x n`` grid in which every
row and every column contains exactly one point: the grid coordinate of a
point in each dimension is its *rank* among all points in that dimension
(ties broken by the other dimension).  Ordering points by a space-filling
curve over this grid produces much more even gaps between consecutive curve
values than ordering by raw coordinates, which is what makes the learned CDF
easy to approximate.
"""

from repro.rank_space.transform import (
    RankSpaceOrdering,
    curve_order_for,
    order_points_by_curve,
    rank_space_ranks,
)

__all__ = [
    "RankSpaceOrdering",
    "curve_order_for",
    "order_points_by_curve",
    "rank_space_ranks",
]
