"""Batched query execution over every index in the package.

The paper defines its query algorithms per query; this subsystem executes
whole *batches* of point / window / kNN queries level-synchronously over the
RSMI's model hierarchy (one vectorised model call per touched node, one block
scan per touched block) and through a uniform — optionally thread-pooled —
per-query path for the indices and query types without a vectorised
formulation.  See :class:`~repro.engine.engine.BatchQueryEngine`.
"""

from repro.engine.engine import ENGINE_MODES, BatchQueryEngine
from repro.engine.executor import default_worker_count, run_sequential, run_threaded
from repro.engine.routing import LeafBatch, resolve_child_cells, route_batch

__all__ = [
    "BatchQueryEngine",
    "ENGINE_MODES",
    "LeafBatch",
    "route_batch",
    "resolve_child_cells",
    "run_sequential",
    "run_threaded",
    "default_worker_count",
]
