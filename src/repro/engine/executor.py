"""Execution strategies for the per-query fallback paths of the batch engine.

Indices without a vectorised path (the traditional baselines, and query types
whose algorithms are inherently adaptive, like the RSMI's expanding-region
kNN) still answer a batch one query at a time.  The batch is embarrassingly
parallel, so besides the plain sequential loop an optional thread-pool
strategy is provided; results always come back in input order.

Thread-pool caveat: the per-query block-access counters are incremented
without locking (queries are read-only, the counters are best-effort), so
:class:`~repro.storage.stats.AccessStats` totals under the threaded strategy
are approximate.  Results themselves are unaffected.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["default_worker_count", "run_sequential", "run_threaded"]

T = TypeVar("T")
R = TypeVar("R")


def default_worker_count() -> int:
    """Worker count for the threaded strategy: capped so tiny hosts don't thrash."""
    return max(2, min(8, os.cpu_count() or 2))


def run_sequential(fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
    """Apply ``fn`` to every item, in order, on the calling thread."""
    return [fn(item) for item in items]


def run_threaded(fn: Callable[[T], R], items: Sequence[T], n_workers: int | None = None) -> list[R]:
    """Apply ``fn`` to every item on a thread pool; results keep input order."""
    items = list(items)
    if not items:
        return []
    workers = n_workers if n_workers is not None else default_worker_count()
    workers = max(1, min(workers, len(items)))
    if workers == 1:
        return run_sequential(fn, items)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))
