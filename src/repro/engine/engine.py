"""The batched query execution engine.

:class:`BatchQueryEngine` accepts whole arrays of point / window / kNN
queries and executes them with as little per-query Python overhead as the
underlying index allows:

* **RSMI** point and (approximate) window queries run *level-synchronously*:
  the batch is pushed through the model hierarchy with one vectorised NumPy
  call per touched internal node (:mod:`repro.engine.routing`), leaf models
  predict whole query groups at once, and every touched data block is scanned
  **once per batch** instead of once per query.
* Query types without a vectorisable algorithm (the RSMI's adaptive
  expanding-region kNN, the exact MBR-traversal variants) and the traditional
  baseline indices fall back to a uniform per-query path, optionally spread
  over a thread pool (:mod:`repro.engine.executor`).

The engine produces results **identical** to the sequential query paths — the
differential harness in ``tests/test_engine_differential.py`` asserts exact
agreement across every index type — while touching each storage block at most
once per batch, which is where the batched speedup comes from.

The engine works against anything exposing the common query surface: a raw
:class:`~repro.core.rsmi.RSMI`, a baseline
:class:`~repro.baselines.interface.SpatialIndex`, or an evaluation
:class:`~repro.evaluation.adapters.IndexAdapter` (adapters wrapping an RSMI
are unwrapped so the vectorised path applies to them too).
"""

from __future__ import annotations

import time

import numpy as np

from repro.analytics.ops import (
    QueryRequest,
    QueryResult,
    warn_deprecated_entry_point,
)
from repro.core.batch import (
    BatchResult,
    contains_callable,
    latency_from_durations,
    latency_uniform,
)
from repro.core.rsmi import _outward_positions
from repro.core.window import window_corner_points
from repro.engine.executor import run_sequential, run_threaded
from repro.engine.routing import route_batch
from repro.geometry import Rect
from repro.storage import hilbert_sort_order, make_page_cache

__all__ = ["BatchQueryEngine", "ENGINE_MODES"]

#: recognised execution modes
ENGINE_MODES = ("auto", "vectorized", "sequential", "threaded")

_EMPTY = np.empty((0, 2), dtype=float)


def _scatter(grouped: list, order) -> list:
    """Undo a batch permutation: ``grouped[i]`` answers query ``order[i]``."""
    results = [None] * len(grouped)
    for spot, value in zip(order.tolist(), grouped):
        results[spot] = value
    return results


class BatchQueryEngine:
    """Execute query batches against one index.

    Parameters
    ----------
    index:
        The index to query: an RSMI, a baseline index, or an evaluation
        adapter.
    mode:
        ``"auto"`` (default) uses the vectorised path wherever one exists and
        the per-query fallback elsewhere; ``"vectorized"`` requires an
        RSMI-backed index (raises otherwise); ``"sequential"`` forces the
        per-query path; ``"threaded"`` runs the per-query path on a thread
        pool (block-access counters become approximate, results do not).
    n_workers:
        Thread-pool width for ``"threaded"`` mode (default: a small
        CPU-count-derived cap).
    cache_blocks / cache_policy:
        When ``cache_blocks`` is a positive number, a
        :class:`~repro.storage.PageCache` of that capacity (replacement
        ``cache_policy``, ``"lru"`` or ``"clock"``) is attached to the
        index: reads served from the cache stop counting as physical block
        accesses while the logical counters — and therefore every answer —
        stay identical.  The cache persists across batches, which is where
        hot working sets pay off.
    shared_pool / pool_client / pool_budget:
        Instead of a private cache, read through a
        :class:`~repro.storage.SharedBufferPool` (mutually exclusive with
        ``cache_blocks``): the index is attached to the pool client named
        ``pool_client`` (auto-named when None) with an optional residency
        ``pool_budget``, so several engines can share one capacity.
    reorder:
        When True, per-query fallback batches are executed in Hilbert-key
        order of their query points (window batches by window centre) and
        results are scattered back to input order.  Queries touching the
        same block neighbourhood run back-to-back, so under a small cache
        each hot page faults once per batch instead of once per revisit.
        Answers are byte-identical either way (asserted by the differential
        tests); the vectorised RSMI paths already touch every block once
        per batch and ignore the flag.

    Every query method resets the index's :class:`AccessStats` (when present)
    and reports the batch's total logical and physical block/node reads on
    the returned :class:`~repro.core.batch.BatchResult`, so speedups stay
    attributable to saved block accesses.
    """

    def __init__(
        self,
        index,
        mode: str = "auto",
        n_workers: int | None = None,
        cache_blocks: int | None = None,
        cache_policy: str = "lru",
        shared_pool=None,
        pool_client: str | None = None,
        pool_budget: int | None = None,
        reorder: bool = False,
    ):
        if mode not in ENGINE_MODES:
            raise ValueError(f"unknown engine mode {mode!r}; available: {ENGINE_MODES}")
        self.index = index
        self.mode = mode
        self.n_workers = n_workers
        self.reorder = bool(reorder)
        cache = make_page_cache(cache_blocks, cache_policy)
        if cache is not None and shared_pool is not None:
            raise ValueError("pass either cache_blocks or shared_pool, not both")
        if shared_pool is not None:
            name = pool_client if pool_client is not None else f"engine-{len(shared_pool.clients())}"
            cache = shared_pool.client(name, pool_budget)
        if cache is not None:
            attach = getattr(index, "attach_cache", None)
            if attach is None:
                raise ValueError(
                    f"{type(index).__name__} does not support page caches "
                    "(no attach_cache method)"
                )
            attach(cache)
        #: the index's page cache after construction (None when uncached)
        self.cache = cache if cache is not None else getattr(index, "cache", None)

        target = getattr(index, "wrapped", index)
        is_rsmi_like = (
            hasattr(target, "route_to_leaf")
            and hasattr(target, "store")
            and hasattr(target, "config")
        )
        #: the underlying RSMI when the vectorised path applies, else None
        self._rsmi = target if is_rsmi_like else None
        #: adapters for the exact (RSMIa) variants answer window/kNN queries
        #: through a different algorithm, so those fall back to per-query mode
        self._exact_variant = bool(getattr(index, "prefers_exact_queries", False))
        if mode == "vectorized" and self._rsmi is None:
            raise ValueError(
                f"mode='vectorized' requires an RSMI-backed index, got {type(index).__name__}"
            )

    # ------------------------------------------------------------------ queries --

    def execute(self, request: QueryRequest) -> QueryResult:
        """Execute one :class:`~repro.analytics.ops.QueryRequest`.

        The canonical entry point: every operation kind — ``point``,
        ``window``, ``knn`` and the push-down ``aggregate`` operators —
        flows through here and returns a
        :class:`~repro.analytics.ops.QueryResult` with per-op values in
        request order plus one unified
        :class:`~repro.storage.stats.AccessSummary`.
        """
        if request.kind == "point":
            return QueryResult.from_batch("point", self._run_points(request.points))
        if request.kind == "window":
            return QueryResult.from_batch("window", self._run_windows(request.windows))
        if request.kind == "knn":
            return QueryResult.from_batch("knn", self._run_knn(request.points, request.k))
        return QueryResult.from_batch(
            "aggregate", self._run_aggregates(request.aggregates)
        )

    def point_queries(self, points: np.ndarray) -> BatchResult:
        """Deprecated shim over :meth:`execute`; use
        ``execute(QueryRequest.for_points(...))`` in new code."""
        warn_deprecated_entry_point(
            "BatchQueryEngine.point_queries", "execute(QueryRequest.for_points(...))"
        )
        return self._run_points(points)

    def window_queries(self, windows) -> BatchResult:
        """Deprecated shim over :meth:`execute`; use
        ``execute(QueryRequest.for_windows(...))`` in new code."""
        warn_deprecated_entry_point(
            "BatchQueryEngine.window_queries", "execute(QueryRequest.for_windows(...))"
        )
        return self._run_windows(windows)

    def knn_queries(self, queries: np.ndarray, k: int) -> BatchResult:
        """Deprecated shim over :meth:`execute`; use
        ``execute(QueryRequest.for_knn(...))`` in new code."""
        warn_deprecated_entry_point(
            "BatchQueryEngine.knn_queries", "execute(QueryRequest.for_knn(...))"
        )
        return self._run_knn(queries, k)

    def _run_points(self, points: np.ndarray) -> BatchResult:
        """Membership of every row of ``points``; results are booleans in input order."""
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        stats = self._reset_stats()
        if self._vectorizes("point") and points.shape[0] > 0:
            started = time.perf_counter()
            found = self._point_batch_vectorized(points)
            latency = latency_uniform(time.perf_counter() - started, points.shape[0])
        else:
            order = self._batch_order(points)
            if order is None:
                found, durations = self._point_batch_fallback(points)
            else:
                grouped, durations = self._point_batch_fallback(points[order])
                found = _scatter(grouped, order)
            latency = latency_from_durations(durations)
        return BatchResult(
            results=found,
            total_block_accesses=self._total_reads(stats),
            total_physical_accesses=self._physical_reads(stats),
            latency=latency,
        )

    def _run_windows(self, windows) -> BatchResult:
        """Window queries; each result is an ``(m, 2)`` point array in input order."""
        windows = list(windows)
        stats = self._reset_stats()
        if self._vectorizes("window") and windows:
            started = time.perf_counter()
            results = self._window_batch_vectorized(windows)
            latency = latency_uniform(time.perf_counter() - started, len(windows))
        else:
            centers = np.asarray(
                [((w.xlo + w.xhi) / 2.0, (w.ylo + w.yhi) / 2.0) for w in windows],
                dtype=float,
            ).reshape(-1, 2)
            order = self._batch_order(centers)
            if order is None:
                results, durations = self._window_batch_fallback(windows)
            else:
                grouped, durations = self._window_batch_fallback(
                    [windows[i] for i in order.tolist()]
                )
                results = _scatter(grouped, order)
            latency = latency_from_durations(durations)
        return BatchResult(
            results=results,
            total_block_accesses=self._total_reads(stats),
            total_physical_accesses=self._physical_reads(stats),
            latency=latency,
        )

    def _run_knn(self, queries: np.ndarray, k: int) -> BatchResult:
        """kNN queries; each result is a ``(k, 2)`` point array in input order.

        The RSMI's Algorithm 3 adapts its search region per query (the region
        depends on the distances found so far), so no level-synchronous
        formulation exists; every index answers kNN batches through the
        uniform per-query path (threaded when the engine is in threaded mode).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        queries = np.asarray(queries, dtype=float).reshape(-1, 2)
        stats = self._reset_stats()

        def one(row) -> np.ndarray:
            answer = self.index.knn_query(float(row[0]), float(row[1]), k)
            return answer.points if hasattr(answer, "points") else answer

        order = self._batch_order(queries)
        if order is None:
            results, durations = self._run_fallback(one, list(queries))
        else:
            grouped, durations = self._run_fallback(one, list(queries[order]))
            results = _scatter(grouped, order)
        return BatchResult(
            results=results,
            total_block_accesses=self._total_reads(stats),
            total_physical_accesses=self._physical_reads(stats),
            latency=latency_from_durations(durations),
        )

    # ----------------------------------------------------------------- aggregates --

    def _run_aggregates(self, specs) -> BatchResult:
        """Aggregate operators; each result is an ``AggregateOutcome``."""
        specs = list(specs)
        stats = self._reset_stats()
        partials, latency = self._aggregate_batch(specs)
        results = [spec.finalize(partial) for spec, partial in zip(specs, partials)]
        return BatchResult(
            results=results,
            total_block_accesses=self._total_reads(stats),
            total_physical_accesses=self._physical_reads(stats),
            latency=latency,
        )

    def aggregate_partials(self, specs) -> BatchResult:
        """Per-spec **unfinalised** partials, for upstream merging.

        The push-down surface: the sharded engine and the serving workers
        call this instead of ``execute`` so one partial per spec — not a
        point set — crosses the shard/process boundary; the caller merges
        partials in shard-id order and finalises once.  ``results`` holds
        the partial objects; accounting matches a window batch over the
        same windows.
        """
        specs = list(specs)
        stats = self._reset_stats()
        partials, latency = self._aggregate_batch(specs)
        return BatchResult(
            results=partials,
            total_block_accesses=self._total_reads(stats),
            total_physical_accesses=self._physical_reads(stats),
            latency=latency,
        )

    def _aggregate_batch(self, specs) -> tuple[list, object]:
        """One partial per spec plus the batch's latency summary."""
        if self._vectorizes("window") and specs:
            started = time.perf_counter()
            partials = self._aggregate_batch_vectorized(specs)
            return partials, latency_uniform(time.perf_counter() - started, len(specs))
        centers = np.asarray(
            [
                (
                    (s.window.xlo + s.window.xhi) / 2.0,
                    (s.window.ylo + s.window.yhi) / 2.0,
                )
                for s in specs
            ],
            dtype=float,
        ).reshape(-1, 2)
        order = self._batch_order(centers)
        if order is None:
            partials, durations = self._aggregate_batch_fallback(specs)
        else:
            grouped, durations = self._aggregate_batch_fallback(
                [specs[i] for i in order.tolist()]
            )
            partials = _scatter(grouped, order)
        return partials, latency_from_durations(durations)

    def _aggregate_batch_vectorized(self, specs) -> list:
        """Block-level push-down over the RSMI store.

        Routes every spec's window exactly like the vectorised window batch
        (same corner routing, same block ranges, blocks read once per
        batch), but folds each touched block's in-window points straight
        into the spec's partial — no per-window point set is built.
        """
        cache: dict[int, tuple[np.ndarray, set]] = {}
        windows = [spec.window for spec in specs]
        partials = []
        for spec, (begin, end) in zip(specs, self._window_block_ranges(windows, cache)):
            partial = spec.new_partial()
            for position in range(begin, end + 1):
                points = self._position_points(position, cache)
                if points.shape[0] == 0:
                    continue
                inside = points[spec.window.contains_points(points)]
                if inside.shape[0]:
                    spec.fold(partial, inside)
            partials.append(partial)
        return partials

    def _aggregate_batch_fallback(self, specs):
        """Per-query aggregates for indices without the vectorised path.

        The window scan itself is whatever the index answers a window query
        with (exact traversal for the RSMIa variants, node-based traversal
        for the baselines); its result folds into the partial immediately,
        so only the partial survives the query.
        """

        def one(spec):
            answer = self.index.window_query(spec.window)
            points = answer.points if hasattr(answer, "points") else answer
            return spec.fold(spec.new_partial(), points)

        return self._run_fallback(one, specs)

    # ------------------------------------------------------------ vectorised paths --

    def _point_batch_vectorized(self, points: np.ndarray) -> list[bool]:
        """Level-synchronous point-query batch over the RSMI.

        Equivalent to running Algorithm 1 per query: each query's error-bound
        block range is examined, but every touched block chain is read once
        per batch and turned into a hashed point set, so membership checks
        are O(1) instead of re-scanning blocks per query.
        """
        rsmi = self._rsmi
        found = [False] * points.shape[0]
        cache: dict[int, tuple[np.ndarray, set]] = {}
        for batch in route_batch(rsmi, points):
            begins, ends = batch.leaf.scan_ranges(points[batch.indices])
            for qi, begin, end in zip(batch.indices.tolist(), begins.tolist(), ends.tolist()):
                key = (points[qi, 0], points[qi, 1])
                for position in range(begin, end + 1):
                    if key in self._position_members(position, cache):
                        found[qi] = True
                        break
        return found

    def _window_batch_vectorized(self, windows: list[Rect]) -> list[np.ndarray]:
        """Level-synchronous approximate window-query batch (Algorithm 2).

        All corner points of all windows route through the hierarchy as one
        batch; each window's block range is then derived exactly as in the
        sequential :func:`~repro.core.window.window_block_range` (located
        corners pin the range, unlocated corners widen it by the leaf error
        bounds), and the union of touched blocks is scanned once.
        """
        cache: dict[int, tuple[np.ndarray, set]] = {}
        results: list[np.ndarray] = []
        for window, (begin, end) in zip(windows, self._window_block_ranges(windows, cache)):
            chunks = [
                self._position_points(position, cache) for position in range(begin, end + 1)
            ]
            candidates = np.vstack(chunks) if chunks else _EMPTY
            if candidates.shape[0] == 0:
                results.append(_EMPTY.copy())
                continue
            results.append(candidates[window.contains_points(candidates)])
        return results

    def _window_block_ranges(
        self, windows: list[Rect], cache: dict
    ) -> list[tuple[int, int]]:
        """Each window's inclusive block-position range (vectorised routing).

        Shared by the window batch (which materialises the filtered points)
        and the aggregate batch (which folds each block into a partial
        instead) so both touch the identical block set.
        """
        rsmi = self._rsmi
        corner_lists = [window_corner_points(window, rsmi.config.curve) for window in windows]
        corner_counts = [len(corners) for corners in corner_lists]
        corners = np.asarray(
            [corner for corners in corner_lists for corner in corners], dtype=float
        ).reshape(-1, 2)

        lower = np.empty(corners.shape[0], dtype=np.int64)
        upper = np.empty(corners.shape[0], dtype=np.int64)
        for batch in route_batch(rsmi, corners):
            leaf = batch.leaf
            predicted = leaf.predict_positions(corners[batch.indices])
            begins = np.maximum(leaf.first_position, predicted - leaf.err_below)
            ends = np.minimum(leaf.last_position, predicted + leaf.err_above)
            for qi, pred, begin, end in zip(
                batch.indices.tolist(), predicted.tolist(), begins.tolist(), ends.tolist()
            ):
                key = (corners[qi, 0], corners[qi, 1])
                located = None
                for position in _outward_positions(pred, begin, end):
                    if key in self._position_members(position, cache):
                        located = position
                        break
                if located is not None:
                    lower[qi] = upper[qi] = located
                else:
                    lower[qi] = begin
                    upper[qi] = end

        ranges: list[tuple[int, int]] = []
        offset = 0
        for count in corner_counts:
            begin = rsmi.store.clamp_position(int(lower[offset : offset + count].min()))
            end = rsmi.store.clamp_position(int(upper[offset : offset + count].max()))
            offset += count
            if begin > end:
                begin, end = end, begin
            ranges.append((begin, end))
        return ranges

    # ----------------------------------------------------------- block-batch cache --

    def _load_position(
        self, position: int, cache: dict[int, tuple[np.ndarray, set]]
    ) -> tuple[np.ndarray, set]:
        """Read one base block chain (once per batch) into array + hashed forms.

        The array keeps the points in chain order (base block then overflow
        blocks, live points in slot order), matching what the sequential scan
        would concatenate, so batched window results preserve the sequential
        result order exactly.
        """
        entry = cache.get(position)
        if entry is None:
            chunks = [block.points() for block in self._rsmi.store.iter_chain(position)]
            points = np.vstack(chunks) if chunks else _EMPTY
            entry = (points, set(map(tuple, points)))
            cache[position] = entry
        return entry

    def _position_points(self, position: int, cache) -> np.ndarray:
        return self._load_position(position, cache)[0]

    def _position_members(self, position: int, cache) -> set:
        return self._load_position(position, cache)[1]

    # ------------------------------------------------------------- fallback paths --

    def _point_batch_fallback(self, points: np.ndarray):
        contains = contains_callable(self.index)

        def one(row) -> bool:
            return bool(contains(float(row[0]), float(row[1])))

        return self._run_fallback(one, list(points))

    def _window_batch_fallback(self, windows: list[Rect]):
        def one(window: Rect) -> np.ndarray:
            answer = self.index.window_query(window)
            return answer.points if hasattr(answer, "points") else answer

        return self._run_fallback(one, windows)

    def _run_fallback(self, fn, items: list) -> tuple[list, list[float]]:
        """Run the per-query path, returning results plus per-query wall times.

        Durations are appended as queries finish, so in threaded mode their
        order does not match the item order — irrelevant for percentile
        summaries, which are order-free.
        """
        durations: list[float] = []

        def timed(item):
            started = time.perf_counter()
            out = fn(item)
            durations.append(time.perf_counter() - started)
            return out

        if self.mode == "threaded":
            return run_threaded(timed, items, self.n_workers), durations
        return run_sequential(timed, items), durations

    # ------------------------------------------------------------------- plumbing --

    def _batch_order(self, keys: np.ndarray) -> np.ndarray | None:
        """Hilbert-key permutation grouping a fallback batch by predicted
        block neighbourhood; None when reordering is off or pointless."""
        if not self.reorder or keys.shape[0] < 2:
            return None
        return hilbert_sort_order(keys)

    def _vectorizes(self, operation: str) -> bool:
        """True when ``operation`` should take the vectorised RSMI path."""
        if self.mode in ("sequential", "threaded"):
            return False
        if self._rsmi is None:
            return False
        if operation == "window" and self._exact_variant:
            return False
        return operation in ("point", "window")

    def _reset_stats(self):
        stats = getattr(self.index, "stats", None)
        if stats is not None:
            stats.reset()
        return stats

    @staticmethod
    def _total_reads(stats) -> int | None:
        return stats.total_reads if stats is not None else None

    @staticmethod
    def _physical_reads(stats) -> int | None:
        return getattr(stats, "physical_reads", None) if stats is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = "vectorized" if self._rsmi is not None else "fallback"
        return (
            f"BatchQueryEngine(index={type(self.index).__name__}, "
            f"mode={self.mode!r}, backing={backing})"
        )
