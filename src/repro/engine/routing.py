"""Level-synchronous batched routing through the RSMI model hierarchy.

The sequential point query descends the tree once per query, invoking every
partitioning model on a single ``(1, 2)`` input.  Routing a whole batch
level-synchronously instead groups the queries by the internal node they are
currently at and invokes each node's partitioning model **once** on the whole
group — the per-query Python recursion collapses into one vectorised NumPy
call per touched internal node.

The grouping must agree exactly with :meth:`InternalNode.route`: the
predicted cell's child is used when it exists, otherwise the child with the
nearest cell value, ties broken towards the smaller cell value (``min`` over
the sorted keys returns the first minimiser).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LeafBatch", "resolve_child_cells", "route_batch"]


@dataclass
class LeafBatch:
    """The queries of one batch that route to the same leaf model.

    Attributes
    ----------
    leaf:
        The :class:`~repro.core.leaf_model.LeafModel` all these queries reach.
    indices:
        Positions (into the batch's query array) of the queries in this group.
    depth:
        Number of sub-models invoked root-to-leaf (matches the ``depth``
        returned by :meth:`RSMI.route_to_leaf`).
    """

    leaf: object
    indices: np.ndarray
    depth: int


def resolve_child_cells(node, points: np.ndarray) -> np.ndarray:
    """Child cell value each row of ``points`` routes to at ``node``.

    One vectorised partitioning-model call predicts the cells of the whole
    group; predictions without a matching child snap to the nearest existing
    cell value (ties towards the smaller value, as in ``InternalNode.route``).
    """
    predicted = node.partitioning.predict_cells(points[:, 0], points[:, 1])
    keys = np.asarray(getattr(node, "_sorted_keys", None) or sorted(node.children), dtype=np.int64)
    if keys.size == 0:
        raise RuntimeError("internal node has no children")
    pos = np.searchsorted(keys, predicted)
    left = np.clip(pos - 1, 0, keys.size - 1)
    right = np.clip(pos, 0, keys.size - 1)
    distance_left = np.abs(keys[left] - predicted)
    distance_right = np.abs(keys[right] - predicted)
    return np.where(distance_left <= distance_right, keys[left], keys[right])


def route_batch(index, points: np.ndarray) -> list[LeafBatch]:
    """Route every row of ``points`` to its leaf model, level-synchronously.

    Returns one :class:`LeafBatch` per distinct leaf reached.  Every query
    appears in exactly one batch, and the leaf (and depth) each query is
    assigned to is identical to what ``index.route_to_leaf`` would return for
    it — only the number of model invocations differs (one per touched node
    instead of one per query per node).
    """
    index._require_built()
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    n = points.shape[0]
    leaves: list[LeafBatch] = []
    if n == 0:
        return leaves
    # worklist of (node, query indices at that node, internal nodes above it)
    work: list[tuple[object, np.ndarray, int]] = [(index.root, np.arange(n), 0)]
    while work:
        node, indices, n_internal = work.pop()
        if node.is_leaf:
            leaves.append(LeafBatch(leaf=node, indices=indices, depth=n_internal + 1))
            continue
        resolved = resolve_child_cells(node, points[indices])
        for cell in np.unique(resolved):
            subset = indices[resolved == cell]
            work.append((node.children[int(cell)], subset, n_internal + 1))
    return leaves
