"""Benchmark regenerating Figure 10 (window query cost and recall vs. distribution)."""


def test_fig10_window_distribution(run_experiment, repro_profile):
    result = run_experiment("fig10")
    assert result.rows, "no rows produced"
    for distribution in repro_profile.distributions:
        rows = result.rows_where("distribution", distribution)
        recalls = {row[1]: row[4] for row in rows}
        # exact indices return the full answer
        for exact_index in ("Grid", "HRR", "KDB", "RR*", "RSMIa"):
            assert recalls[exact_index] == 1.0, (distribution, exact_index, recalls)
        # the approximate learned indices keep a usable recall (paper: > 0.87)
        assert recalls["RSMI"] >= 0.6, (distribution, recalls)
        assert recalls["ZM"] >= 0.6, (distribution, recalls)
