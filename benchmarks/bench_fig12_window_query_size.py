"""Benchmark regenerating Figure 12 (window query cost and recall vs. window size)."""


def test_fig12_window_query_size(run_experiment, repro_profile):
    result = run_experiment("fig12")
    assert result.rows, "no rows produced"
    # block accesses grow (weakly) with the window size for the exact tree indices
    fractions = sorted(repro_profile.window_area_fractions)
    for index_name in ("HRR", "KDB"):
        series = []
        for fraction in fractions:
            rows = result.rows_where("window_area_fraction", fraction)
            series.append({row[1]: row[3] for row in rows}[index_name])
        assert series[0] <= series[-1] * 1.5, (index_name, series)
    # RSMI recall stays usable even at the largest window
    largest = result.rows_where("window_area_fraction", fractions[-1])
    recalls = {row[1]: row[4] for row in largest}
    assert recalls["RSMI"] >= 0.6, recalls
