"""Micro-benchmarks of the core RSMI operations.

Unlike the experiment benchmarks (which regenerate whole paper figures in a
single round), these measure individual operations — index construction,
point query, window query, kNN query — with pytest-benchmark's normal
statistics so regressions in the hot paths are visible.

The query benchmarks run each workload in both the **sequential** per-query
mode and the **batched** mode (:class:`repro.engine.BatchQueryEngine`) and
record queries/second plus the :class:`AccessStats` block-access totals in
``extra_info``, so a batched speedup is attributable to the blocks it stopped
re-reading.  ``test_point_query_batched_speedup`` additionally asserts the
engine's headline win — ≥3× point-query throughput over the sequential path
on a large uniform data set (100k points by default; override with
``REPRO_BENCH_THROUGHPUT_N``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analytics import QueryRequest
from repro.core import RSMI, RSMIConfig
from repro.datasets import dataset_by_name
from repro.engine import BatchQueryEngine
from repro.geometry import Rect
from repro.nn import TrainingConfig
from repro.queries import generate_point_queries, generate_window_queries


N_POINTS = 4_000
CONFIG = RSMIConfig(
    block_capacity=25,
    partition_threshold=500,
    training=TrainingConfig(epochs=30),
)

THROUGHPUT_N = int(os.environ.get("REPRO_BENCH_THROUGHPUT_N", "100000"))
THROUGHPUT_QUERIES = 2_000


@pytest.fixture(scope="module")
def skewed_points():
    return dataset_by_name("skewed", N_POINTS, seed=3)


@pytest.fixture(scope="module")
def built_index(skewed_points):
    return RSMI(CONFIG).build(skewed_points)


def _record_query_stats(benchmark, index, mode: str, n_queries: int) -> None:
    """Attach attribution data: executed mode, workload size, block accesses."""
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["n_queries"] = n_queries
    benchmark.extra_info["block_accesses"] = index.stats.total_reads
    mean = benchmark.stats.stats.mean if benchmark.stats is not None else None
    if mean:
        benchmark.extra_info["queries_per_second"] = round(n_queries / mean, 1)


def test_rsmi_build(benchmark, skewed_points):
    index = benchmark.pedantic(
        lambda: RSMI(CONFIG).build(skewed_points), iterations=1, rounds=1, warmup_rounds=0
    )
    assert index.n_points == N_POINTS


def test_rsmi_point_query_sequential(benchmark, built_index, skewed_points):
    queries = skewed_points[:200]

    def run():
        built_index.stats.reset()
        return sum(built_index.contains(float(x), float(y)) for x, y in queries)

    found = benchmark(run)
    assert found == len(queries)
    _record_query_stats(benchmark, built_index, "sequential", len(queries))


def test_rsmi_point_query_batched(benchmark, built_index, skewed_points):
    queries = skewed_points[:200]
    engine = BatchQueryEngine(built_index)

    def run():
        return sum(engine.execute(QueryRequest.for_points(queries)).values)

    found = benchmark(run)
    assert found == len(queries)
    _record_query_stats(benchmark, built_index, "batched", len(queries))


def test_rsmi_window_query_sequential(benchmark, built_index):
    window = Rect(0.2, 0.0, 0.4, 0.05)

    def run():
        built_index.stats.reset()
        return built_index.window_query(window)

    result = benchmark(run)
    assert result.count >= 0
    _record_query_stats(benchmark, built_index, "sequential", 1)


def test_rsmi_window_query_batched(benchmark, built_index, skewed_points):
    windows = generate_window_queries(skewed_points, 20, area_fraction=0.001, seed=5)
    engine = BatchQueryEngine(built_index)

    result = benchmark(lambda: engine.execute(QueryRequest.for_windows(windows)))
    assert result.n_queries == len(windows)
    _record_query_stats(benchmark, built_index, "batched", len(windows))


def test_rsmi_knn_query(benchmark, built_index):
    def run():
        built_index.stats.reset()
        return built_index.knn_query(0.35, 0.02, 10)

    result = benchmark(run)
    assert result.count == 10
    _record_query_stats(benchmark, built_index, "sequential", 1)


def test_rsmi_insert_then_delete(benchmark, built_index):
    rng = np.random.default_rng(9)

    def run():
        x, y = rng.random(), rng.random()
        built_index.insert(x, y)
        assert built_index.delete(x, y)

    benchmark(run)


def test_point_query_batched_speedup(benchmark):
    """Acceptance check: batched ≥3× sequential point-query throughput at scale."""
    points = dataset_by_name("uniform", THROUGHPUT_N, seed=7)
    index = RSMI(
        RSMIConfig(
            block_capacity=100,
            partition_threshold=10_000,
            training=TrainingConfig(epochs=30),
        )
    ).build(points)
    queries = generate_point_queries(points, THROUGHPUT_QUERIES, seed=21)
    engine = BatchQueryEngine(index)

    index.stats.reset()
    start = time.perf_counter()
    sequential_found = sum(index.contains(float(x), float(y)) for x, y in queries)
    sequential_s = time.perf_counter() - start
    sequential_accesses = index.stats.total_reads

    def run_batched():
        return sum(engine.execute(QueryRequest.for_points(queries)).values)

    batched_found = benchmark(run_batched)
    assert batched_found == sequential_found == len(queries)

    if benchmark.stats is not None:
        batched_s = benchmark.stats.stats.mean
    else:  # --benchmark-disable: time the batched run directly
        start = time.perf_counter()
        run_batched()
        batched_s = time.perf_counter() - start
    batched_accesses = index.stats.total_reads
    speedup = sequential_s / batched_s
    benchmark.extra_info.update(
        n_points=THROUGHPUT_N,
        n_queries=len(queries),
        sequential_qps=round(len(queries) / sequential_s, 1),
        batched_qps=round(len(queries) / batched_s, 1),
        sequential_block_accesses=sequential_accesses,
        batched_block_accesses=batched_accesses,
        speedup=round(speedup, 2),
    )
    assert speedup >= 3.0, (
        f"batched point queries only {speedup:.2f}x faster than sequential "
        f"({sequential_s:.3f}s vs {batched_s:.3f}s for {len(queries)} queries)"
    )
