"""Micro-benchmarks of the core RSMI operations.

Unlike the experiment benchmarks (which regenerate whole paper figures in a
single round), these measure individual operations — index construction,
point query, window query, kNN query — with pytest-benchmark's normal
statistics so regressions in the hot paths are visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RSMI, RSMIConfig
from repro.datasets import dataset_by_name
from repro.geometry import Rect
from repro.nn import TrainingConfig


N_POINTS = 4_000
CONFIG = RSMIConfig(
    block_capacity=25,
    partition_threshold=500,
    training=TrainingConfig(epochs=30),
)


@pytest.fixture(scope="module")
def skewed_points():
    return dataset_by_name("skewed", N_POINTS, seed=3)


@pytest.fixture(scope="module")
def built_index(skewed_points):
    return RSMI(CONFIG).build(skewed_points)


def test_rsmi_build(benchmark, skewed_points):
    index = benchmark.pedantic(
        lambda: RSMI(CONFIG).build(skewed_points), iterations=1, rounds=1, warmup_rounds=0
    )
    assert index.n_points == N_POINTS


def test_rsmi_point_query(benchmark, built_index, skewed_points):
    queries = skewed_points[:200]

    def run():
        return sum(built_index.contains(float(x), float(y)) for x, y in queries)

    found = benchmark(run)
    assert found == len(queries)


def test_rsmi_window_query(benchmark, built_index):
    window = Rect(0.2, 0.0, 0.4, 0.05)
    result = benchmark(lambda: built_index.window_query(window))
    assert result.count >= 0


def test_rsmi_knn_query(benchmark, built_index):
    result = benchmark(lambda: built_index.knn_query(0.35, 0.02, 10))
    assert result.count == 10


def test_rsmi_insert_then_delete(benchmark, built_index):
    rng = np.random.default_rng(9)

    def run():
        x, y = rng.random(), rng.random()
        built_index.insert(x, y)
        assert built_index.delete(x, y)

    benchmark(run)
