"""Benchmark regenerating Table 3 (impact of the RSMI partition threshold N)."""


def test_table3_partition_threshold(run_experiment, repro_profile):
    result = run_experiment("table3")
    assert len(result.rows) == len(repro_profile.threshold_sweep)
    heights = result.column("height")
    assert all(height >= 1 for height in heights)
    # larger N never yields a taller structure
    assert heights[0] >= heights[-1]
    # every configuration answers point queries with a bounded number of block reads
    assert all(accesses >= 1 for accesses in result.column("point_query_block_accesses"))
