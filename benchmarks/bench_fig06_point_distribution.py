"""Benchmark regenerating Figure 6 (point query cost vs. data distribution)."""


def test_fig6_point_query_distribution(run_experiment, repro_profile):
    result = run_experiment("fig6")
    assert result.rows, "no rows produced"
    for distribution in ("skewed", "osm"):
        rows = result.rows_where("distribution", distribution)
        if not rows:
            continue
        accesses = {row[1]: row[3] for row in rows}
        # shape check: RSMI needs no more block accesses than the other learned
        # index (ZM) on the skewed/clustered data sets.  The paper additionally
        # reports a 5x-77x gap over the Grid File, but that gap only opens up at
        # larger data scales (run with --repro-profile small to observe it).
        assert accesses["RSMI"] <= accesses["ZM"] * 1.15, accesses
        # every index stays within a small constant number of block reads
        assert accesses["RSMI"] < 25, accesses
