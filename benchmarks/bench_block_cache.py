"""Benchmark of the block-cache layer (``repro.storage.page_cache``).

The headline claim, asserted per index kind: on **hotspot point batches** —
95% of queries drawn from a small hot region — a :class:`PageCache` sized at
~10% of the data's block count cuts **physical block reads by >= 3x** while
logical reads (the paper's cost metric) and every answer stay identical.

A sharded companion asserts the same ≥3x reduction through the
:class:`~repro.sharding.ShardedBatchEngine` with per-shard caches, and a
policy comparison reports LRU vs clock hit ratios on the same workload.

The buffer-pool/layout additions assert the tentpole claims of the shared
:class:`~repro.storage.SharedBufferPool` and the Hilbert block layout:

* ``ZMConfig(layout="hilbert")`` answers window batches with **several times
  fewer block reads** than the Morton span scan (``layout_read_reduction``),
  because windows decompose into far fewer contiguous key runs
  (``run_reduction``);
* a hilbert-layout ZM behind a shared pool cuts physical reads on hot
  window batches at least as hard as the point-query headline;
* a TinyLFU pool keeps serving the hot set while one-touch sweeps stream
  through (``scan-thrash``), where an equal-capacity LRU pool collapses;
* one shared pool follows a drifting hotspot across shards, beating the
  same total capacity statically split into per-shard LRU caches.

Results are persisted machine-readably to
``benchmarks/results/BENCH_cache.json`` so the perf trajectory of the cache
layer can be tracked across commits.  Override the data size with
``REPRO_BENCH_CACHE_N``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from conftest import record_bench_result
from repro.analytics import QueryRequest
from repro.baselines import HRRTree, KDBTree, ZMConfig, ZMIndex
from repro.curves import curve_by_name
from repro.datasets import dataset_by_name
from repro.engine import BatchQueryEngine
from repro.geometry import Rect
from repro.nn import TrainingConfig
from repro.sharding import ShardedBatchEngine, ShardedSpatialIndex, shard_index_factory
from repro.storage import PageCache, SharedBufferPool, window_key_runs

CACHE_N = int(os.environ.get("REPRO_BENCH_CACHE_N", "20000"))
BLOCK_CAPACITY = 50
N_QUERIES = 2_000
HOT_FRACTION = 0.95
HOT_EXTENT = 0.06
#: cache sized to ~10% of the data's block count
CACHE_FRACTION = 0.10
MIN_REDUCTION = 3.0

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_cache.json"


def _hotspot_point_queries(points: np.ndarray, n: int, seed: int) -> np.ndarray:
    """Point-query batch: HOT_FRACTION stored keys from one tiny region, the
    rest stored keys from anywhere (all hits, so every index does full work)."""
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0.2, 0.8 - HOT_EXTENT, size=2)
    hot_mask = (
        (points[:, 0] >= lo[0]) & (points[:, 0] <= lo[0] + HOT_EXTENT)
        & (points[:, 1] >= lo[1]) & (points[:, 1] <= lo[1] + HOT_EXTENT)
    )
    hot_pool = points[hot_mask]
    if hot_pool.shape[0] == 0:  # pragma: no cover - uniform data always populates it
        hot_pool = points[:10]
    n_hot = int(n * HOT_FRACTION)
    hot = hot_pool[rng.integers(0, hot_pool.shape[0], size=n_hot)]
    cold = points[rng.integers(0, points.shape[0], size=n - n_hot)]
    queries = np.vstack([hot, cold])
    rng.shuffle(queries)
    return queries


@pytest.fixture(scope="module")
def workload():
    points = dataset_by_name("uniform", CACHE_N, seed=3)
    queries = _hotspot_point_queries(points, N_QUERIES, seed=17)
    return points, queries


def _build(kind: str, points: np.ndarray):
    if kind == "KDB":
        return KDBTree(block_capacity=BLOCK_CAPACITY).build(points)
    if kind == "HRR":
        return HRRTree(block_capacity=BLOCK_CAPACITY).build(points)
    return ZMIndex(
        ZMConfig(block_capacity=BLOCK_CAPACITY, training=TrainingConfig(epochs=25))
    ).build(points)


def _record(name: str, payload: dict) -> None:
    record_bench_result(RESULTS_PATH.name, name, payload, canonical=CACHE_N == 20000)


@pytest.mark.parametrize("kind", ["KDB", "HRR", "ZM"])
def test_cache_cuts_physical_reads_on_hotspot_batches(benchmark, workload, kind):
    """Headline: >= 3x fewer physical reads at a cache ~10% of the block count."""
    points, queries = workload
    n_blocks = max(1, points.shape[0] // BLOCK_CAPACITY)
    cache_blocks = max(1, int(CACHE_FRACTION * n_blocks))

    index = _build(kind, points)
    uncached = BatchQueryEngine(index).execute(QueryRequest.for_points(queries))
    assert uncached.access.physical_reads == uncached.access.logical_reads

    cached_engine = BatchQueryEngine(index, cache_blocks=cache_blocks)
    cached = cached_engine.execute(QueryRequest.for_points(queries))

    # answers and logical accounting must be byte-identical with the cache on
    assert cached.values == uncached.values
    assert all(cached.values)  # every query probes a stored key
    assert cached.access.logical_reads == uncached.access.logical_reads

    reduction = uncached.access.physical_reads / max(cached.access.physical_reads, 1)
    payload = {
        "n_points": points.shape[0],
        "n_queries": len(queries),
        "block_capacity": BLOCK_CAPACITY,
        "cache_blocks": cache_blocks,
        "cache_policy": "lru",
        "logical_reads": uncached.access.logical_reads,
        "physical_reads_uncached": uncached.access.physical_reads,
        "physical_reads_cached": cached.access.physical_reads,
        "physical_reduction": round(reduction, 2),
        "hit_ratio": round(cached.access.cache_hit_ratio, 4),
    }
    _record(f"hotspot_point_batch/{kind}", payload)
    benchmark.extra_info.update(payload)
    benchmark(lambda: cached_engine.execute(QueryRequest.for_points(queries)))
    assert reduction >= MIN_REDUCTION, (
        f"{kind}: cache of {cache_blocks}/{n_blocks} blocks only cut physical reads "
        f"{reduction:.2f}x (uncached {uncached.access.physical_reads}, "
        f"cached {cached.access.physical_reads})"
    )


def test_sharded_per_shard_caches_cut_physical_reads(benchmark, workload):
    """Per-shard caches reach the same reduction through the sharded engine."""
    points, queries = workload
    n_shards = 4
    n_blocks = max(1, points.shape[0] // BLOCK_CAPACITY)
    per_shard_cache = max(1, int(CACHE_FRACTION * n_blocks) // n_shards)

    factory = shard_index_factory("KDB", block_capacity=BLOCK_CAPACITY)
    index = ShardedSpatialIndex(factory, n_shards=n_shards, policy="grid").build(points)
    uncached = ShardedBatchEngine(index).execute(QueryRequest.for_points(queries))

    cached_engine = ShardedBatchEngine(index, cache_blocks=per_shard_cache)
    cached = cached_engine.execute(QueryRequest.for_points(queries))
    assert cached.values == uncached.values
    assert cached.access.logical_reads == uncached.access.logical_reads

    reduction = uncached.access.physical_reads / max(cached.access.physical_reads, 1)
    payload = {
        "n_points": points.shape[0],
        "n_queries": len(queries),
        "n_shards": n_shards,
        "cache_blocks_per_shard": per_shard_cache,
        "logical_reads": uncached.access.logical_reads,
        "physical_reads_uncached": uncached.access.physical_reads,
        "physical_reads_cached": cached.access.physical_reads,
        "physical_reduction": round(reduction, 2),
        "hit_ratio": round(cached.access.cache_hit_ratio, 4),
    }
    _record("hotspot_point_batch/sharded_KDB", payload)
    benchmark.extra_info.update(payload)
    benchmark(lambda: cached_engine.execute(QueryRequest.for_points(queries)))
    assert reduction >= MIN_REDUCTION, (
        f"sharded KDB: per-shard caches of {per_shard_cache} blocks only cut "
        f"physical reads {reduction:.2f}x"
    )


def test_lru_vs_clock_policies(benchmark, workload):
    """Both policies serve the hotspot working set; report their hit ratios."""
    points, queries = workload
    n_blocks = max(1, points.shape[0] // BLOCK_CAPACITY)
    cache_blocks = max(1, int(CACHE_FRACTION * n_blocks))

    ratios = {}
    baseline_results = None
    for policy in ("lru", "clock"):
        index = _build("KDB", points)
        index.attach_cache(PageCache(cache_blocks, policy))
        batch = BatchQueryEngine(index).execute(QueryRequest.for_points(queries))
        if baseline_results is None:
            baseline_results = batch.values
        else:
            assert batch.values == baseline_results
        ratios[policy] = round(batch.access.cache_hit_ratio, 4)
        # replacement must actually happen: the cache cannot exceed capacity
        assert len(index.cache) <= cache_blocks

    _record("policy_comparison/KDB", {"cache_blocks": cache_blocks, "hit_ratios": ratios})
    benchmark.extra_info.update(hit_ratios=ratios)
    for policy in ("lru", "clock"):
        assert ratios[policy] >= 0.5, f"{policy} hit ratio collapsed: {ratios}"
    index = _build("KDB", points)
    index.attach_cache(PageCache(cache_blocks, "clock"))
    engine = BatchQueryEngine(index)
    benchmark(lambda: engine.execute(QueryRequest.for_points(queries)))


# -- buffer pool + Hilbert layout ------------------------------------------------


def _hotspot_windows(n: int, seed: int, extent: float = 0.03) -> list[Rect]:
    """Window batch clustered in one hot region (plus a cold remainder)."""
    rng = np.random.default_rng(seed)
    hot_lo = rng.uniform(0.2, 0.7, size=2)
    windows = []
    for i in range(n):
        if i < int(n * HOT_FRACTION):
            lo = hot_lo + rng.random(2) * (HOT_EXTENT - extent)
        else:
            lo = rng.random(2) * (1.0 - extent)
        windows.append(Rect(lo[0], lo[1], lo[0] + extent, lo[1] + extent))
    rng.shuffle(windows)
    return windows


def _build_zm(points: np.ndarray, layout: str) -> ZMIndex:
    return ZMIndex(
        ZMConfig(block_capacity=BLOCK_CAPACITY, training=TrainingConfig(epochs=25),
                 layout=layout)
    ).build(points)


def test_hilbert_layout_cuts_window_reads(benchmark, workload):
    """Run-scanning over a Hilbert block layout touches several times fewer
    blocks per window batch than the Morton corner-to-corner span scan."""
    points, _ = workload
    windows = _hotspot_windows(200, seed=23)

    z_index = _build_zm(points, "z")
    h_index = _build_zm(points, "hilbert")
    z_batch = BatchQueryEngine(z_index).execute(QueryRequest.for_windows(windows))
    h_batch = BatchQueryEngine(h_index).execute(QueryRequest.for_windows(windows))

    # the physical order changes, the answers must not
    for a, b in zip(z_batch.values, h_batch.values):
        np.testing.assert_array_equal(np.sort(a, axis=0), np.sort(b, axis=0))

    read_reduction = z_batch.access.logical_reads / max(h_batch.access.logical_reads, 1)
    # the structural reason: windows decompose into far fewer contiguous runs
    z_runs = sum(len(window_key_runs(curve_by_name("z", 10), w, Rect.unit()))
                 for w in windows)
    h_runs = sum(len(window_key_runs(curve_by_name("hilbert", 10), w, Rect.unit()))
                 for w in windows)
    run_reduction = z_runs / max(h_runs, 1)

    payload = {
        "n_points": points.shape[0],
        "n_windows": len(windows),
        "block_capacity": BLOCK_CAPACITY,
        "logical_reads_z": z_batch.access.logical_reads,
        "logical_reads_hilbert": h_batch.access.logical_reads,
        "layout_read_reduction": round(read_reduction, 2),
        "window_runs_z": z_runs,
        "window_runs_hilbert": h_runs,
        "run_reduction": round(run_reduction, 2),
    }
    _record("zm_layout_windows", payload)
    benchmark.extra_info.update(payload)
    engine = BatchQueryEngine(h_index)
    benchmark(lambda: engine.execute(QueryRequest.for_windows(windows)))
    assert read_reduction >= MIN_REDUCTION, (
        f"hilbert layout only cut window block reads {read_reduction:.2f}x "
        f"(z {z_batch.access.logical_reads}, hilbert {h_batch.access.logical_reads})"
    )
    assert run_reduction > 1.3, f"window run counts did not drop: {payload}"


def test_pooled_hilbert_windows_cut_physical_reads(benchmark, workload):
    """The tentpole combination — hilbert layout + shared pool with run
    prefetch — reaches the headline reduction on hot *window* batches too."""
    points, _ = workload
    n_blocks = max(1, points.shape[0] // BLOCK_CAPACITY)
    pool_blocks = max(1, int(CACHE_FRACTION * n_blocks))
    windows = _hotspot_windows(200, seed=29)

    index = _build_zm(points, "hilbert")
    uncached = BatchQueryEngine(index).execute(QueryRequest.for_windows(windows))
    assert uncached.access.physical_reads == uncached.access.logical_reads

    pool = SharedBufferPool(pool_blocks, admission="tinylfu")
    pooled_engine = BatchQueryEngine(index, shared_pool=pool, pool_client="zm")
    pooled = pooled_engine.execute(QueryRequest.for_windows(windows))

    for a, b in zip(pooled.values, uncached.values):
        np.testing.assert_array_equal(np.sort(a, axis=0), np.sort(b, axis=0))
    assert pooled.access.logical_reads == uncached.access.logical_reads

    reduction = uncached.access.physical_reads / max(pooled.access.physical_reads, 1)
    payload = {
        "n_points": points.shape[0],
        "n_windows": len(windows),
        "pool_blocks": pool_blocks,
        "pool_admission": "tinylfu",
        "logical_reads": uncached.access.logical_reads,
        "physical_reads_uncached": uncached.access.physical_reads,
        "physical_reads_cached": pooled.access.physical_reads,
        "physical_reduction": round(reduction, 2),
        "pool_hit_ratio": round(pool.hit_ratio, 4),
        "prefetch_issued": pool.prefetch_issued,
        "prefetch_used": pool.prefetch_used,
    }
    _record("pooled_hilbert_windows/ZM", payload)
    benchmark.extra_info.update(payload)
    benchmark(lambda: pooled_engine.execute(QueryRequest.for_windows(windows)))
    assert reduction >= MIN_REDUCTION, (
        f"pool of {pool_blocks}/{n_blocks} blocks only cut window physical reads "
        f"{reduction:.2f}x"
    )


def test_shared_pool_scan_resistance(benchmark, workload):
    """Scan-thrash: interleave a pool-sized hot working set with full-space
    sweeps.  The metric is **hot-set refaults after each sweep**: an LRU pool
    re-reads the whole hot set every round, the TinyLFU pool rejects the
    one-touch sweep pages and keeps the hot set resident throughout."""
    points, _ = workload
    n_blocks = max(1, points.shape[0] // BLOCK_CAPACITY)
    pool_blocks = max(1, int(CACHE_FRACTION * n_blocks))
    # hot region sized to ~1/3 of the pool: the KDB working set it induces
    # (leaf spread + node pages) then fits comfortably inside the capacity
    extent = min(0.8, np.sqrt((pool_blocks / 3) * BLOCK_CAPACITY / points.shape[0]))
    sweep = Rect(0.0, 0.0, 1.0, 1.0)

    # average over several hot regions: a single region can land on a
    # count-min collision (hash seeds vary per process) and blur the gap
    refaults = {"tinylfu": 0, "lru": 0}
    ratios = {}
    for region_seed in (37, 38, 39):
        rng = np.random.default_rng(region_seed)
        lo = rng.uniform(0.1, 0.9 - extent, size=2)
        mask = (
            (points[:, 0] >= lo[0]) & (points[:, 0] <= lo[0] + extent)
            & (points[:, 1] >= lo[1]) & (points[:, 1] <= lo[1] + extent)
        )
        hot_pool = points[mask]
        chunks = [
            hot_pool[rng.integers(0, hot_pool.shape[0], size=400)] for _ in range(4)
        ]
        for admission in ("tinylfu", "lru"):
            index = _build("KDB", points)
            pool = SharedBufferPool(pool_blocks, admission=admission)
            engine = BatchQueryEngine(index, shared_pool=pool, pool_client="kdb")
            engine.execute(QueryRequest.for_points(chunks[0]))  # warm the hot set
            for chunk in chunks[1:]:
                engine.execute(QueryRequest.for_windows([sweep]))  # one-touch scan of every block
                refaults[admission] += engine.execute(QueryRequest.for_points(chunk)).access.physical_reads
            ratios[admission] = round(pool.hit_ratio, 4)

    advantage = refaults["lru"] / max(refaults["tinylfu"], 1)
    payload = {
        "n_points": points.shape[0],
        "pool_blocks": pool_blocks,
        "hot_refaults_tinylfu": refaults["tinylfu"],
        "hot_refaults_lru": refaults["lru"],
        "scan_advantage": round(advantage, 2),
        "pool_hit_ratio": ratios["tinylfu"],
        "pool_hit_ratio_lru": ratios["lru"],
    }
    _record("scan_thrash_pool/KDB", payload)
    benchmark.extra_info.update(payload)
    index = _build("KDB", points)
    engine = BatchQueryEngine(
        index, shared_pool=SharedBufferPool(pool_blocks), pool_client="kdb"
    )
    benchmark(lambda: engine.execute(QueryRequest.for_points(chunks[1])))
    assert advantage >= 2.0, f"TinyLFU did not resist the sweeps: {payload}"
    assert ratios["tinylfu"] >= ratios["lru"]


def test_shared_pool_follows_drifting_hotspot(benchmark, workload):
    """One shared pool vs the same capacity split into per-shard LRU caches,
    under a hotspot that drifts across all four shards."""
    points, _ = workload
    n_shards = 4
    n_blocks = max(1, points.shape[0] // BLOCK_CAPACITY)
    pool_blocks = max(4, int(CACHE_FRACTION * n_blocks))
    rng = np.random.default_rng(31)

    # per-phase hot batches: stored points from one quadrant's hot region
    phases = []
    for qx, qy in ((0.05, 0.05), (0.55, 0.05), (0.55, 0.55), (0.05, 0.55)):
        mask = (
            (points[:, 0] >= qx) & (points[:, 0] <= qx + 0.25)
            & (points[:, 1] >= qy) & (points[:, 1] <= qy + 0.25)
        )
        pool_points = points[mask]
        phases.append(pool_points[rng.integers(0, pool_points.shape[0], size=600)])

    factory = shard_index_factory("KDB", block_capacity=BLOCK_CAPACITY)

    lru_index = ShardedSpatialIndex(factory, n_shards=n_shards, policy="grid").build(points)
    lru_index.attach_caches(pool_blocks // n_shards, "lru")
    lru_engine = ShardedBatchEngine(lru_index)
    for phase in phases:
        lru_engine.execute(QueryRequest.for_points(phase))
    caches = lru_index.per_shard_caches()
    lru_ratio = sum(c.hits for c in caches) / max(sum(c.accesses for c in caches), 1)

    pool = SharedBufferPool(pool_blocks, admission="tinylfu")
    pool_index = ShardedSpatialIndex(factory, n_shards=n_shards, policy="grid").build(points)
    pool_index.attach_shared_pool(pool)
    pool_engine = ShardedBatchEngine(pool_index)
    for phase in phases:
        pool_engine.execute(QueryRequest.for_points(phase))

    payload = {
        "n_points": points.shape[0],
        "n_shards": n_shards,
        "pool_blocks": pool_blocks,
        "cache_blocks_per_shard": pool_blocks // n_shards,
        "pool_hit_ratio": round(pool.hit_ratio, 4),
        "per_shard_lru_hit_ratio": round(lru_ratio, 4),
        "drift_advantage": round(pool.hit_ratio / max(lru_ratio, 1e-9), 2),
    }
    _record("drifting_pool/sharded_KDB", payload)
    benchmark.extra_info.update(payload)
    benchmark(lambda: pool_engine.execute(QueryRequest.for_points(phases[0])))
    assert pool.hit_ratio > lru_ratio, (
        f"shared pool did not beat static split: {payload}"
    )
