"""Benchmark of the block-cache layer (``repro.storage.page_cache``).

The headline claim, asserted per index kind: on **hotspot point batches** —
95% of queries drawn from a small hot region — a :class:`PageCache` sized at
~10% of the data's block count cuts **physical block reads by >= 3x** while
logical reads (the paper's cost metric) and every answer stay identical.

A sharded companion asserts the same ≥3x reduction through the
:class:`~repro.sharding.ShardedBatchEngine` with per-shard caches, and a
policy comparison reports LRU vs clock hit ratios on the same workload.

Results are persisted machine-readably to
``benchmarks/results/BENCH_cache.json`` so the perf trajectory of the cache
layer can be tracked across commits.  Override the data size with
``REPRO_BENCH_CACHE_N``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from conftest import record_bench_result
from repro.baselines import HRRTree, KDBTree, ZMConfig, ZMIndex
from repro.datasets import dataset_by_name
from repro.engine import BatchQueryEngine
from repro.nn import TrainingConfig
from repro.sharding import ShardedBatchEngine, ShardedSpatialIndex, shard_index_factory
from repro.storage import PageCache

CACHE_N = int(os.environ.get("REPRO_BENCH_CACHE_N", "20000"))
BLOCK_CAPACITY = 50
N_QUERIES = 2_000
HOT_FRACTION = 0.95
HOT_EXTENT = 0.06
#: cache sized to ~10% of the data's block count
CACHE_FRACTION = 0.10
MIN_REDUCTION = 3.0

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_cache.json"


def _hotspot_point_queries(points: np.ndarray, n: int, seed: int) -> np.ndarray:
    """Point-query batch: HOT_FRACTION stored keys from one tiny region, the
    rest stored keys from anywhere (all hits, so every index does full work)."""
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0.2, 0.8 - HOT_EXTENT, size=2)
    hot_mask = (
        (points[:, 0] >= lo[0]) & (points[:, 0] <= lo[0] + HOT_EXTENT)
        & (points[:, 1] >= lo[1]) & (points[:, 1] <= lo[1] + HOT_EXTENT)
    )
    hot_pool = points[hot_mask]
    if hot_pool.shape[0] == 0:  # pragma: no cover - uniform data always populates it
        hot_pool = points[:10]
    n_hot = int(n * HOT_FRACTION)
    hot = hot_pool[rng.integers(0, hot_pool.shape[0], size=n_hot)]
    cold = points[rng.integers(0, points.shape[0], size=n - n_hot)]
    queries = np.vstack([hot, cold])
    rng.shuffle(queries)
    return queries


@pytest.fixture(scope="module")
def workload():
    points = dataset_by_name("uniform", CACHE_N, seed=3)
    queries = _hotspot_point_queries(points, N_QUERIES, seed=17)
    return points, queries


def _build(kind: str, points: np.ndarray):
    if kind == "KDB":
        return KDBTree(block_capacity=BLOCK_CAPACITY).build(points)
    if kind == "HRR":
        return HRRTree(block_capacity=BLOCK_CAPACITY).build(points)
    return ZMIndex(
        ZMConfig(block_capacity=BLOCK_CAPACITY, training=TrainingConfig(epochs=25))
    ).build(points)


def _record(name: str, payload: dict) -> None:
    record_bench_result(RESULTS_PATH.name, name, payload, canonical=CACHE_N == 20000)


@pytest.mark.parametrize("kind", ["KDB", "HRR", "ZM"])
def test_cache_cuts_physical_reads_on_hotspot_batches(benchmark, workload, kind):
    """Headline: >= 3x fewer physical reads at a cache ~10% of the block count."""
    points, queries = workload
    n_blocks = max(1, points.shape[0] // BLOCK_CAPACITY)
    cache_blocks = max(1, int(CACHE_FRACTION * n_blocks))

    index = _build(kind, points)
    uncached = BatchQueryEngine(index).point_queries(queries)
    assert uncached.total_physical_accesses == uncached.total_block_accesses

    cached_engine = BatchQueryEngine(index, cache_blocks=cache_blocks)
    cached = cached_engine.point_queries(queries)

    # answers and logical accounting must be byte-identical with the cache on
    assert cached.results == uncached.results
    assert all(cached.results)  # every query probes a stored key
    assert cached.total_block_accesses == uncached.total_block_accesses

    reduction = uncached.total_physical_accesses / max(cached.total_physical_accesses, 1)
    payload = {
        "n_points": points.shape[0],
        "n_queries": len(queries),
        "block_capacity": BLOCK_CAPACITY,
        "cache_blocks": cache_blocks,
        "cache_policy": "lru",
        "logical_reads": uncached.total_block_accesses,
        "physical_reads_uncached": uncached.total_physical_accesses,
        "physical_reads_cached": cached.total_physical_accesses,
        "physical_reduction": round(reduction, 2),
        "hit_ratio": round(cached.cache_hit_ratio, 4),
    }
    _record(f"hotspot_point_batch/{kind}", payload)
    benchmark.extra_info.update(payload)
    benchmark(lambda: cached_engine.point_queries(queries))
    assert reduction >= MIN_REDUCTION, (
        f"{kind}: cache of {cache_blocks}/{n_blocks} blocks only cut physical reads "
        f"{reduction:.2f}x (uncached {uncached.total_physical_accesses}, "
        f"cached {cached.total_physical_accesses})"
    )


def test_sharded_per_shard_caches_cut_physical_reads(benchmark, workload):
    """Per-shard caches reach the same reduction through the sharded engine."""
    points, queries = workload
    n_shards = 4
    n_blocks = max(1, points.shape[0] // BLOCK_CAPACITY)
    per_shard_cache = max(1, int(CACHE_FRACTION * n_blocks) // n_shards)

    factory = shard_index_factory("KDB", block_capacity=BLOCK_CAPACITY)
    index = ShardedSpatialIndex(factory, n_shards=n_shards, policy="grid").build(points)
    uncached = ShardedBatchEngine(index).point_queries(queries)

    cached_engine = ShardedBatchEngine(index, cache_blocks=per_shard_cache)
    cached = cached_engine.point_queries(queries)
    assert cached.results == uncached.results
    assert cached.total_block_accesses == uncached.total_block_accesses

    reduction = uncached.total_physical_accesses / max(cached.total_physical_accesses, 1)
    payload = {
        "n_points": points.shape[0],
        "n_queries": len(queries),
        "n_shards": n_shards,
        "cache_blocks_per_shard": per_shard_cache,
        "logical_reads": uncached.total_block_accesses,
        "physical_reads_uncached": uncached.total_physical_accesses,
        "physical_reads_cached": cached.total_physical_accesses,
        "physical_reduction": round(reduction, 2),
        "hit_ratio": round(cached.cache_hit_ratio, 4),
    }
    _record("hotspot_point_batch/sharded_KDB", payload)
    benchmark.extra_info.update(payload)
    benchmark(lambda: cached_engine.point_queries(queries))
    assert reduction >= MIN_REDUCTION, (
        f"sharded KDB: per-shard caches of {per_shard_cache} blocks only cut "
        f"physical reads {reduction:.2f}x"
    )


def test_lru_vs_clock_policies(benchmark, workload):
    """Both policies serve the hotspot working set; report their hit ratios."""
    points, queries = workload
    n_blocks = max(1, points.shape[0] // BLOCK_CAPACITY)
    cache_blocks = max(1, int(CACHE_FRACTION * n_blocks))

    ratios = {}
    baseline_results = None
    for policy in ("lru", "clock"):
        index = _build("KDB", points)
        index.attach_cache(PageCache(cache_blocks, policy))
        batch = BatchQueryEngine(index).point_queries(queries)
        if baseline_results is None:
            baseline_results = batch.results
        else:
            assert batch.results == baseline_results
        ratios[policy] = round(batch.cache_hit_ratio, 4)
        # replacement must actually happen: the cache cannot exceed capacity
        assert len(index.cache) <= cache_blocks

    _record("policy_comparison/KDB", {"cache_blocks": cache_blocks, "hit_ratios": ratios})
    benchmark.extra_info.update(hit_ratios=ratios)
    for policy in ("lru", "clock"):
        assert ratios[policy] >= 0.5, f"{policy} hit ratio collapsed: {ratios}"
    index = _build("KDB", points)
    index.attach_cache(PageCache(cache_blocks, "clock"))
    engine = BatchQueryEngine(index)
    benchmark(lambda: engine.point_queries(queries))
