"""Benchmark regenerating Table 4 (prediction error bounds of ZM and RSMI)."""


def test_table4_error_bounds(run_experiment, repro_profile):
    result = run_experiment("table4")
    assert len(result.rows) == 2 * len(repro_profile.distributions)
    for distribution in repro_profile.distributions:
        rows = result.rows_where("distribution", distribution)
        by_index = {row[1]: (row[2], row[3]) for row in rows}
        zm_total = sum(by_index["ZM"])
        rsmi_total = sum(by_index["RSMI"])
        # shape check: RSMI's error bounds are (much) tighter than ZM's
        assert rsmi_total <= zm_total * 1.2, (distribution, by_index)
