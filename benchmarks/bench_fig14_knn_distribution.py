"""Benchmark regenerating Figure 14 (kNN query cost and recall vs. distribution)."""


def test_fig14_knn_distribution(run_experiment, repro_profile):
    result = run_experiment("fig14")
    assert result.rows, "no rows produced"
    for distribution in repro_profile.distributions:
        rows = result.rows_where("distribution", distribution)
        recalls = {row[1]: row[4] for row in rows}
        # exact best-first kNN answers are perfect
        for exact_index in ("Grid", "HRR", "KDB", "RR*", "RSMIa"):
            assert recalls[exact_index] == 1.0, (distribution, exact_index, recalls)
        # approximate learned answers keep a usable recall (paper: > 0.9)
        assert recalls["RSMI"] >= 0.6, (distribution, recalls)
