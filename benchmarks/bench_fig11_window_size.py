"""Benchmark regenerating Figure 11 (window query cost and recall vs. data set size)."""


def test_fig11_window_size(run_experiment, repro_profile):
    result = run_experiment("fig11")
    assert result.rows, "no rows produced"
    for size in repro_profile.size_sweep:
        rows = result.rows_where("n_points", size)
        recalls = {row[1]: row[4] for row in rows}
        assert recalls["RSMIa"] == 1.0
        assert recalls["RSMI"] >= 0.6, (size, recalls)
