"""Benchmark regenerating Figure 13 (window query cost and recall vs. aspect ratio)."""


def test_fig13_window_aspect(run_experiment, repro_profile):
    result = run_experiment("fig13")
    assert len(result.rows) == len(repro_profile.aspect_ratios) * len(repro_profile.index_names)
    for ratio in repro_profile.aspect_ratios:
        rows = result.rows_where("aspect_ratio", ratio)
        recalls = {row[1]: row[4] for row in rows}
        assert recalls["RSMIa"] == 1.0
        assert recalls["RSMI"] >= 0.6, (ratio, recalls)
