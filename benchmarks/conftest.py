"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one paper table/figure at the ``tiny`` scale
profile (override with ``--repro-profile small``), times the full experiment
through pytest-benchmark (one round — these are end-to-end experiment runs,
not micro-benchmarks), prints the regenerated rows and writes them to
``benchmarks/results/<experiment id>.txt``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import EXPERIMENT_REGISTRY, profile_by_name

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-profile",
        action="store",
        default="tiny",
        choices=("tiny", "small", "paper"),
        help="scale profile used by the experiment benchmarks (default: tiny)",
    )


@pytest.fixture(scope="session")
def repro_profile(request):
    return profile_by_name(request.config.getoption("--repro-profile"))


@pytest.fixture
def run_experiment(benchmark, repro_profile):
    """Run a registered experiment once under pytest-benchmark and persist its table."""

    def runner(experiment_id: str):
        spec = EXPERIMENT_REGISTRY[experiment_id]
        result = benchmark.pedantic(
            lambda: spec.run(repro_profile), iterations=1, rounds=1, warmup_rounds=0
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.to_text()
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n", encoding="utf-8")
        print()
        print(text)
        return result

    return runner
