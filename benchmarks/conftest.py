"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one paper table/figure at the ``tiny`` scale
profile (override with ``--repro-profile small``), times the full experiment
through pytest-benchmark (one round — these are end-to-end experiment runs,
not micro-benchmarks), prints the regenerated rows and writes them to
``benchmarks/results/<experiment id>.txt``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import EXPERIMENT_REGISTRY, profile_by_name

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


def record_bench_result(
    file_name: str, name: str, payload: dict, canonical: bool = True
) -> None:
    """Merge one benchmark payload into ``benchmarks/results/<file_name>``.

    When ``canonical`` is true (the benchmark ran at its *default* budget)
    the updated snapshot is also copied to the repo root, where the
    canonical ``BENCH_*.json`` files are committed — ``benchmarks/results/``
    is gitignored, so without the copy the perf trajectory would never be
    tracked in-repo.  Reduced-budget runs (the CI perf gate, local
    ``REPRO_BENCH_*_N`` overrides) only write the results dir, so they can
    never clobber the committed trajectory with off-budget numbers.
    ``tools/check_bench.py`` compares the results-dir file against the
    committed baselines in ``benchmarks/baselines/``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    results_path = RESULTS_DIR / file_name
    existing = {}
    if results_path.exists():
        existing = json.loads(results_path.read_text())
    existing[name] = payload
    text = json.dumps(existing, indent=2, sort_keys=True) + "\n"
    results_path.write_text(text)
    if not canonical:
        return
    try:
        (REPO_ROOT / file_name).write_text(text)
    except OSError:  # pragma: no cover - read-only checkouts still benchmark
        pass


def pytest_addoption(parser):
    parser.addoption(
        "--repro-profile",
        action="store",
        default="tiny",
        choices=("tiny", "small", "paper"),
        help="scale profile used by the experiment benchmarks (default: tiny)",
    )


@pytest.fixture(scope="session")
def repro_profile(request):
    return profile_by_name(request.config.getoption("--repro-profile"))


@pytest.fixture
def run_experiment(benchmark, repro_profile):
    """Run a registered experiment once under pytest-benchmark and persist its table."""

    def runner(experiment_id: str):
        spec = EXPERIMENT_REGISTRY[experiment_id]
        result = benchmark.pedantic(
            lambda: spec.run(repro_profile), iterations=1, rounds=1, warmup_rounds=0
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.to_text()
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n", encoding="utf-8")
        print()
        print(text)
        return result

    return runner
