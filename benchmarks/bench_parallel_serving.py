"""Benchmark of multi-core serving (``repro.serving``).

Three claims, persisted machine-readably to
``benchmarks/results/BENCH_parallel.json`` (mirrored to the committed
repo-root canonical snapshot at the default budget):

* **Identity under parallelism** — a big point-query batch and a window
  batch answered by the process-pool :class:`ParallelShardEngine` at every
  worker count are byte-identical to the single-threaded
  :class:`ShardedBatchEngine`, with *equal logical read accounting* (reads
  are counted per shard by each worker and merged).
* **Scaling** — on a machine with >= 4 cores, the 4-worker pool must
  deliver >= 1.8x the 1-worker batched point throughput.  Raw rates are
  machine-dependent and informational; the *gate* is the committed
  ``speedup_gate_ok`` flag, which hosts below 4 cores satisfy trivially
  (they cannot exhibit multi-core scaling) and >= 4-core hosts must earn.
* **Deterministic admission** — token-bucket admission over the stream's
  virtual arrival instants accepts/drops exactly the same operations on
  every run and machine; the accepted/dropped counts are gated exactly.

Paced open-loop sojourns through the :class:`FrontDoor` are recorded for
trajectory inspection (p99 with 1 vs 4 workers at 1.5x the 1-worker
capacity) but never gated — wall-clock tails are host noise in CI.
Override the data size with ``REPRO_BENCH_PARALLEL_N``.
"""

from __future__ import annotations

import os

import numpy as np

from conftest import record_bench_result
from repro.analytics import QueryRequest
from repro.datasets import dataset_by_name
from repro.geometry import Rect
from repro.nn import TrainingConfig
from repro.serving import FrontDoor, ParallelShardEngine, ServingSpec, admit_operations
from repro.sharding import ShardedBatchEngine, shard_index_factory
from repro.workloads import generate_operations, scenario_by_name

PARALLEL_N = int(os.environ.get("REPRO_BENCH_PARALLEL_N", "20000"))
BLOCK_CAPACITY = 8
N_SHARDS = 4
WORKER_COUNTS = (1, 2, 4)
INDEX_NAME = "Grid"
N_OPS = 600
TENANT_RATE = 400.0
#: fixed offered rate of the admission stream — machine-independent, so the
#: accepted/dropped counts can be gated exactly across hosts
ADMISSION_RATE = 3000.0

RESULTS_FILE = "BENCH_parallel.json"
#: only default-budget runs refresh the committed repo-root snapshot
_CANONICAL = PARALLEL_N == 20000


def _record(name: str, payload: dict) -> None:
    record_bench_result(RESULTS_FILE, name, payload, canonical=_CANONICAL)


def _points():
    return dataset_by_name("skewed", PARALLEL_N, seed=47)


def _serving_spec(points: np.ndarray) -> ServingSpec:
    factory = shard_index_factory(
        INDEX_NAME,
        block_capacity=BLOCK_CAPACITY,
        partition_threshold=2000,
        training=TrainingConfig(epochs=1, seed=47),
    )
    return ServingSpec.from_points(
        factory, points, n_shards=N_SHARDS, policy="grid", name=INDEX_NAME
    )


def _queries(points: np.ndarray, n: int) -> np.ndarray:
    rng = np.random.default_rng(29)
    queries = rng.random((n, 2))
    queries[: n // 2] = points[rng.integers(0, points.shape[0], size=n // 2)]
    return queries


def _identical(got: list, want: list) -> bool:
    if len(got) != len(want):
        return False
    for a, b in zip(got, want):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            a = np.asarray(a, dtype=float).reshape(-1, 2)
            b = np.asarray(b, dtype=float).reshape(-1, 2)
            if a.shape != b.shape or not np.array_equal(a, b):
                return False
        elif a != b:
            return False
    return True


def test_parallel_scaling_and_identity(benchmark):
    """Batched answers identical at every worker count; >= 4 cores must scale."""
    import time

    points = _points()
    spec = _serving_spec(points)
    queries = _queries(points, max(2_000, PARALLEL_N // 5))
    rng = np.random.default_rng(31)
    windows = [
        # modest windows around stored points so results are non-trivial
        Rect(x, y, min(1.0, x + 0.02), min(1.0, y + 0.02))
        for x, y in points[rng.integers(0, points.shape[0], size=200)]
    ]

    reference = ShardedBatchEngine(spec.build_index())
    ref_points = reference.execute(QueryRequest.for_points(queries))
    ref_windows = reference.execute(QueryRequest.for_windows(windows))

    rates: dict[int, float] = {}
    identical = True
    reads_match = True
    for n_workers in WORKER_COUNTS:
        with ParallelShardEngine(spec, n_workers=n_workers) as engine:
            engine.execute(QueryRequest.for_points(queries[:64]))  # warm the worker pools
            started = time.perf_counter()
            batch = engine.execute(QueryRequest.for_points(queries))
            rates[n_workers] = queries.shape[0] / (time.perf_counter() - started)
            win = engine.execute(QueryRequest.for_windows(windows))
        identical = (
            identical
            and _identical(batch.values, ref_points.values)
            and _identical(win.values, ref_windows.values)
        )
        reads_match = (
            reads_match
            and batch.access.logical_reads == ref_points.access.logical_reads
            and batch.access.per_shard_logical_reads == ref_points.access.per_shard_logical_reads
            and win.access.logical_reads == ref_windows.access.logical_reads
        )

    n_cores = os.cpu_count() or 1
    speedup = rates[4] / rates[1]
    # below 4 cores a 4-worker pool cannot exhibit multi-core scaling: the
    # flag (not the raw ratio) is committed, so baselines stay portable
    speedup_gate_ok = 1 if n_cores < 4 else int(speedup >= 1.8)
    payload = {
        "n_points": points.shape[0],
        "n_queries": queries.shape[0],
        "n_windows": len(windows),
        "n_shards": N_SHARDS,
        "block_capacity": BLOCK_CAPACITY,
        "worker_counts": list(WORKER_COUNTS),
        "answers_identical": int(identical),
        "logical_reads": ref_points.access.logical_reads,
        "window_logical_reads": ref_windows.access.logical_reads,
        "reads_match": int(reads_match),
        "speedup_gate_ok": speedup_gate_ok,
        # informational (machine-dependent): the measured rates and ratio
        "speedup_4w_vs_1w": round(speedup, 3),
        "n_cores": n_cores,
        **{f"rate_{w}w_ops_per_s": round(r, 1) for w, r in rates.items()},
        "single_thread_ops_per_s": round(
            queries.shape[0]
            / max(1e-9, _timed(lambda: reference.execute(QueryRequest.for_points(queries)))),
            1,
        ),
    }
    _record(f"scaling/{INDEX_NAME}", payload)
    benchmark.extra_info.update(payload)

    with ParallelShardEngine(spec, n_workers=WORKER_COUNTS[-1]) as engine:
        engine.execute(QueryRequest.for_points(queries[:64]))
        benchmark.pedantic(
            lambda: engine.execute(QueryRequest.for_points(queries)),
            rounds=1,
            iterations=1,
            warmup_rounds=0,
        )

    assert identical, "parallel answers diverged from the single-threaded engine"
    assert reads_match, "parallel read accounting diverged"
    assert speedup_gate_ok == 1, (
        f"4-worker speedup {speedup:.2f}x < 1.8x on a {n_cores}-core host"
    )


def _timed(run) -> float:
    import time

    started = time.perf_counter()
    run()
    return time.perf_counter() - started


def test_admission_deterministic_and_paced_tails(benchmark):
    """Same stream + rate => identical admission; paced p99 recorded 1w vs 4w."""
    points = _points()
    spec = _serving_spec(points)
    base = scenario_by_name("sharded-mixed").with_overrides(n_ops=N_OPS, seed=23)

    # gated admission claim: the stream's virtual arrival instants come from
    # a fixed offered rate, so accept/drop counts are identical on every host
    admission_ops = generate_operations(
        base.with_overrides(arrival_model="open-loop", arrival_rate=ADMISSION_RATE),
        points,
    )
    accepted_a, report_a = admit_operations(admission_ops, TENANT_RATE)
    accepted_b, report_b = admit_operations(admission_ops, TENANT_RATE)
    deterministic = int(
        report_a.decisions == report_b.decisions
        and len(accepted_a) == len(accepted_b)
        and all(a is b for a, b in zip(accepted_a, accepted_b))
    )

    # informational paced tails: the same mixed stream offered at 1.5x the
    # *measured* 1-worker capacity (wall-clock, hence machine-dependent)
    with ParallelShardEngine(spec, n_workers=1) as engine:
        probe = FrontDoor(engine).serve(generate_operations(base, points), paced=False)
    capacity = probe.n_served / max(probe.elapsed_s, 1e-9)
    offered = capacity * 1.5
    paced_ops = generate_operations(
        base.with_overrides(arrival_model="open-loop", arrival_rate=offered), points
    )

    p99 = {}
    shed = {}
    for n_workers in (1, WORKER_COUNTS[-1]):
        with ParallelShardEngine(spec, n_workers=n_workers) as engine:
            door = FrontDoor(engine, max_inflight=256)
            report = door.serve(paced_ops, paced=True)
        p99[n_workers] = (
            round(report.sojourn.p99_ms, 3) if report.sojourn is not None else None
        )
        shed[n_workers] = report.n_shed

    payload = {
        "n_points": points.shape[0],
        "n_ops": len(admission_ops),
        "n_shards": N_SHARDS,
        "overload_fraction": 1.5,
        "n_accepted": report_a.n_accepted,
        "n_dropped": report_a.n_dropped,
        "admission_deterministic": deterministic,
        # informational (machine-dependent) paced tails
        "offered_ops_per_s": round(offered, 1),
        "paced_p99_ms_1w": p99[1],
        f"paced_p99_ms_{WORKER_COUNTS[-1]}w": p99[WORKER_COUNTS[-1]],
        "shed_1w": shed[1],
        f"shed_{WORKER_COUNTS[-1]}w": shed[WORKER_COUNTS[-1]],
    }
    _record(f"frontdoor/{INDEX_NAME}", payload)
    benchmark.extra_info.update(payload)

    benchmark.pedantic(
        lambda: admit_operations(admission_ops, TENANT_RATE),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    assert deterministic == 1, "token-bucket admission was not deterministic"
    assert report_a.n_accepted + report_a.n_dropped == len(admission_ops)
    assert report_a.n_dropped > 0, (
        "the offered rate never exceeded the tenant budget; raise the overload"
    )
