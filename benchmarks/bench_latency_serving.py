"""Benchmark of the latency-measurement subsystem (``repro.workloads.latency``).

Three serving claims, each persisted machine-readably to
``benchmarks/results/BENCH_latency.json`` (and mirrored to the committed
repo-root canonical snapshot):

* **Closed vs open loop** — replaying the ``latency-hotspot`` scenario
  closed-loop measures the server's capacity; re-offering the same stream
  open-loop at 1.5x that capacity must push p99 *sojourn* (queueing delay
  included, via the virtual clock) above the closed-loop p99, while the
  service percentiles stay in the same regime.
* **Per-shard breakdown** — a sharded deployment attributes per-query
  latency per shard; under hotspot traffic the hot shard carries most of
  the load, and the per-shard summaries must account for every query.
* **Multi-tenant fairness** — N identically-shaped tenants merged by
  arrival time experience statistically similar latency: Jain's fairness
  index over their mean sojourns stays high.

Wall-clock milliseconds vary per machine; the *gated* metrics (see
``tools/check_bench.py``) are the machine-independent ones — ratios, counts
and fairness — while raw percentiles are recorded for trajectory inspection.
Override the data size with ``REPRO_BENCH_LATENCY_N``.
"""

from __future__ import annotations

import os

import numpy as np

from conftest import record_bench_result
from repro.analytics import QueryRequest
from repro.baselines import KDBTree
from repro.datasets import dataset_by_name
from repro.sharding import ShardedBatchEngine, ShardedSpatialIndex, shard_index_factory
from repro.workloads import (
    MultiTenantOracle,
    ScenarioRunner,
    generate_tenant_operations,
    scenario_by_name,
)

LATENCY_N = int(os.environ.get("REPRO_BENCH_LATENCY_N", "20000"))
BLOCK_CAPACITY = 50
N_OPS = 2_000
N_SHARDS = 4
N_TENANTS = 3
#: open-loop offered load relative to the measured closed-loop capacity
OVERLOAD_FRACTION = 1.5

RESULTS_FILE = "BENCH_latency.json"
#: only default-budget runs refresh the committed repo-root snapshot
_CANONICAL = LATENCY_N == 20000


def _record(name: str, payload: dict) -> None:
    record_bench_result(RESULTS_FILE, name, payload, canonical=_CANONICAL)


def _points():
    return dataset_by_name("uniform", LATENCY_N, seed=3)


def _spec():
    return scenario_by_name("latency-hotspot").with_overrides(
        n_ops=N_OPS, snapshot_every=max(1, N_OPS // 2), seed=11
    )


def _build(points: np.ndarray) -> KDBTree:
    return KDBTree(block_capacity=BLOCK_CAPACITY).build(points)


def test_open_loop_p99_includes_queueing(benchmark):
    """Open loop at 1.5x capacity: p99 sojourn rises above the closed-loop p99."""
    points = _points()
    spec = _spec()

    closed = ScenarioRunner(
        _build(points), spec.with_overrides(arrival_model="closed-loop")
    ).run(points)
    capacity = closed.ops_per_s
    open_spec = spec.with_overrides(
        arrival_model="open-loop", arrival_rate=max(capacity * OVERLOAD_FRACTION, 1.0)
    )
    open_result = ScenarioRunner(_build(points), open_spec).run(points)

    queueing_ratio = open_result.latency.p99_ms / max(
        open_result.service_latency.p99_ms, 1e-9
    )
    payload = {
        "n_points": points.shape[0],
        "n_ops": N_OPS,
        "block_capacity": BLOCK_CAPACITY,
        "overload_fraction": OVERLOAD_FRACTION,
        "closed_loop": closed.latency.as_dict(),
        "closed_loop_capacity_ops_per_s": round(capacity, 1),
        "open_loop": open_result.latency.as_dict(),
        "open_loop_service": open_result.service_latency.as_dict(),
        "queueing_ratio": round(queueing_ratio, 2),
    }
    _record("closed_vs_open_loop/KDB", payload)
    benchmark.extra_info.update(payload)

    # the replay mutates the index, so every timing round gets a fresh build
    benchmark.pedantic(
        lambda runner: runner.run(points),
        setup=lambda: ((ScenarioRunner(_build(points), open_spec),), {}),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert open_result.latency.count == N_OPS
    assert open_result.latency.p99_ms > closed.latency.p99_ms, (
        f"open-loop p99 {open_result.latency.p99_ms:.3f} ms did not exceed "
        f"closed-loop p99 {closed.latency.p99_ms:.3f} ms at "
        f"{OVERLOAD_FRACTION}x offered load"
    )
    # at 1.5x offered load the queue, not the service time, dominates p99
    assert queueing_ratio > 1.0


def test_per_shard_latency_attribution(benchmark):
    """Sharded hotspot batches: per-shard percentiles account for every query."""
    points = _points()
    rng = np.random.default_rng(17)
    # 95% of queries from one small region -> one shard runs hot
    lo = rng.uniform(0.1, 0.8, size=2)
    n_hot = int(0.95 * N_OPS)
    hot = lo + rng.random((n_hot, 2)) * 0.05
    cold = points[rng.integers(0, points.shape[0], size=N_OPS - n_hot)]
    queries = np.vstack([hot, cold])
    rng.shuffle(queries)

    factory = shard_index_factory("KDB", block_capacity=BLOCK_CAPACITY)
    index = ShardedSpatialIndex(factory, n_shards=N_SHARDS, policy="grid").build(points)
    engine = ShardedBatchEngine(index)
    batch = engine.execute(QueryRequest.for_points(queries))

    assert batch.per_shard_latency, "sharded point batches must attribute latency"
    counts = {shard: summary.count for shard, summary in batch.per_shard_latency.items()}
    assert sum(counts.values()) == len(queries)
    hot_shard, hot_count = max(counts.items(), key=lambda item: item[1])
    payload = {
        "n_points": points.shape[0],
        "n_queries": len(queries),
        "n_shards": N_SHARDS,
        "per_shard_query_counts": {str(k): v for k, v in sorted(counts.items())},
        "hot_shard_query_fraction": round(hot_count / len(queries), 4),
        "per_shard_p99_ms": {
            str(shard): round(summary.p99_ms, 4)
            for shard, summary in sorted(batch.per_shard_latency.items())
        },
        "batch_p99_ms": round(batch.latency.p99_ms, 4),
    }
    _record("per_shard_breakdown/sharded_KDB", payload)
    benchmark.extra_info.update(payload)
    benchmark(lambda: engine.execute(QueryRequest.for_points(queries)))
    # the hot region fits one grid shard (plus boundary spill)
    assert hot_count / len(queries) >= 0.5, f"hotspot did not concentrate: {counts}"


def test_multi_tenant_fairness(benchmark):
    """Identically-shaped tenants see similar latency: fairness stays high."""
    points = _points()
    spec = scenario_by_name("tenant-mixed").with_overrides(
        n_ops=N_OPS, snapshot_every=max(1, N_OPS // 2), seed=23
    )
    operations, tenant_points = generate_tenant_operations(spec, points, N_TENANTS)
    oracle = MultiTenantOracle(N_TENANTS).build(tenant_points)
    runner = ScenarioRunner(_build(points), spec, oracle=oracle, exact_results=True)
    result = runner.replay(operations)

    assert result.checked
    assert sum(s.count for s in result.latency_by_tenant.values()) == N_OPS
    payload = {
        "n_points": points.shape[0],
        "n_ops": N_OPS,
        "n_tenants": N_TENANTS,
        "fairness_index": round(result.fairness, 4),
        "per_tenant_p99_ms": {
            str(tenant): round(summary.p99_ms, 4)
            for tenant, summary in result.latency_by_tenant.items()
        },
        "per_tenant_ops": {
            str(tenant): summary.count
            for tenant, summary in result.latency_by_tenant.items()
        },
    }
    _record("multi_tenant/KDB", payload)
    benchmark.extra_info.update(payload)

    # the replay mutates the index, so every timing round gets a fresh build
    benchmark.pedantic(
        lambda runner: runner.replay(operations),
        setup=lambda: ((ScenarioRunner(_build(points), spec),), {}),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.fairness >= 0.5, (
        f"fairness index collapsed to {result.fairness:.3f}: "
        f"{result.latency_by_tenant}"
    )
