"""Benchmark of latency-driven online shard rebalancing (``repro.sharding``).

Replays the ``drifting`` scenario — its hot region migrates across the
space over the stream — twice over an identical 4-shard deployment: once
static, once with a :class:`~repro.sharding.RebalanceController` attached.
The controller must split the drifting hotspot's shard online and, once
the hotspot has moved at least once (the tail half of the stream), serve
the same operations with *fewer block accesses per op* and a *lower p99*.

Persisted machine-readably to ``benchmarks/results/BENCH_rebalance.json``
(mirrored to the committed repo-root canonical snapshot at the default
budget).  The *gated* metrics (see ``tools/check_bench.py``) are the
machine-independent ones: the controller's trigger is driven by decayed
logical read counts (``latency_gate`` stays off here), so ``n_splits``,
``final_shards`` and the per-op block-access counts are deterministic
given the stream — only the raw ``*_ms`` percentiles vary per machine and
stay informational.  Override the data size with
``REPRO_BENCH_REBALANCE_N``.
"""

from __future__ import annotations

import os
from statistics import mean

from conftest import record_bench_result
from repro.evaluation.runner import SuiteConfig
from repro.experiments.rebalance_sweeps import rebalance_sweep_config
from repro.experiments.scenario_sweeps import build_sharded_index
from repro.sharding import RebalanceController
from repro.workloads import ScenarioRunner, scenario_by_name
from repro.datasets import dataset_by_name

REBALANCE_N = int(os.environ.get("REPRO_BENCH_REBALANCE_N", "20000"))
#: op budget is fixed: the drifting hotspot needs time to move, not points
N_OPS = 4_000
N_SHARDS = 4
BLOCK_CAPACITY = 8
INDEX_NAME = "Grid"

RESULTS_FILE = "BENCH_rebalance.json"
#: only default-budget runs refresh the committed repo-root snapshot
_CANONICAL = REBALANCE_N == 20000


def _record(name: str, payload: dict) -> None:
    record_bench_result(RESULTS_FILE, name, payload, canonical=_CANONICAL)


def _points():
    return dataset_by_name("skewed", REBALANCE_N, seed=43)


def _spec():
    return scenario_by_name("drifting").with_overrides(
        n_ops=N_OPS, snapshot_every=N_OPS // 8, seed=11
    )


def _build(points):
    config = SuiteConfig(
        n_points=points.shape[0],
        distribution="skewed",
        block_capacity=BLOCK_CAPACITY,
        partition_threshold=2000,
        training_epochs=1,
        seed=43,
    )
    return build_sharded_index(points, INDEX_NAME, N_SHARDS, "grid", config)


def _run_arm(points, spec, controller_on: bool):
    index = _build(points)
    rebalancer = None
    if controller_on:
        rebalancer = RebalanceController(index, rebalance_sweep_config(spec.n_ops))
    runner = ScenarioRunner(index, spec, rebalancer=rebalancer)
    result = runner.run(points)
    return index, rebalancer, result


def _tail(snapshots):
    """Tail half of the stream: the hot region has moved at least once."""
    tail = snapshots[-(len(snapshots) // 2) or -1 :]
    return (
        mean(s.avg_block_accesses for s in tail),
        mean(s.latency.p99_ms for s in tail if s.latency is not None),
    )


def test_controller_wins_the_drifting_tail(benchmark):
    """Controller on: fewer blocks/op and lower p99 once the hotspot moved."""
    points = _points()
    spec = _spec()

    _, _, off = _run_arm(points, spec, controller_on=False)
    index_on, rebalancer, on = _run_arm(points, spec, controller_on=True)
    report = rebalancer.report

    blocks_off, p99_off = _tail(off.snapshots)
    blocks_on, p99_on = _tail(on.snapshots)
    payload = {
        "n_points": points.shape[0],
        "n_ops": N_OPS,
        "n_shards": N_SHARDS,
        "block_capacity": BLOCK_CAPACITY,
        "n_splits": report.n_splits,
        "n_merges": report.n_merges,
        "rescued_writes": report.rescued_writes,
        "mid_migration_batches": report.mid_migration_batches,
        "final_shards": index_on.n_shards,
        "tail_blocks_per_op_off": round(blocks_off, 4),
        "tail_blocks_per_op_on": round(blocks_on, 4),
        "blocks_advantage": round(blocks_off / blocks_on, 4),
        "tail_p99_ms_off": round(p99_off, 4),
        "tail_p99_ms_on": round(p99_on, 4),
        "p99_trajectory_ms": {
            "off": {str(s.op_index): round(s.latency.p99_ms, 4) for s in off.snapshots},
            "on": {str(s.op_index): round(s.latency.p99_ms, 4) for s in on.snapshots},
        },
        "blocks_trajectory": {
            "off": {
                str(s.op_index): round(s.avg_block_accesses, 3) for s in off.snapshots
            },
            "on": {
                str(s.op_index): round(s.avg_block_accesses, 3) for s in on.snapshots
            },
        },
    }
    _record(f"drifting_tail/{INDEX_NAME}", payload)
    benchmark.extra_info.update(payload)

    # the replay mutates the index, so every timing round gets a fresh build
    benchmark.pedantic(
        lambda runner: runner.run(points),
        setup=lambda: (
            (
                ScenarioRunner(
                    (idx := _build(points)),
                    spec,
                    rebalancer=RebalanceController(
                        idx, rebalance_sweep_config(spec.n_ops)
                    ),
                ),
            ),
            {},
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    assert report.n_splits >= 1, "the drifting hotspot never triggered a split"
    assert index_on.n_shards > N_SHARDS or report.n_merges > 0
    assert blocks_on < blocks_off, (
        f"controller-on tail blocks/op {blocks_on:.3f} did not beat the static "
        f"deployment's {blocks_off:.3f}"
    )
    assert p99_on < p99_off, (
        f"controller-on tail p99 {p99_on:.3f} ms did not beat the static "
        f"deployment's {p99_off:.3f} ms after the hotspot moved"
    )
